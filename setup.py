from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Polylogarithmic Time Algorithms for Shortest "
        "Path Forests in Programmable Matter' (PODC 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    extras_require={
        # Optional vectorized execution backend (see repro.backend):
        # rounds, component labeling, and grid-index builds lower onto
        # array kernels, bit-identical to the pure-Python reference.
        # scipy additionally accelerates component labeling when
        # present but is never required.
        "perf": ["numpy>=1.24"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
