from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'Polylogarithmic Time Algorithms for Shortest "
        "Path Forests in Programmable Matter' (PODC 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
)
