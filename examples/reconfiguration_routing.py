#!/usr/bin/env python3
"""Shape reconfiguration routing (Kostitsyna et al. [20], paper's intro).

Fast reconfiguration moves amoebots through the structure toward their
target positions along shortest path trees.  This example plans such a
migration: amoebots that must vacate their positions (the "surplus"
region) are routed to positions that must be filled (the "deficit"
region) along the (S, D)-shortest path forest, where the sources are
the entry points of the deficit region.

The example reports path statistics and shows that every planned move
follows a provably shortest route to the closest entry point, then
renders the plan.

Run:  python examples/reconfiguration_routing.py
"""

from repro import CircuitEngine, Node, assert_valid_forest, parallelogram
from repro.grid.structure import AmoebotStructure
from repro.spf.forest import shortest_path_forest
from repro.viz.ascii_art import render_ascii


def main() -> None:
    # Current structure: an L-shaped blob (a parallelogram with a wing).
    body = set(parallelogram(12, 5).nodes)
    wing = {Node(x, y) for x in range(12, 17) for y in range(2)}
    structure = AmoebotStructure(body | wing)
    print(f"structure: L-shape, n = {len(structure)}")

    # Target shape drops the wing and thickens the left flank: the wing
    # amoebots (surplus, our destinations D) must travel to the flank
    # boundary (entry points, our sources S).
    surplus = sorted(wing)  # D: amoebots that have to move
    entries = [Node(0, y) for y in range(5)]  # S: where they are needed
    print(f"entry points (S): {len(entries)}, movers (D): {len(surplus)}")

    engine = CircuitEngine(structure)
    forest = shortest_path_forest(engine, structure, entries, surplus)
    assert_valid_forest(structure, entries, surplus, forest.parent)
    print(f"routing forest computed in {engine.rounds.total} synchronous rounds")

    # Each mover follows its parent chain to its assigned entry point.
    total_hops = 0
    print()
    for mover in surplus:
        depth = forest.depth_of(mover)
        entry = forest.root_of(mover)
        total_hops += depth
        print(f"  mover {tuple(mover)} -> entry {tuple(entry)}  ({depth} hops)")
    print(f"total travel: {total_hops} hops "
          "(provably minimal per mover, to its closest entry)")

    # Execute the migration: synchronous token routing with
    # single-occupancy congestion resolution (repro.motion).
    from repro.motion import RoutingPlan, route_tokens

    stats = route_tokens(RoutingPlan(forest, surplus))
    print()
    print(f"migration executed in {stats.steps} movement steps "
          f"(congestion-free lower bound: {stats.lower_bound})")
    print(f"congestion overhead: {stats.congestion_overhead:.2f}x, "
          f"{stats.total_moves} individual moves")

    glyphs = {}
    for u in forest.members:
        glyphs[u] = "+"
    for d in surplus:
        glyphs[d] = "D"
    for s in entries:
        glyphs[s] = "S"
    print()
    print(render_ascii(structure, glyphs, default="."))


if __name__ == "__main__":
    main()
