#!/usr/bin/env python3
"""Campaign demo: a declarative experiment grid, run in parallel, cached.

Defines a small custom campaign *as data* (the same dict shape that
``repro campaign run --spec file.json`` accepts), executes it across a
process pool with a persistent JSONL result store, then re-runs it to
show that every trial is served from cache.  Finishes with per-scenario
summary tables and a growth-shape fit.

Run:  PYTHONPATH=src python examples/campaign_demo.py
"""

import tempfile
from pathlib import Path

from repro.experiments import (
    CampaignSpec,
    ResultStore,
    group_records,
    growth_report,
    run_campaign,
    summary_table,
    sweep_axis,
)

# A campaign is data: two scenarios, each a grid of configurations.
CAMPAIGN = {
    "name": "demo",
    "description": "SPT vs wave baseline on growing hexagons",
    "scenarios": [
        {
            "name": "spt",
            "shape": "hexagon:{n}",
            "sizes": [2, 3, 4, 5],
            "ks": [1],
            "ls": [4],
            "seeds": [0, 1],
            "algorithm": "spt",
            "placement": "random",
        },
        {
            "name": "wave-baseline",
            "shape": "hexagon:{n}",
            "sizes": [2, 3, 4, 5],
            "ks": [1],
            "ls": [4],
            "seeds": [0, 1],
            "algorithm": "wave",
            "placement": "random",
        },
    ],
}


def main() -> None:
    campaign = CampaignSpec.from_dict(CAMPAIGN)
    store_path = Path(tempfile.mkdtemp()) / "demo.jsonl"
    print(f"campaign {campaign.name!r}: {campaign.trial_count()} trials")
    print(f"store: {store_path}")

    # First run: everything executes (2 worker processes).
    report = run_campaign(campaign, store=ResultStore(store_path), workers=2)
    print(report.summary())

    # Second run: the store already has every content hash -> all cached.
    rerun = run_campaign(campaign, store=ResultStore(store_path), workers=2)
    print(rerun.summary())
    assert rerun.executed == 0 and rerun.cache_hits == rerun.total

    # Per-scenario summaries straight from the recorded trials.
    for scenario, rows in sorted(group_records(report.records(), "scenario").items()):
        axis = sweep_axis(rows)
        print()
        print(
            summary_table(
                rows,
                x=axis,
                columns=("rounds",),
                title=f"{scenario}: mean rounds vs {axis}",
            ).render()
        )
        fit = growth_report(rows, x=axis)
        if fit is not None:
            print(f"growth: {fit.describe()}")


if __name__ == "__main__":
    main()
