#!/usr/bin/env python3
"""Regenerate the paper's illustrative figures as SVG files.

Writes to ``figures/`` (created next to the repository root):

* fig1_structure.svg      — an amoebot structure (Figure 1a)
* fig2_portals_{x,y,z}.svg — implicit portal graphs per axis (Figure 2)
* fig3_root_prune.svg     — root-and-prune on a tree: V_Q vs pruned (Figure 3)
* fig5_spt_{raw,pruned}.svg — SPT algorithm before/after pruning (Figure 5)
* fig6_line.svg           — line algorithm distances (Figure 6)
* fig15_regions.svg       — region decomposition at Q' portals (Figure 15)

Run:  python examples/figures.py
"""

import os
import random

from repro import CircuitEngine, random_hole_free
from repro.grid.directions import Axis
from repro.portals.portals import PortalSystem
from repro.portals.primitives import portal_root_and_prune
from repro.primitives import root_and_prune
from repro.sim.engine import CircuitEngine
from repro.spf.line import line_forest
from repro.spf.regions import RegionDecomposition
from repro.spf.spt import shortest_path_tree
from repro.ett.tour import adjacency_from_edges
from repro.grid.oracle import bfs_tree
from repro.viz.svg import render_structure_svg
from repro.workloads import line_structure


def bfs_tree_adjacency(structure, root):
    """A BFS tree as rotation-ordered adjacency (plus parent pointers)."""
    _dist, parent = bfs_tree(structure, root)
    edges = [(c, p) for c, p in parent.items() if p is not None]
    adjacency = adjacency_from_edges(edges) if edges else {root: []}
    return adjacency, {c: p for c, p in parent.items() if p is not None}

OUT = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "figures")

PALETTE = [
    "#a6cee3", "#b2df8a", "#fb9a99", "#fdbf6f", "#cab2d6",
    "#ffff99", "#1f78b4", "#33a02c", "#e31a1c", "#ff7f00",
]


def save(name: str, svg: str) -> None:
    path = os.path.join(OUT, name)
    with open(path, "w") as handle:
        handle.write(svg)
    print(f"wrote {path}")


def fig1_structure() -> None:
    structure = random_hole_free(40, seed=3)
    save("fig1_structure.svg", render_structure_svg(structure))


def fig2_portals() -> None:
    structure = random_hole_free(60, seed=12)
    for axis in Axis:
        system = PortalSystem(structure, axis)
        colors = {}
        for i, portal in enumerate(system.portals):
            for u in portal.nodes:
                colors[u] = PALETTE[i % len(PALETTE)]
        tree_edges = [
            (u, v)
            for u, vs in system.implicit_adjacency.items()
            for v in vs
            if u < v
        ]
        save(
            f"fig2_portals_{axis.name.lower()}.svg",
            render_structure_svg(
                structure, node_colors=colors, highlight_edges=tree_edges
            ),
        )


def fig3_root_prune() -> None:
    structure = random_hole_free(60, seed=9)
    root = structure.westernmost()
    adjacency, _ = bfs_tree_adjacency(structure, root)
    rng = random.Random(2)
    q = set(rng.sample(sorted(structure.nodes), 8))
    engine = CircuitEngine(structure)
    result = root_and_prune(engine, root, adjacency, q)
    colors = {}
    for u in structure:
        if u == root:
            colors[u] = "#e31a1c"  # root (red, as in Figure 3)
        elif u in q:
            colors[u] = "#1f78b4"  # Q (blue)
        elif u in result.in_vq:
            colors[u] = "#b2df8a"  # surviving V_Q
        else:
            colors[u] = "#dddddd"  # pruned
    save(
        "fig3_root_prune.svg",
        render_structure_svg(structure, node_colors=colors, parent=result.parent),
    )


def fig5_spt() -> None:
    structure = random_hole_free(70, seed=21)
    nodes = sorted(structure.nodes)
    rng = random.Random(4)
    source = nodes[0]
    dests = rng.sample(nodes, 5)
    engine = CircuitEngine(structure)
    result = shortest_path_tree(engine, structure, source, dests)
    colors = {u: "#ffffff" for u in structure}
    colors[source] = "#e31a1c"
    for d in dests:
        colors[d] = "#1f78b4"
    save(
        "fig5_spt_raw.svg",
        render_structure_svg(structure, node_colors=colors, parent=result.raw_parent),
    )
    save(
        "fig5_spt_pruned.svg",
        render_structure_svg(structure, node_colors=colors, parent=result.parent),
    )


def fig6_line() -> None:
    structure = line_structure(20)
    chain = sorted(structure.nodes)
    sources = [chain[4], chain[13]]
    engine = CircuitEngine(structure)
    forest = line_forest(engine, chain, sources)
    colors = {u: "#ffffff" for u in chain}
    for s in sources:
        colors[s] = "#e31a1c"
    save(
        "fig6_line.svg",
        render_structure_svg(structure, node_colors=colors, parent=forest.parent),
    )


def fig15_regions() -> None:
    structure = random_hole_free(150, seed=33)
    system = PortalSystem(structure, Axis.X)
    rng = random.Random(5)
    sources = rng.sample(sorted(structure.nodes), 6)
    q = system.portals_containing(sources)
    root = system.portal_of[structure.westernmost()]
    engine = CircuitEngine(structure)
    rp = portal_root_and_prune(engine, system, root, q, compute_augmentation=True)
    q_prime = q | rp.augmentation
    decomposition = RegionDecomposition(system, q_prime, rp.in_vq)
    regions = decomposition.build_regions()
    colors = {}
    for i, region in enumerate(regions):
        for u in region.nodes:
            colors[u] = PALETTE[i % len(PALETTE)]
    for portal in q_prime:  # boundary portals drawn red, as in Fig. 15
        for u in portal.nodes:
            colors[u] = "#e31a1c"
    save("fig15_regions.svg", render_structure_svg(structure, node_colors=colors))


def main() -> None:
    os.makedirs(OUT, exist_ok=True)
    fig1_structure()
    fig2_portals()
    fig3_root_prune()
    fig5_spt()
    fig6_line()
    fig15_regions()
    print("all figures regenerated")


if __name__ == "__main__":
    main()
