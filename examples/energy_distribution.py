#!/usr/bin/env python3
"""Energy distribution over shortest paths (paper's intro, refs [11, 30]).

Amoebots burn energy to move; a few amoebots sit at external energy
sources and the rest must be supplied through the structure.  Routing
energy along *shortest* paths to the *closest* source minimizes
transfer loss — exactly the (k, n)-SPF problem.

This example:

1. grows a random hole-free structure and places k harvester amoebots
   on its boundary;
2. computes the S-shortest-path forest with the divide & conquer
   algorithm (Theorem 56);
3. simulates a per-hop loss model on the forest and reports the energy
   delivered, comparing against routing along an arbitrary (DFS)
   spanning tree to show why shortest path forests matter.

Run:  python examples/energy_distribution.py
"""

from typing import Dict, List

from repro import CircuitEngine, Node, assert_valid_forest, random_hole_free
from repro.spf.forest import shortest_path_forest

HOP_EFFICIENCY = 0.92  # fraction of energy surviving one hop transfer
N = 220
K = 5


def boundary_nodes(structure) -> List[Node]:
    return [u for u in sorted(structure.nodes) if structure.degree(u) < 6]


def delivered_energy(depths: Dict[Node, int]) -> float:
    """Total energy received when each source emits 1.0 per amoebot."""
    return sum(HOP_EFFICIENCY ** d for d in depths.values())


def dfs_tree_depths(structure, sources) -> Dict[Node, int]:
    """Depths in an arbitrary DFS forest (the 'naive routing' strawman)."""
    depth = {s: 0 for s in sources}
    stack = [(s, 0) for s in sources]
    while stack:
        u, d = stack.pop()
        for v in structure.neighbors(u):
            if v not in depth:
                depth[v] = d + 1
                stack.append((v, d + 1))
    return depth


def main() -> None:
    structure = random_hole_free(N, seed=11)
    boundary = boundary_nodes(structure)
    step = max(1, len(boundary) // K)
    harvesters = boundary[::step][:K]
    print(f"structure: random hole-free, n = {len(structure)}")
    print(f"harvesters (sources): {[tuple(h) for h in harvesters]}")

    engine = CircuitEngine(structure)
    forest = shortest_path_forest(engine, structure, harvesters)
    assert_valid_forest(
        structure, harvesters, sorted(structure.nodes), forest.parent
    )
    print(f"forest computed in {engine.rounds.total} synchronous rounds")

    spf_depths = {u: forest.depth_of(u) for u in forest.members}
    dfs_depths = dfs_tree_depths(structure, harvesters)

    spf_energy = delivered_energy(spf_depths)
    dfs_energy = delivered_energy(dfs_depths)
    print()
    print(f"energy delivered over SPF routing : {spf_energy:8.2f} / {len(structure)}")
    print(f"energy delivered over DFS routing : {dfs_energy:8.2f} / {len(structure)}")
    print(f"SPF advantage: {100 * (spf_energy / dfs_energy - 1):.1f}% more energy")

    worst = max(spf_depths.values())
    print(f"worst supply distance (SPF): {worst} hops")
    print(f"worst supply distance (DFS): {max(dfs_depths.values())} hops")


if __name__ == "__main__":
    main()
