#!/usr/bin/env python3
"""Quickstart: solve a shortest path forest problem on an amoebot structure.

Builds a hexagonal amoebot structure, picks sources and destinations,
runs the paper's algorithms through the public API, validates the result
against the BFS oracle, and renders the forest as ASCII art.

Run:  python examples/quickstart.py
"""

from repro import assert_valid_forest, hexagon, solve_spf, spread_nodes
from repro.viz.ascii_art import render_forest_ascii


def main() -> None:
    # 1. An amoebot structure: a hexagon with 61 amoebots.
    structure = hexagon(4)
    print(f"structure: hexagon(4), n = {len(structure)} amoebots")

    # 2. A (k, l)-SPF instance: 2 well-spread sources, 5 destinations.
    sources = spread_nodes(structure, 2)
    nodes = sorted(structure.nodes)
    destinations = [nodes[7], nodes[23], nodes[31], nodes[49], nodes[58]]
    print(f"k = {len(sources)} sources, l = {len(destinations)} destinations")

    # 3. Solve.  k >= 2 dispatches to the divide & conquer forest
    #    algorithm of Section 5 (Theorem 56).
    solution = solve_spf(structure, sources, destinations)
    print(f"algorithm: {solution.algorithm}")
    print(f"synchronous rounds: {solution.rounds}")

    # 4. Validate the five forest properties against the BFS oracle.
    assert_valid_forest(structure, sources, destinations, solution.forest.parent)
    print("forest validated: all five (S, D)-SPF properties hold")

    # 5. Every destination knows its path to its closest source.
    for dest in destinations:
        depth = solution.forest.depth_of(dest)
        root = solution.forest.root_of(dest)
        print(f"  destination {tuple(dest)} -> source {tuple(root)} at distance {depth}")

    # 6. Render.
    print()
    print(
        render_forest_ascii(
            structure, sources, destinations, solution.forest.members
        )
    )


if __name__ == "__main__":
    main()
