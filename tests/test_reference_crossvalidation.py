"""Cross-validation: strict beep-level executions == fast references.

The single most important safety net of the repository: on randomized
instances, every strict primitive must agree with its centralized
reference implementation (which shares no code with the simulator).
"""

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.reference import (
    ref_augmentation,
    ref_centroid_decomposition_depths,
    ref_line_forest,
    ref_q_centroids,
    ref_root_and_prune,
    ref_shortest_path_forest,
    ref_shortest_path_tree,
    ref_subtree_counts,
)
from repro.sim.engine import CircuitEngine
from repro.primitives import centroid_decomposition, q_centroids, root_and_prune
from repro.spf.forest import shortest_path_forest
from repro.spf.line import line_forest
from repro.spf.spt import shortest_path_tree
from repro.workloads import line_structure, random_hole_free, spread_nodes
from tests.conftest import bfs_tree_adjacency, random_subset


class TestTreePrimitiveAgreement:
    @pytest.mark.parametrize("seed", range(5))
    def test_root_and_prune(self, seed):
        s = random_hole_free(100, seed=100 + seed)
        root = s.westernmost()
        adjacency, _ = bfs_tree_adjacency(s, root)
        q = random_subset(s, 8, seed=seed)
        strict = root_and_prune(CircuitEngine(s), root, adjacency, q)
        ref_vq, ref_parent = ref_root_and_prune(adjacency, root, q)
        assert strict.in_vq == ref_vq
        assert strict.parent == ref_parent

    @pytest.mark.parametrize("seed", range(5))
    def test_augmentation(self, seed):
        s = random_hole_free(100, seed=110 + seed)
        root = s.westernmost()
        adjacency, _ = bfs_tree_adjacency(s, root)
        q = random_subset(s, 9, seed=seed)
        strict = root_and_prune(CircuitEngine(s), root, adjacency, q)
        assert strict.augmentation == ref_augmentation(adjacency, root, q)

    @pytest.mark.parametrize("seed", range(5))
    def test_centroids(self, seed):
        s = random_hole_free(90, seed=120 + seed)
        root = s.westernmost()
        adjacency, _ = bfs_tree_adjacency(s, root)
        q = random_subset(s, 7, seed=seed)
        strict = q_centroids(CircuitEngine(s), root, adjacency, q)
        assert strict == ref_q_centroids(adjacency, q)

    @pytest.mark.parametrize("seed", range(3))
    def test_decomposition_depth_bound(self, seed):
        s = random_hole_free(90, seed=130 + seed)
        root = s.westernmost()
        adjacency, _ = bfs_tree_adjacency(s, root)
        q = random_subset(s, 9, seed=seed)
        engine = CircuitEngine(s)
        rp = root_and_prune(engine, root, adjacency, q)
        q_prime = q | rp.augmentation
        strict = centroid_decomposition(engine, root, adjacency, q_prime)
        ref_depths = ref_centroid_decomposition_depths(adjacency, q_prime)
        # Both are valid decompositions: same member set, same height
        # bound (electoral tie-breaks may differ node by node).
        assert set(ref_depths) == strict.members()
        bound = math.ceil(math.log2(len(q_prime))) + 1
        assert strict.height <= bound
        assert max(ref_depths.values()) + 1 <= bound

    def test_subtree_counts_against_ett(self):
        s = random_hole_free(80, seed=140)
        root = s.westernmost()
        adjacency, parent = bfs_tree_adjacency(s, root)
        q = random_subset(s, 10, seed=0)
        from repro.ett import build_euler_tour, mark_one_outgoing_edge, run_ett

        tour = build_euler_tour(root, adjacency)
        result, _ = run_ett(
            CircuitEngine(s), tour, mark_one_outgoing_edge(tour, q)
        )
        counts = ref_subtree_counts(adjacency, root, q)
        for child, par in parent.items():
            assert result.subtree_count(child, par) == counts[child]


class TestForestAgreement:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=8, deadline=None)
    def test_spt_distances_match(self, seed):
        rng = random.Random(seed)
        s = random_hole_free(rng.randint(20, 90), seed=seed)
        nodes = sorted(s.nodes)
        source = rng.choice(nodes)
        dests = rng.sample(nodes, min(4, len(nodes)))
        strict = shortest_path_tree(CircuitEngine(s), s, source, dests)
        ref = ref_shortest_path_tree(s, source, dests)
        assert strict.members >= set(dests)
        for d in dests:
            strict_depth = _depth(strict.parent, {source}, d)
            assert strict_depth == ref.depth_of(d)

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None)
    def test_forest_distances_match(self, seed):
        rng = random.Random(seed)
        s = random_hole_free(rng.randint(30, 80), seed=seed + 1)
        k = rng.randint(2, 5)
        sources = spread_nodes(s, k)
        strict = shortest_path_forest(CircuitEngine(s), s, sources)
        ref = ref_shortest_path_forest(s, sources)
        for u in s:
            assert strict.depth_of(u) == ref.depth_of(u)

    @given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=2**10))
    @settings(max_examples=15, deadline=None)
    def test_line_forest_matches(self, n, seed):
        rng = random.Random(seed)
        s = line_structure(n)
        nodes = sorted(s.nodes)
        k = rng.randint(1, n)
        sources = rng.sample(nodes, k)
        strict = line_forest(CircuitEngine(s), nodes, sources)
        ref = ref_line_forest(nodes, sources)
        # Depths must match exactly (same tie-break convention).
        for u in nodes:
            assert strict.depth_of(u) == ref.depth_of(u)


def _depth(parent, sources, node):
    d = 0
    cur = node
    while cur not in sources:
        cur = parent[cur]
        d += 1
    return d
