"""Tests for the leader election preprocessing (Theorem 2)."""


from repro.preprocessing import elect_leader
from repro.sim.engine import CircuitEngine
from repro.workloads import hexagon, line_structure, random_hole_free


class TestLeaderElection:
    def test_elects_unique_leader_whp(self):
        s = random_hole_free(80, seed=7)
        successes = 0
        for seed in range(20):
            engine = CircuitEngine(s)
            result = elect_leader(engine, seed=seed)
            if result.unique:
                successes += 1
                assert result.leader in s.nodes
        # w.h.p. with exponent ~2: all 20 runs should succeed; allow one
        # failure to keep the test robust.
        assert successes >= 19

    def test_rounds_logarithmic(self):
        rounds = {}
        for n in (16, 256):
            s = line_structure(n)
            engine = CircuitEngine(s)
            result = elect_leader(engine, seed=1)
            rounds[n] = result.rounds
        # 16x size increase adds only a few phases.
        assert rounds[256] <= rounds[16] + 3 * 5

    def test_single_amoebot(self):
        s = line_structure(1)
        engine = CircuitEngine(s)
        result = elect_leader(engine, seed=0)
        assert result.unique
        assert result.leader == next(iter(s.nodes))

    def test_deterministic_given_seed(self):
        s = hexagon(2)
        a = elect_leader(CircuitEngine(s), seed=42)
        b = elect_leader(CircuitEngine(s), seed=42)
        assert a.leader == b.leader

    def test_rounds_charged_for_full_schedule(self):
        # Early convergence must not under-charge the fixed schedule.
        s = hexagon(2)
        engine = CircuitEngine(s)
        result = elect_leader(engine, seed=3)
        assert result.rounds == result.phases

    def test_leaders_spread_across_runs(self):
        # Different seeds should elect different amoebots (anonymity).
        s = hexagon(2)
        leaders = {elect_leader(CircuitEngine(s), seed=i).leader for i in range(12)}
        leaders.discard(None)
        assert len(leaders) >= 3
