"""Tests for the centralized BFS oracles."""

import pytest

from repro.grid.coords import Node, grid_distance
from repro.grid.oracle import (
    bfs_distances,
    bfs_tree,
    closest_sources,
    eccentricity,
    structure_diameter,
)
from repro.workloads import hexagon, line_structure, lollipop, staircase


class TestBfsDistances:
    def test_source_distance_zero(self):
        s = hexagon(2)
        dist = bfs_distances(s, [Node(0, 0)])
        assert dist[Node(0, 0)] == 0

    def test_covers_all_nodes(self):
        s = hexagon(2)
        assert set(bfs_distances(s, [Node(0, 0)])) == set(s.nodes)

    def test_matches_grid_distance_on_convex_shape(self):
        # A hexagon is convex: induced distance equals grid distance.
        s = hexagon(3)
        center = Node(0, 0)
        dist = bfs_distances(s, [center])
        for u in s:
            assert dist[u] == grid_distance(center, u)

    def test_detour_around_concavity(self):
        s = staircase(4, 3)
        nodes = sorted(s.nodes)
        first, last = nodes[0], max(nodes, key=lambda u: (u.y, u.x))
        dist = bfs_distances(s, [first])
        assert dist[last] >= grid_distance(first, last)

    def test_multi_source_is_minimum(self):
        s = line_structure(10)
        a, b = Node(0, 0), Node(9, 0)
        multi = bfs_distances(s, [a, b])
        da = bfs_distances(s, [a])
        db = bfs_distances(s, [b])
        for u in s:
            assert multi[u] == min(da[u], db[u])

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            bfs_distances(hexagon(1), [Node(9, 9)])


class TestBfsTree:
    def test_parents_decrease_distance(self):
        s = hexagon(3)
        dist, parent = bfs_tree(s, Node(0, 0))
        for u, p in parent.items():
            if p is None:
                continue
            assert dist[u] == dist[p] + 1

    def test_root_has_no_parent(self):
        _dist, parent = bfs_tree(hexagon(1), Node(0, 0))
        assert parent[Node(0, 0)] is None


class TestClosestSources:
    def test_tie_reports_both(self):
        s = line_structure(5)
        result = closest_sources(s, [Node(0, 0), Node(4, 0)])
        assert set(result[Node(2, 0)]) == {Node(0, 0), Node(4, 0)}
        assert result[Node(1, 0)] == [Node(0, 0)]


class TestDiameter:
    def test_line_diameter(self):
        assert structure_diameter(line_structure(7)) == 6

    def test_hexagon_diameter(self):
        assert structure_diameter(hexagon(2)) == 4

    def test_eccentricity_center_vs_corner(self):
        s = hexagon(2)
        assert eccentricity(s, Node(0, 0)) == 2
        assert eccentricity(s, Node(2, 0)) == 4

    def test_lollipop_asymmetry(self):
        s = lollipop(2, 10)
        tip = Node(12, 0)
        assert eccentricity(s, tip) == structure_diameter(s)
