"""Property tests for the flat grid index (``repro.grid.compiled``).

The :class:`GridIndex` arrays must agree with the independent,
dict-based adjacency queries of :class:`AmoebotStructure` on arbitrary
structures — including after arbitrary (validated) dynamics edit
batches, where the index is *derived* rather than rebuilt and every
surviving node keeps its integer id.
"""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics.edits import StructureEditor, generate_churn
from repro.grid.compiled import GRID_STATS, GridIndex
from repro.grid.coords import Node
from repro.grid.directions import Direction, all_directions_ccw
from repro.grid.structure import AmoebotStructure
from repro.workloads import random_hole_free


def assert_index_matches(structure: AmoebotStructure, index: GridIndex) -> None:
    """The index arrays agree with the structure's dict-based queries."""
    assert len(index) == len(structure)
    live = 0
    for nid in range(index.n_slots):
        node = index.nodes[nid]
        if node is None:
            # Tombstone: fully cleared.
            assert all(index.nbr[nid * 6 + d] == -1 for d in range(6))
            assert index.deg[nid] == 0
            continue
        live += 1
        assert node in structure
        assert index.id_of(node) == nid
        # Neighbor row vs AmoebotStructure.neighbors (independent path:
        # the structure filters node.neighbors() against its node set).
        expected = structure.neighbors(node)
        row = [
            index.nodes[index.nbr[nid * 6 + int(d)]]
            for d in all_directions_ccw()
            if index.nbr[nid * 6 + int(d)] >= 0
        ]
        assert tuple(row) == expected
        # Degree and boundary vs occupied_directions/degree.
        directions = structure.occupied_directions(node)
        assert index.deg[nid] == structure.degree(node) == len(directions)
        assert index.occupied_direction_values(nid) == [int(d) for d in directions]
        assert bool(index.boundary[nid]) == (structure.degree(node) < 6)
    assert live == len(structure)
    # Mirror-edge table: every present edge points back at itself.
    mate = index.mate_edges()
    for e in range(len(mate)):
        if mate[e] >= 0:
            assert index.nbr[e] == mate[e] // 6
            assert mate[mate[e]] == e


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=25, deadline=None)
def test_fresh_index_matches_structure(seed):
    rng = random.Random(seed)
    structure = random_hole_free(rng.randint(1, 60), seed=seed)
    assert_index_matches(structure, structure.grid_index())


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_index_ids_are_canonical_for_equal_node_sets(seed):
    structure = random_hole_free(30, seed=seed)
    other = AmoebotStructure(set(structure.nodes))
    a, b = structure.grid_index(), other.grid_index()
    assert a.nodes == b.nodes  # sorted order => identical id assignment
    assert a.nbr == b.nbr
    assert bytes(a.deg) == bytes(b.deg)


@given(
    st.integers(min_value=0, max_value=2**16),
    st.sampled_from(["growth", "erosion", "mixed", "block_move"]),
)
@settings(max_examples=20, deadline=None)
def test_derived_index_matches_after_churn(seed, kind):
    rng = random.Random(seed)
    structure = random_hole_free(rng.randint(8, 40), seed=seed)
    structure.grid_index()  # force the basis index so edits derive it
    script = generate_churn(
        structure, kind=kind, steps=3, batch_size=rng.randint(1, 4), seed=seed
    )
    editor = StructureEditor(structure)
    current = structure
    builds_before = GRID_STATS.full_builds
    for batch in script:
        previous = current
        id_snapshot = {
            u: current.grid_index().id_of(u)
            for u in current.nodes
            if u not in set(batch.remove)
        }
        editor.apply(batch)
        current = editor.structure(
            basis=previous, dirty=tuple(batch.remove) + tuple(batch.add)
        )
        index = current.grid_index()
        assert_index_matches(current, index)
        # Ids of surviving nodes are stable across the derive.
        for u, nid in id_snapshot.items():
            assert index.id_of(u) == nid
        # Departed nodes stay resolvable until re-added.
        for u in batch.remove:
            assert index.id_of(u) is None
            assert index.slot_of(u) is not None
        assert index.root is structure.grid_index().root
    # Churn never re-indexed from scratch.
    assert GRID_STATS.full_builds == builds_before


def test_single_node_and_full_ring():
    lone = AmoebotStructure([Node(0, 0)])
    index = lone.grid_index()
    assert len(index) == 1
    assert index.deg[0] == 0
    assert index.boundary[0] == 1

    ring = AmoebotStructure([Node(0, 0)] + Node(0, 0).neighbors())
    center = ring.grid_index().id_of(Node(0, 0))
    assert ring.grid_index().deg[center] == 6
    assert ring.grid_index().boundary[center] == 0


def test_mate_edges_rebuilt_after_derive():
    structure = AmoebotStructure([Node(0, 0), Node(1, 0)])
    index = structure.grid_index()
    mate = index.mate_edges()
    e = index.id_of(Node(0, 0)) * 6 + int(Direction.E)
    assert mate[e] == index.id_of(Node(1, 0)) * 6 + int(Direction.W)
    derived = index.derive(added=[Node(2, 0)], removed=[])
    fresh = derived.mate_edges()
    e2 = derived.id_of(Node(1, 0)) * 6 + int(Direction.E)
    assert fresh[e2] == derived.id_of(Node(2, 0)) * 6 + int(Direction.W)
