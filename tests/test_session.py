"""The :mod:`repro.api` facade: requests, sessions, caching, parity.

The migration contract: a request-built run must be bit-identical to
the historical kwarg-built call, identical requests must hit the
session's result store, and reports must survive a JSON round trip.
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    RequestError,
    Session,
    SolveReport,
    SolveRequest,
    iter_report_records,
)
from repro.experiments.spec import content_key
from repro.grid.compiled import GRID_STATS
from repro.sim.circuits import LAYOUT_STATS
from repro.spf.api import solve_spf
from repro.workloads import random_hole_free, sample_sources_destinations


class TestSolveRequest:
    def test_json_round_trip(self):
        request = SolveRequest(
            kind="route", shape="random:80:2", k=2, l=4, seed=1, tokens=5
        )
        blob = json.dumps(request.to_dict(), sort_keys=True)
        again = SolveRequest.from_dict(json.loads(blob))
        assert again == request
        assert again.key() == request.key()

    def test_key_is_content_hash_of_config(self):
        request = SolveRequest(shape="hexagon:3", k=1, l=2, seed=9)
        assert request.key() == content_key(request.config())

    def test_key_ignores_unset_kind_specific_fields(self):
        # A plain solve keys identically whether or not route/churn
        # knobs exist — the same stability contract as TrialSpec.
        assert "tokens" not in SolveRequest(shape="hexagon:3").config()
        assert "churn" not in SolveRequest(shape="hexagon:3").config()
        assert "scheduler" not in SolveRequest(shape="hexagon:3").config()

    def test_key_changes_with_any_set_knob(self):
        base = SolveRequest(shape="hexagon:3")
        assert base.key() != SolveRequest(shape="hexagon:4").key()
        assert base.key() != SolveRequest(shape="hexagon:3", seed=1).key()
        assert (
            base.key()
            != SolveRequest(shape="hexagon:3", scheduler="random:1").key()
        )

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(RequestError, match="unknown request fields"):
            SolveRequest.from_dict({"shape": "hexagon:3", "bogus": 1})

    def test_validation(self):
        with pytest.raises(RequestError, match="unknown request kind"):
            SolveRequest(kind="dance")
        with pytest.raises(RequestError, match="tokens"):
            SolveRequest(kind="solve", tokens=3)
        with pytest.raises(RequestError, match="churn"):
            SolveRequest(kind="churn", churn="melt", churn_steps=2)
        with pytest.raises(RequestError, match="scheduler"):
            SolveRequest(scheduler="bogus")
        with pytest.raises(RequestError, match="backend"):
            SolveRequest(backend="fortran")


class TestSessionParity:
    """Request-built runs are bit-identical to direct solver calls."""

    def test_solve_matches_solve_spf(self):
        structure = random_hole_free(80, seed=2)
        sources, destinations = sample_sources_destinations(
            structure, 2, 4, seed=0
        )
        direct = solve_spf(structure, sources, destinations)
        report = Session().run(
            SolveRequest(shape="random:80:2", k=2, l=4, seed=0)
        )
        assert report.rounds == direct.rounds
        assert report.algorithm == direct.algorithm
        assert report.forest_members == len(direct.forest.members)
        assert report.sources == sources
        assert report.destinations == destinations

    def test_scheduler_request_matches_scheduler_session(self):
        report_a = Session().run(
            SolveRequest(shape="random:40:3", k=1, l=2, scheduler="random:7")
        )
        report_b = Session(scheduler="random:7").run(
            SolveRequest(shape="random:40:3", k=1, l=2)
        )
        # Same engine path, but only the request-carried scheduler is
        # part of the content key.
        assert report_a.rounds == report_b.rounds
        assert report_a.key != report_b.key
        assert report_a.sched is not None
        assert report_a.sched["activations"] > 0

    def test_route_and_churn_reports(self):
        session = Session()
        route = session.route("random:80:2", k=2, l=4, seed=1, tokens=5)
        assert route.routing["tokens"] == 5
        assert route.routing["steps"] >= route.routing["lower_bound"]
        churn = session.churn(
            "random:80:1", k=1, l=3, seed=0, churn="growth", churn_steps=3,
            churn_batch=2,
        )
        assert churn.repair["edit_batches"] == 3
        assert len(churn.repair["batches"]) == 3
        assert churn.repair["initial_rounds"] > 0
        assert churn.repair["fresh_rounds"] > 0

    def test_report_round_trips_through_store_record(self):
        session = Session()
        report = session.solve("hexagon:3", k=1, l=3, seed=5)
        again = SolveReport.from_dict(report.to_dict())
        assert again.rounds == report.rounds
        assert again.key == report.key
        assert list(iter_report_records(session.store))[0]["key"] == report.key


class TestSessionCaching:
    def test_identical_request_is_served_from_store(self):
        session = Session()
        request = SolveRequest(shape="hexagon:3", k=1, l=3, seed=2)
        first = session.run(request)
        second = session.run(request)
        assert not first.cached
        assert second.cached
        assert second.rounds == first.rounds
        assert session.stats.cache_hits == 1
        assert session.stats.hit_rate == 0.5

    def test_resume_false_reexecutes_but_reuses_hot_state(self):
        session = Session()
        request = SolveRequest(shape="random:60:4", k=1, l=3, seed=1)
        session.run(request)
        GRID_STATS.reset()
        LAYOUT_STATS.reset()
        report = session.run(request, resume=False)
        # Re-execution reuses the warm structure (no new grid index
        # build) and the compiled layouts of the first run.
        assert not report.cached
        assert GRID_STATS.full_builds == 0
        assert LAYOUT_STATS.cache_hits > 0
        assert session.stats.structure_hits >= 1

    def test_file_store_resumes_across_sessions(self, tmp_path):
        path = tmp_path / "reports.jsonl"
        request = SolveRequest(shape="hexagon:3", k=1, l=2, seed=3)
        first = Session(store=path).run(request)
        revived = Session(store=path).run(request)
        assert revived.cached
        assert revived.rounds == first.rounds

    def test_events_stream_rounds_in_order(self):
        events = []
        Session().run(
            SolveRequest(shape="hexagon:3", k=1, l=3, seed=0),
            on_event=events.append,
        )
        names = [e["event"] for e in events]
        assert names[0] == "start"
        assert names[1] == "structure"
        assert names[-1] == "done"
        rounds = [e["rounds"] for e in events if e["event"] == "round"]
        assert rounds == sorted(rounds)
        assert rounds[-1] == events[-1]["rounds"]

    def test_cached_run_emits_cached_event(self):
        session = Session()
        request = SolveRequest(shape="hexagon:2", k=1, l=2)
        session.run(request)
        events = []
        session.run(request, on_event=events.append)
        assert [e["event"] for e in events] == ["cached"]

    def test_run_rejects_non_requests(self):
        with pytest.raises(TypeError, match="SolveRequest"):
            Session().run({"shape": "hexagon:2"})
