"""Tests for layout statistics (and the Remark 16 channel budget)."""

from repro.metrics.circuit_stats import layout_stats
from repro.pasc.chain import PascChainRun, chain_links_for_nodes
from repro.sim.engine import CircuitEngine
from repro.workloads import hexagon, line_structure, random_hole_free
from tests.conftest import bfs_tree_adjacency


class TestLayoutStats:
    def test_global_circuit_stats(self):
        s = hexagon(2)
        engine = CircuitEngine(s)
        stats = layout_stats(engine.global_layout())
        assert stats.circuits == 1
        assert stats.partition_sets == len(s)
        assert stats.largest_circuit == len(s)
        assert stats.max_channels_per_edge == 1

    def test_singleton_configuration(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        layout = engine.new_layout()
        for u in s:
            for d in s.occupied_directions(u):
                layout.assign(u, f"p{d.name}", [(d, 0)])
        stats = layout_stats(layout)
        assert stats.circuits == 3  # one per edge
        assert stats.largest_circuit == 2
        assert stats.singleton_circuits == 0

    def test_pasc_chain_uses_two_channels(self):
        s = line_structure(8)
        nodes = sorted(s.nodes)
        engine = CircuitEngine(s)
        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        layout = engine.new_layout()
        run.contribute_layout(layout)
        stats = layout_stats(layout)
        assert stats.max_channels_per_edge == 2  # primary + secondary

    def test_ett_respects_constant_channel_budget(self):
        # Remark 16 in circuit terms: the tour needs at most 4 channels
        # per physical edge (two directions x primary/secondary).
        s = random_hole_free(60, seed=500)
        root = s.westernmost()
        adjacency, _ = bfs_tree_adjacency(s, root)
        from repro.ett import ETTOp, build_euler_tour, mark_one_outgoing_edge

        tour = build_euler_tour(root, adjacency)
        op = ETTOp(tour, mark_one_outgoing_edge(tour, [root]))
        engine = CircuitEngine(s)
        layout = engine.new_layout()
        op.chain.contribute_layout(layout)
        stats = layout_stats(layout)
        assert stats.max_channels_per_edge <= 4
