"""Tests for the PASC algorithm: chains, weights, trees, parallelism.

These validate Lemmas 3-4 and Corollaries 5-6 of the paper on the
faithful circuit simulator.
"""

import itertools
import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.coords import Node
from repro.pasc.chain import ChainLink, PascChainRun, chain_links_for_nodes
from repro.pasc.runner import run_pasc
from repro.pasc.tree import PascTreeRun
from repro.sim.engine import CircuitEngine
from repro.workloads import line_structure
from tests.conftest import bfs_tree_adjacency


def line_nodes(length):
    return [Node(i, 0) for i in range(length)]


class TestChainDistance:
    @pytest.mark.parametrize("length", [1, 2, 3, 5, 8, 16, 17, 33])
    def test_every_amoebot_learns_its_index(self, length):
        s = line_structure(length)
        nodes = line_nodes(length)
        engine = CircuitEngine(s)
        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        run_pasc(engine, [run])
        assert run.node_values() == {u: i for i, u in enumerate(nodes)}

    def test_iteration_count_logarithmic(self):
        # Lemma 4: O(log m) iterations, two rounds each.
        for length in (4, 16, 64, 256):
            s = line_structure(length)
            nodes = line_nodes(length)
            engine = CircuitEngine(s)
            run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
            result = run_pasc(engine, [run])
            assert result.iterations <= math.ceil(math.log2(length)) + 1
            assert result.rounds == 2 * result.iterations

    def test_bits_arrive_lsb_first(self):
        s = line_structure(6)
        nodes = line_nodes(6)
        engine = CircuitEngine(s)
        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        # Execute exactly one iteration manually.
        layout = engine.new_layout()
        run.contribute_layout(layout)
        received = engine.run_round(layout, run.beeps())
        run.absorb(received)
        values = run.node_values()
        for i, u in enumerate(nodes):
            assert values[u] == i % 2  # bit 0 of the distance


class TestPrefixSums:
    @given(st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=40))
    @settings(max_examples=30, deadline=None)
    def test_exclusive_prefix_sums(self, weights):
        s = line_structure(len(weights))
        nodes = line_nodes(len(weights))
        engine = CircuitEngine(s)
        run = PascChainRun(
            [(u, "") for u in nodes],
            chain_links_for_nodes(nodes),
            weights=weights,
        )
        run_pasc(engine, [run])
        expected = list(itertools.accumulate([0] + weights[:-1]))
        got = [run.values()[(u, "")] for u in nodes]
        assert got == expected

    def test_inclusive_adds_own_weight(self):
        weights = [1, 0, 1, 1, 0]
        nodes = line_nodes(5)
        engine = CircuitEngine(line_structure(5))
        run = PascChainRun(
            [(u, "") for u in nodes], chain_links_for_nodes(nodes), weights=weights
        )
        run_pasc(engine, [run])
        inclusive = [run.inclusive_values()[(u, "")] for u in nodes]
        assert inclusive == list(itertools.accumulate(weights))

    def test_iterations_depend_on_weight_not_length(self):
        # Corollary 6: O(log W) rounds even on a long chain.
        length = 200
        nodes = line_nodes(length)
        s = line_structure(length)
        weights = [0] * length
        weights[150] = 1
        engine = CircuitEngine(s)
        run = PascChainRun(
            [(u, "") for u in nodes], chain_links_for_nodes(nodes), weights=weights
        )
        result = run_pasc(engine, [run])
        assert result.iterations <= 2

    def test_all_zero_weights(self):
        nodes = line_nodes(7)
        engine = CircuitEngine(line_structure(7))
        run = PascChainRun(
            [(u, "") for u in nodes], chain_links_for_nodes(nodes), weights=[0] * 7
        )
        result = run_pasc(engine, [run])
        assert all(v == 0 for v in run.node_values().values())
        assert result.iterations == 1  # one round reveals global silence


class TestChainValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(ValueError):
            PascChainRun([], [])

    def test_wrong_link_count(self):
        nodes = line_nodes(3)
        with pytest.raises(ValueError):
            PascChainRun([(u, "") for u in nodes], [])

    def test_link_endpoint_mismatch(self):
        nodes = line_nodes(3)
        from repro.grid.directions import Direction

        bad = [
            ChainLink(nodes[0], Direction.E, 0, 1),
            ChainLink(nodes[0], Direction.E, 0, 1),  # should start at nodes[1]
        ]
        with pytest.raises(ValueError):
            PascChainRun([(u, "") for u in nodes], bad)

    def test_bad_weights(self):
        nodes = line_nodes(2)
        with pytest.raises(ValueError):
            PascChainRun(
                [(u, "") for u in nodes],
                chain_links_for_nodes(nodes),
                weights=[2, 0],
            )

    def test_duplicate_unit_rejected(self):
        nodes = [Node(0, 0), Node(1, 0), Node(0, 0)]
        links = [
            ChainLink(Node(0, 0), Node(0, 0).direction_to(Node(1, 0)), 0, 1),
            ChainLink(Node(1, 0), Node(1, 0).direction_to(Node(0, 0)), 2, 3),
        ]
        with pytest.raises(ValueError):
            PascChainRun([(u, "") for u in nodes], links)

    def test_node_values_requires_unique_nodes(self):
        nodes = [Node(0, 0), Node(1, 0), Node(0, 0)]
        links = [
            ChainLink(Node(0, 0), Node(0, 0).direction_to(Node(1, 0)), 0, 1),
            ChainLink(Node(1, 0), Node(1, 0).direction_to(Node(0, 0)), 2, 3),
        ]
        run = PascChainRun([(u, str(i)) for i, u in enumerate(nodes)], links)
        with pytest.raises(ValueError):
            run.node_values()


class TestTreePasc:
    def test_depths_match_bfs(self, medium_hexagon):
        root = medium_hexagon.westernmost()
        adjacency, parent = bfs_tree_adjacency(medium_hexagon, root)
        engine = CircuitEngine(medium_hexagon)
        run = PascTreeRun(root, parent)
        run_pasc(engine, [run])
        from repro.grid.oracle import bfs_tree

        dist, _ = bfs_tree(medium_hexagon, root)
        assert run.values() == dist

    def test_rounds_scale_with_height_not_size(self):
        # A wide 2-row structure: many amoebots, height ~2.
        from repro.workloads import parallelogram

        s = parallelogram(50, 2)
        root = Node(0, 0)
        parent = {}
        for u in s:
            if u == root:
                continue
            if u.y == 0:
                parent[u] = Node(u.x - 1, 0)
            else:
                parent[u] = Node(u.x, 0)
        engine = CircuitEngine(s)
        run = PascTreeRun(root, parent)
        result = run_pasc(engine, [run])
        assert result.iterations <= 7  # log(height), not log(100)

    def test_single_node_tree(self):
        s = line_structure(1)
        engine = CircuitEngine(s)
        run = PascTreeRun(Node(0, 0), {})
        result = run_pasc(engine, [run])
        assert run.values() == {Node(0, 0): 0}
        assert result.iterations == 1

    def test_cycle_rejected(self):
        with pytest.raises(ValueError):
            PascTreeRun(Node(0, 0), {Node(1, 0): Node(2, 0), Node(2, 0): Node(1, 0)})

    def test_non_adjacent_edge_rejected(self):
        with pytest.raises(ValueError):
            PascTreeRun(Node(0, 0), {Node(5, 0): Node(0, 0)})

    def test_root_with_parent_rejected(self):
        with pytest.raises(ValueError):
            PascTreeRun(Node(0, 0), {Node(0, 0): Node(1, 0)})


class TestParallelRuns:
    def test_parallel_cost_is_shared(self):
        length = 32
        s = line_structure(length)
        nodes = line_nodes(length)
        engine = CircuitEngine(s)
        runs = [
            PascChainRun(
                [(u, f"a{j}") for u in nodes],
                chain_links_for_nodes(nodes, 2 * j, 2 * j + 1),
                tag=f"r{j}",
            )
            for j in range(3)
        ]
        result = run_pasc(engine, runs)
        for j, run in enumerate(runs):
            values = run.values()
            for i, u in enumerate(nodes):
                assert values[(u, f"a{j}")] == i
        assert result.rounds == 2 * result.iterations

    def test_runs_of_different_lengths_terminate_together(self):
        s = line_structure(40)
        nodes = line_nodes(40)
        engine = CircuitEngine(s)
        short = PascChainRun(
            [(u, "s") for u in nodes[:4]],
            chain_links_for_nodes(nodes[:4], 0, 1),
            tag="short",
        )
        long = PascChainRun(
            [(u, "l") for u in nodes],
            chain_links_for_nodes(nodes, 2, 3),
            tag="long",
        )
        result = run_pasc(engine, [short, long])
        assert short.node_values() == {u: i for i, u in enumerate(nodes[:4])}
        assert long.node_values() == {u: i for i, u in enumerate(nodes)}
        assert result.iterations <= 7

    def test_runaway_guard(self):
        s = line_structure(4)
        nodes = line_nodes(4)
        engine = CircuitEngine(s)

        class NeverDone(PascChainRun):
            def active_units(self):
                return [self.units[0]]

        run = NeverDone([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        with pytest.raises(RuntimeError):
            run_pasc(engine, [run], max_iterations=5)
