"""Tests for synchronous beep-round execution."""

import pytest

from repro.grid.coords import Node
from repro.sim.engine import CircuitEngine
from repro.sim.errors import PinConfigurationError
from repro.workloads import hexagon, line_structure, parallelogram
from repro.sim.amoebot import LocalState, assert_constant_size


class TestGlobalCircuit:
    def test_everyone_hears_one_beep(self):
        s = hexagon(2)
        engine = CircuitEngine(s)
        layout = engine.global_layout()
        received = engine.run_round(layout, [(Node(0, 0), "global")])
        assert all(received.values())
        assert len(received) == len(s)

    def test_silence_is_heard_as_silence(self):
        s = hexagon(1)
        engine = CircuitEngine(s)
        layout = engine.global_layout()
        received = engine.run_round(layout, [])
        assert not any(received.values())

    def test_multiple_beeps_indistinguishable(self):
        # Amoebots learn *that* someone beeped, not how many.
        s = line_structure(5)
        engine = CircuitEngine(s)
        layout = engine.global_layout()
        one = engine.run_round(layout, [(Node(0, 0), "global")])
        many = engine.run_round(
            layout, [(Node(i, 0), "global") for i in range(5)]
        )
        assert one == many


class TestRoundAccounting:
    def test_each_round_ticks_once(self):
        s = line_structure(3)
        engine = CircuitEngine(s)
        layout = engine.global_layout()
        for expected in range(1, 4):
            engine.run_round(layout, [])
            assert engine.rounds.total == expected

    def test_charge_local_round(self):
        engine = CircuitEngine(line_structure(2))
        engine.charge_local_round(3)
        assert engine.rounds.total == 3

    def test_shared_counter(self):
        from repro.metrics.rounds import RoundCounter

        counter = RoundCounter()
        engine = CircuitEngine(line_structure(2), counter=counter)
        engine.run_round(engine.global_layout(), [])
        assert counter.total == 1


class TestEdgeSubsetLayout:
    def test_components_of_edge_subset(self):
        s = line_structure(6)
        engine = CircuitEngine(s)
        edges = [
            (Node(0, 0), Node(1, 0)),
            (Node(1, 0), Node(2, 0)),
            (Node(4, 0), Node(5, 0)),
        ]
        layout = engine.edge_subset_layout(edges, label="net")
        received = engine.run_round(layout, [(Node(0, 0), "net")])
        assert received[(Node(2, 0), "net")]
        assert not received[(Node(4, 0), "net")]
        # Isolated amoebot (3, 0) still has a declared, silent set.
        assert not received[(Node(3, 0), "net")]

    def test_beeping_on_undeclared_set_raises(self):
        s = line_structure(3)
        engine = CircuitEngine(s)
        layout = engine.global_layout()
        with pytest.raises(PinConfigurationError):
            engine.run_round(layout, [(Node(0, 0), "missing")])


class TestBeepSemantics:
    def test_beep_reaches_exactly_its_circuit(self):
        s = parallelogram(4, 2)
        engine = CircuitEngine(s)
        top = [u for u in s if u.y == 1]
        bottom = [u for u in s if u.y == 0]
        layout = engine.new_layout()
        for row, label in ((top, "top"), (bottom, "bottom")):
            row_set = set(row)
            for u in row:
                pins = [
                    (d, 0)
                    for d in s.occupied_directions(u)
                    if u.neighbor(d) in row_set
                ]
                layout.assign(u, label, pins)
        received = engine.run_round(layout, [(top[0], "top")])
        assert all(received[(u, "top")] for u in top)
        assert not any(received[(u, "bottom")] for u in bottom)

    def test_sender_hears_its_own_beep(self):
        s = line_structure(2)
        engine = CircuitEngine(s)
        layout = engine.global_layout()
        received = engine.run_round(layout, [(Node(0, 0), "global")])
        assert received[(Node(0, 0), "global")]


class TestLocalState:
    def test_constant_size_passes(self):
        states = {i: LocalState() for i in range(5)}
        assert_constant_size(states)

    def test_oversized_state_detected(self):
        import dataclasses

        @dataclasses.dataclass
        class Big(LocalState):
            blob: tuple = tuple(range(1000))

        with pytest.raises(AssertionError):
            assert_constant_size({0: Big()})
