"""Tests for the public API (solve_spf), Forest type, and baselines."""

import random

import pytest

from repro.grid.coords import Node
from repro.grid.oracle import bfs_distances
from repro.sim.engine import CircuitEngine
from repro.baselines import bfs_wave_forest, sequential_merge_forest
from repro.spf import solve_spf
from repro.spf.types import Forest
from repro.verify import assert_valid_forest
from repro.workloads import hexagon, line_structure, random_hole_free


class TestForestType:
    def _simple_forest(self):
        nodes = [Node(i, 0) for i in range(4)]
        parent = {nodes[1]: nodes[0], nodes[2]: nodes[1], nodes[3]: nodes[2]}
        return Forest({nodes[0]}, parent, set(nodes)), nodes

    def test_root_and_depth(self):
        forest, nodes = self._simple_forest()
        assert forest.root_of(nodes[3]) == nodes[0]
        assert forest.depth_of(nodes[3]) == 3
        assert forest.depth_of(nodes[0]) == 0

    def test_children(self):
        forest, nodes = self._simple_forest()
        children = forest.children()
        assert children[nodes[0]] == [nodes[1]]
        assert children[nodes[3]] == []

    def test_tree_parent_maps(self):
        forest, nodes = self._simple_forest()
        trees = forest.tree_parent_maps()
        assert set(trees) == {nodes[0]}
        assert len(trees[nodes[0]]) == 3

    def test_missing_parent_rejected(self):
        nodes = [Node(i, 0) for i in range(3)]
        with pytest.raises(ValueError):
            Forest({nodes[0]}, {}, set(nodes))

    def test_no_sources_rejected(self):
        with pytest.raises(ValueError):
            Forest(set(), {}, set())

    def test_cycle_detected_on_traversal(self):
        a, b, c = Node(0, 0), Node(1, 0), Node(2, 0)
        forest = Forest({a}, {b: c, c: b}, {a, b, c})
        with pytest.raises(ValueError):
            forest.root_of(b)

    def test_restricted_to(self):
        forest, nodes = self._simple_forest()
        sub = forest.restricted_to(set(nodes[:2]))
        assert sub.members == set(nodes[:2])
        with pytest.raises(ValueError):
            forest.restricted_to({nodes[3]})


class TestSolveSpf:
    def test_dispatches_to_spt_for_single_source(self):
        s = hexagon(2)
        nodes = sorted(s.nodes)
        solution = solve_spf(s, [nodes[0]], nodes[-3:])
        assert solution.algorithm == "spt"
        assert_valid_forest(s, [nodes[0]], nodes[-3:], solution.forest.parent)

    def test_dispatches_to_forest_for_multi_source(self):
        s = hexagon(2)
        nodes = sorted(s.nodes)
        solution = solve_spf(s, nodes[:3], nodes[-3:])
        assert solution.algorithm == "forest"
        assert_valid_forest(s, nodes[:3], nodes[-3:], solution.forest.parent)

    def test_rounds_reported(self):
        s = hexagon(2)
        nodes = sorted(s.nodes)
        solution = solve_spf(s, [nodes[0]], [nodes[-1]])
        assert solution.rounds > 0

    def test_empty_inputs_rejected(self):
        s = hexagon(1)
        with pytest.raises(ValueError):
            solve_spf(s, [], [Node(0, 0)])
        with pytest.raises(ValueError):
            solve_spf(s, [Node(0, 0)], [])

    def test_external_engine_accumulates(self):
        s = hexagon(2)
        nodes = sorted(s.nodes)
        engine = CircuitEngine(s)
        first = solve_spf(s, [nodes[0]], [nodes[-1]], engine=engine)
        second = solve_spf(s, [nodes[1]], [nodes[-2]], engine=engine)
        assert engine.rounds.total == first.rounds + second.rounds


class TestBfsWave:
    def test_distances_correct(self):
        s = random_hole_free(90, seed=21)
        nodes = sorted(s.nodes)
        rng = random.Random(2)
        sources = rng.sample(nodes, 3)
        engine = CircuitEngine(s)
        forest = bfs_wave_forest(engine, s, sources)
        oracle = bfs_distances(s, sources)
        for u in forest.members:
            assert forest.depth_of(u) == oracle[u]

    def test_rounds_equal_source_eccentricity(self):
        s = line_structure(50)
        engine = CircuitEngine(s)
        bfs_wave_forest(engine, s, [Node(0, 0)])
        # 49 wave rounds + 1 termination round.
        assert engine.rounds.total == 50

    def test_stops_early_with_near_destinations(self):
        s = line_structure(50)
        engine = CircuitEngine(s)
        bfs_wave_forest(engine, s, [Node(0, 0)], destinations=[Node(5, 0)])
        assert engine.rounds.total == 6

    def test_wave_vs_circuit_rounds(self):
        # The headline contrast: on a long line, the wave pays the
        # diameter while the circuit algorithm pays O(1).
        s = line_structure(120)
        wave_engine = CircuitEngine(s)
        bfs_wave_forest(wave_engine, s, [Node(0, 0)], destinations=[Node(119, 0)])
        from repro.spf.spt import shortest_path_tree

        circuit_engine = CircuitEngine(s)
        shortest_path_tree(circuit_engine, s, Node(0, 0), [Node(119, 0)])
        assert circuit_engine.rounds.total < wave_engine.rounds.total / 2

    def test_empty_sources_rejected(self):
        s = hexagon(1)
        with pytest.raises(ValueError):
            bfs_wave_forest(CircuitEngine(s), s, [])


class TestSequentialMerge:
    def test_valid_forest(self):
        s = random_hole_free(80, seed=23)
        nodes = sorted(s.nodes)
        rng = random.Random(3)
        sources = rng.sample(nodes, 4)
        engine = CircuitEngine(s)
        forest = sequential_merge_forest(engine, s, sources)
        assert_valid_forest(s, sources, nodes, forest.parent)

    def test_rounds_linear_in_k(self):
        s = random_hole_free(120, seed=24)
        from repro.workloads import spread_nodes

        rounds = {}
        for k in (2, 8):
            sources = spread_nodes(s, k)
            engine = CircuitEngine(s)
            sequential_merge_forest(engine, s, sources)
            rounds[k] = engine.rounds.total
        # Quadrupling k must roughly quadruple the cost (it is O(k log n)).
        assert rounds[8] >= 2.5 * rounds[2]

    def test_duplicate_sources_deduplicated(self):
        s = hexagon(2)
        nodes = sorted(s.nodes)
        engine = CircuitEngine(s)
        forest = sequential_merge_forest(engine, s, [nodes[0], nodes[0]])
        assert forest.sources == {nodes[0]}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sequential_merge_forest(CircuitEngine(hexagon(1)), hexagon(1), [])
