"""Tests for the region decomposition (§5.4.1, Lemmas 51-52)."""

import random

import pytest

from repro.grid.coords import Node
from repro.grid.directions import Axis
from repro.portals.portals import PortalSystem
from repro.portals.primitives import portal_root_and_prune
from repro.sim.engine import CircuitEngine
from repro.spf.regions import RegionDecomposition
from repro.workloads import parallelogram, random_hole_free


def build_decomposition(structure, k, seed):
    system = PortalSystem(structure, Axis.X)
    rng = random.Random(seed)
    sources = rng.sample(sorted(structure.nodes), k)
    q = system.portals_containing(sources)
    root = system.portal_of[structure.westernmost()]
    engine = CircuitEngine(structure)
    rp = portal_root_and_prune(
        engine, system, root, q, compute_augmentation=True
    )
    q_prime = q | rp.augmentation
    decomposition = RegionDecomposition(system, q_prime, rp.in_vq)
    regions = decomposition.build_regions()
    return system, q_prime, decomposition, regions, set(sources)


class TestRegionStructure:
    @pytest.mark.parametrize("seed", range(5))
    def test_lemma52_at_most_two_boundary_portals(self, seed):
        s = random_hole_free(140, seed=seed + 50)
        _system, _qp, _dec, regions, _src = build_decomposition(s, 6, seed)
        for region in regions:
            assert 1 <= len(region.boundary_portals()) <= 2

    @pytest.mark.parametrize("seed", range(5))
    def test_regions_cover_structure(self, seed):
        s = random_hole_free(140, seed=seed + 50)
        _system, _qp, _dec, regions, _src = build_decomposition(s, 6, seed)
        covered = set()
        for region in regions:
            covered |= region.nodes
        assert covered == set(s.nodes)

    @pytest.mark.parametrize("seed", range(5))
    def test_regions_connected(self, seed):
        s = random_hole_free(140, seed=seed + 50)
        _system, _qp, _dec, regions, _src = build_decomposition(s, 6, seed)
        for region in regions:
            nodes = region.nodes
            start = next(iter(nodes))
            seen = {start}
            stack = [start]
            while stack:
                u = stack.pop()
                for v in s.neighbors(u):
                    if v in nodes and v not in seen:
                        seen.add(v)
                        stack.append(v)
            assert seen == nodes

    def test_overlap_only_on_q_prime_portals_and_marks(self):
        s = random_hole_free(140, seed=55)
        system, q_prime, _dec, regions, _src = build_decomposition(s, 6, 1)
        q_prime_nodes = set()
        for p in q_prime:
            q_prime_nodes.update(p.nodes)
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                overlap = a.nodes & b.nodes
                assert overlap <= q_prime_nodes

    def test_sources_covered_by_boundary_vertices(self):
        s = random_hole_free(140, seed=56)
        system, _qp, _dec, regions, sources = build_decomposition(s, 6, 2)
        for source in sources:
            holders = [
                r
                for r in regions
                if any(
                    source in v.nodes for v in r.boundary_vertices()
                )
            ]
            assert holders, f"source {source} not on any region boundary"


class TestSubPortals:
    def test_single_portal_no_marks(self):
        # k sources all on one portal: no VQ-neighbors marked beyond the
        # westernmost, so each side is a single interval.
        s = parallelogram(10, 5)
        system = PortalSystem(s, Axis.X)
        row = [Node(i, 2) for i in range(10)]
        q = {system.portal_of[row[0]]}
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        rp = portal_root_and_prune(engine, system, root, q, compute_augmentation=True)
        dec = RegionDecomposition(system, q, rp.in_vq)
        regions = dec.build_regions()
        portal = system.portal_of[row[0]]
        for side in ("N", "S"):
            assert len(dec.side_vertices(portal, side)) >= 1

    def test_side_vertices_ordered_west_to_east(self):
        s = random_hole_free(140, seed=57)
        system, q_prime, dec, _regions, _src = build_decomposition(s, 7, 3)
        for portal in q_prime:
            for side in ("N", "S"):
                vertices = dec.side_vertices(portal, side)
                starts = [v.start for v in vertices]
                assert starts == sorted(starts)
                # Consecutive intervals share their boundary mark.
                for a, b in zip(vertices, vertices[1:]):
                    assert a.end == b.start

    def test_non_q_portal_has_no_sides(self):
        s = random_hole_free(140, seed=58)
        system, q_prime, dec, _regions, _src = build_decomposition(s, 4, 4)
        other = next(p for p in system.portals if p not in q_prime)
        with pytest.raises(KeyError):
            dec.side_vertices(other, "N")


class TestReplaceRegions:
    def test_vertex_remapping(self):
        s = random_hole_free(100, seed=59)
        _system, _qp, dec, regions, _src = build_decomposition(s, 4, 5)
        from repro.spf.regions import Region

        a, b = regions[0], regions[1]
        merged = Region(
            vertices=a.vertices + b.vertices, nodes=a.nodes | b.nodes
        )
        dec.replace_regions([a, b], merged)
        for vertex in a.vertices + b.vertices:
            assert dec.region_of_vertex(vertex) is merged
