"""Tests for pin configurations, partition sets, and circuits."""

import pytest

from repro.grid.coords import Node
from repro.grid.directions import Direction
from repro.sim.circuits import CircuitLayout
from repro.sim.errors import PinConfigurationError
from repro.sim.pins import Pin
from repro.workloads import hexagon, line_structure, parallelogram


class TestPin:
    def test_mate_roundtrip(self):
        pin = Pin(Node(0, 0), Direction.E, 1)
        mate = pin.mate()
        assert mate.node == Node(1, 0)
        assert mate.direction == Direction.W
        assert mate.channel == 1
        assert mate.mate() == pin


class TestLayoutValidation:
    def test_channel_out_of_range(self):
        s = line_structure(2)
        layout = CircuitLayout(s, channels=2)
        with pytest.raises(PinConfigurationError):
            layout.assign(Node(0, 0), "a", [(Direction.E, 5)])

    def test_pin_toward_unoccupied_neighbor(self):
        s = line_structure(2)
        layout = CircuitLayout(s, channels=2)
        with pytest.raises(PinConfigurationError):
            layout.assign(Node(0, 0), "a", [(Direction.NE, 0)])

    def test_node_outside_structure(self):
        s = line_structure(2)
        layout = CircuitLayout(s, channels=2)
        with pytest.raises(PinConfigurationError):
            layout.assign(Node(7, 7), "a", [])

    def test_pin_in_two_partition_sets(self):
        s = line_structure(2)
        layout = CircuitLayout(s, channels=2)
        layout.assign(Node(0, 0), "a", [(Direction.E, 0)])
        with pytest.raises(PinConfigurationError):
            layout.assign(Node(0, 0), "b", [(Direction.E, 0)])

    def test_repeated_assign_same_label_ok(self):
        s = line_structure(3)
        layout = CircuitLayout(s, channels=2)
        layout.assign(Node(1, 0), "a", [(Direction.E, 0)])
        layout.assign(Node(1, 0), "a", [(Direction.W, 0)])
        layout.freeze()
        assert (Node(1, 0), "a") in layout.partition_sets()

    def test_assign_after_freeze_rejected(self):
        s = line_structure(2)
        layout = CircuitLayout(s, channels=2)
        layout.freeze()
        with pytest.raises(PinConfigurationError):
            layout.declare(Node(0, 0), "x")

    def test_zero_channels_rejected(self):
        with pytest.raises(PinConfigurationError):
            CircuitLayout(line_structure(2), channels=0)


class TestCircuitFormation:
    def test_single_wire_chain(self):
        s = line_structure(4)
        layout = CircuitLayout(s, channels=1)
        for u in s:
            pins = [(d, 0) for d in s.occupied_directions(u)]
            layout.assign(u, "wire", pins)
        circuits = layout.circuits()
        assert len(circuits) == 1
        assert len(circuits[0]) == 4

    def test_singleton_sets_make_pairwise_circuits(self):
        # "If each partition set is a singleton, every circuit just
        # connects two neighboring amoebots" (Section 1.2).
        s = line_structure(3)
        layout = CircuitLayout(s, channels=1)
        for u in s:
            for d in s.occupied_directions(u):
                layout.assign(u, f"p{d.name}", [(d, 0)])
        circuits = layout.circuits()
        assert all(len(c) == 2 for c in circuits)
        assert len(circuits) == 2

    def test_cut_in_the_middle(self):
        s = line_structure(5)
        layout = CircuitLayout(s, channels=1)
        for u in s:
            if u == Node(2, 0):
                # The middle amoebot splits its pins into two sets.
                layout.assign(u, "west", [(Direction.W, 0)])
                layout.assign(u, "east", [(Direction.E, 0)])
            else:
                layout.assign(u, "wire", [(d, 0) for d in s.occupied_directions(u)])
        assert len(layout.circuits()) == 2

    def test_disjoint_channels_make_disjoint_circuits(self):
        s = line_structure(3)
        layout = CircuitLayout(s, channels=2)
        for u in s:
            layout.assign(u, "c0", [(d, 0) for d in s.occupied_directions(u)])
            layout.assign(u, "c1", [(d, 1) for d in s.occupied_directions(u)])
        circuits = layout.circuits()
        assert len(circuits) == 2
        assert layout.circuit_of(Node(0, 0), "c0") != layout.circuit_of(Node(0, 0), "c1")

    def test_unassigned_pins_are_inert(self):
        # Partially wired structures: pins never assigned do not join
        # circuits, so isolated partition sets stay isolated.
        s = parallelogram(3, 2)
        layout = CircuitLayout(s, channels=1)
        layout.assign(Node(0, 0), "solo", [(Direction.E, 0)])
        layout.declare(Node(2, 1), "flag")
        circuits = layout.circuits()
        assert len(circuits) == 2

    def test_circuit_of_undeclared_raises(self):
        s = line_structure(2)
        layout = CircuitLayout(s, channels=1)
        layout.freeze()
        with pytest.raises(PinConfigurationError):
            layout.circuit_of(Node(0, 0), "nope")

    def test_component_map_consistent_with_circuits(self):
        s = hexagon(2)
        layout = CircuitLayout(s, channels=1)
        for u in s:
            layout.assign(u, "g", [(d, 0) for d in s.occupied_directions(u)])
        component_map = layout.component_map()
        circuits = layout.circuits()
        for index, members in enumerate(circuits):
            for set_id in members:
                assert component_map[set_id] == index
