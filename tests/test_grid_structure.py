"""Tests for AmoebotStructure: connectivity, adjacency, geometry."""

import pytest

from repro.grid.coords import Node
from repro.grid.directions import Axis
from repro.grid.structure import AmoebotStructure, StructureError
from repro.workloads import hexagon, line_structure, parallelogram


class TestConstruction:
    def test_empty_rejected(self):
        with pytest.raises(StructureError):
            AmoebotStructure([])

    def test_disconnected_rejected(self):
        with pytest.raises(StructureError):
            AmoebotStructure([Node(0, 0), Node(5, 5)])

    def test_holey_rejected(self):
        ring = [n for n in hexagon(1).nodes if n != Node(0, 0)]
        with pytest.raises(StructureError):
            AmoebotStructure(ring)

    def test_holey_allowed_when_requested(self):
        ring = [n for n in hexagon(1).nodes if n != Node(0, 0)]
        s = AmoebotStructure(ring, require_hole_free=False)
        assert len(s) == 6

    def test_duplicates_collapse(self):
        s = AmoebotStructure([Node(0, 0), Node(0, 0), Node(1, 0)])
        assert len(s) == 2

    def test_equality_and_hash(self):
        a = AmoebotStructure([Node(0, 0), Node(1, 0)])
        b = AmoebotStructure([Node(1, 0), Node(0, 0)])
        assert a == b
        assert hash(a) == hash(b)


class TestAdjacency:
    def test_neighbors_subset_of_structure(self):
        s = hexagon(2)
        for u in s:
            for v in s.neighbors(u):
                assert v in s

    def test_neighbors_of_outsider_raises(self):
        s = hexagon(1)
        with pytest.raises(KeyError):
            s.neighbors(Node(10, 10))

    def test_interior_degree_six(self):
        s = hexagon(2)
        assert s.degree(Node(0, 0)) == 6

    def test_line_end_degree_one(self):
        s = line_structure(5)
        assert s.degree(Node(0, 0)) == 1
        assert s.degree(Node(4, 0)) == 1

    def test_occupied_directions_match_neighbors(self):
        s = hexagon(2)
        for u in s:
            dirs = s.occupied_directions(u)
            assert len(dirs) == s.degree(u)
            for d in dirs:
                assert u.neighbor(d) in s

    def test_edge_count_hexagon(self):
        # A hexagon of radius r has 9r^2 + 3r edges.
        for r in (1, 2, 3):
            assert hexagon(r).edge_count() == 9 * r * r + 3 * r

    def test_edges_listed_once(self):
        s = parallelogram(4, 3)
        edges = s.edges()
        canonical = {(min(u, v), max(u, v)) for u, v in edges}
        assert len(canonical) == len(edges)


class TestGeometry:
    def test_bounding_box(self):
        s = parallelogram(4, 3, Node(2, 1))
        assert s.bounding_box() == (2, 5, 1, 3)

    def test_westernmost_deterministic(self):
        s = parallelogram(3, 3)
        # Rows shift eastward with y, so (0, 0) is the unique westernmost.
        assert s.westernmost() == Node(0, 0)

    def test_westernmost_of_subset(self):
        s = parallelogram(4, 1)
        assert s.westernmost([Node(3, 0), Node(1, 0)]) == Node(1, 0)

    def test_northernmost(self):
        s = parallelogram(3, 3)
        assert s.northernmost().y == 2

    def test_line_through_full_row(self):
        s = parallelogram(5, 2)
        line = s.line_through(Node(2, 0), Axis.X)
        assert line == [Node(i, 0) for i in range(5)]

    def test_line_through_is_ordered_positive(self):
        s = hexagon(2)
        line = s.line_through(Node(0, 0), Axis.Y)
        coords = [u.y for u in line]
        assert coords == sorted(coords)

    def test_line_through_singleton(self):
        s = line_structure(4)
        assert s.line_through(Node(1, 0), Axis.Y) == [Node(1, 0)]
