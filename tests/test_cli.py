"""Tests for the command line interface."""

import pytest

from repro.cli import main, make_structure
from repro.workloads import hexagon


class TestMakeStructure:
    def test_hexagon(self):
        assert make_structure("hexagon:2") == hexagon(2)

    def test_random_with_seed(self):
        a = make_structure("random:50:3")
        b = make_structure("random:50:3")
        assert a == b
        assert len(a) == 50

    def test_dendrite(self):
        assert len(make_structure("dendrite:30:1")) == 30

    def test_parallelogram(self):
        assert len(make_structure("parallelogram:4:3")) == 12

    def test_line_comb_staircase_triangle(self):
        assert len(make_structure("line:7")) == 7
        assert len(make_structure("triangle:4")) == 10
        make_structure("comb:3:2")
        make_structure("staircase:3:2")

    def test_lollipop(self):
        from repro.workloads import lollipop

        assert make_structure("lollipop:2:10") == lollipop(2, 10)
        assert len(make_structure("lollipop:2:10")) == 29

    def test_unknown_shape(self):
        with pytest.raises(SystemExit):
            make_structure("torus:3")

    def test_bad_arity(self):
        with pytest.raises(SystemExit):
            make_structure("hexagon:1:2:3")

    def test_non_integer_argument(self):
        with pytest.raises(SystemExit):
            make_structure("hexagon:big")


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "--shape", "hexagon:2", "-k", "2", "-l", "2"]) == 0
        out = capsys.readouterr().out
        assert "synchronous rounds" in out
        assert "algorithm: forest" in out

    def test_solve_single_source_ascii(self, capsys):
        assert main(
            ["solve", "--shape", "hexagon:2", "-k", "1", "-l", "2", "--ascii"]
        ) == 0
        out = capsys.readouterr().out
        assert "algorithm: spt" in out
        assert "S" in out

    def test_solve_spread(self, capsys):
        assert main(
            ["solve", "--shape", "random:60:2", "-k", "3", "-l", "2", "--spread"]
        ) == 0
        assert "hops" in capsys.readouterr().out

    def test_sweep_spsp(self, capsys):
        assert main(["sweep", "spsp"]) == 0
        out = capsys.readouterr().out
        assert "SPSP rounds vs n" in out

    def test_info(self, capsys):
        assert main(["info", "--shape", "hexagon:2"]) == 0
        out = capsys.readouterr().out
        assert "X-portals" in out
        assert "tree: True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])


class TestCampaignCommand:
    def test_list(self, capsys):
        assert main(["campaign", "list"]) == 0
        out = capsys.readouterr().out
        assert "spsp-small" in out
        assert "trials" in out

    def test_run_and_resume_cache_hits(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        spec = tmp_path / "campaign.json"
        spec.write_text(
            """
            {"name": "cli-tiny", "scenarios": [
                {"name": "hex", "shape": "hexagon:2",
                 "ks": [1, 2], "ls": [2], "seeds": [0]}
            ]}
            """
        )
        assert main(
            ["campaign", "run", "--spec", str(spec), "--store", store,
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "executed 2, cache hits 0" in out
        assert (tmp_path / "results.jsonl").exists()

        assert main(
            ["campaign", "resume", "--spec", str(spec), "--store", store]
        ) == 0
        out = capsys.readouterr().out
        assert "executed 0, cache hits 2" in out
        assert "scenario 'hex'" in out

    def test_run_builtin_by_name(self, tmp_path, capsys):
        store = str(tmp_path / "spsp.jsonl")
        assert main(
            ["campaign", "run", "--name", "spsp-small", "--store", store,
             "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "campaign 'spsp-small': 4 trials" in out
        assert "scenario 'spsp'" in out

    def test_summarize(self, tmp_path, capsys):
        store = str(tmp_path / "results.jsonl")
        spec = tmp_path / "campaign.json"
        spec.write_text(
            '{"name": "t", "scenarios": '
            '[{"name": "hex", "shape": "hexagon:2", "ls": [2]}]}'
        )
        assert main(
            ["campaign", "run", "--spec", str(spec), "--store", store,
             "--quiet"]
        ) == 0
        capsys.readouterr()
        assert main(["campaign", "summarize", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "scenario 'hex'" in out

    def test_errors(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown campaign"):
            main(["campaign", "run", "--name", "nope"])
        with pytest.raises(SystemExit, match="required"):
            main(["campaign", "run"])
        with pytest.raises(SystemExit, match="resume"):
            main(
                ["campaign", "resume", "--name", "spsp-small", "--store",
                 str(tmp_path / "absent.jsonl")]
            )
        with pytest.raises(SystemExit, match="no result store"):
            main(["campaign", "summarize", "--store", str(tmp_path / "no.jsonl")])
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.raises(SystemExit, match="bad campaign spec"):
            main(["campaign", "run", "--spec", str(bad)])


class TestRouteCommand:
    def test_route_reports_stats(self, capsys):
        assert main(["route", "--shape", "hexagon:3", "-k", "1", "-l", "3"]) == 0
        out = capsys.readouterr().out
        assert "steps (makespan):" in out
        assert "congestion overhead:" in out
        assert "total moves:" in out

    def test_route_with_sampled_tokens(self, capsys):
        assert main(
            ["route", "--shape", "random:80:2", "-k", "2", "-l", "4",
             "--tokens", "5", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "tokens routed: 5" in out


class TestChurnCommand:
    def test_churn_reports_repairs(self, capsys):
        assert main(
            ["churn", "--shape", "random:80:1", "-k", "1", "-l", "3",
             "--kind", "growth", "--steps", "3", "--batch", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "initial solve:" in out
        assert "repair total:" in out
        assert out.count("patch") + out.count("full") >= 3

    def test_churn_with_faults_and_ascii(self, capsys):
        assert main(
            ["churn", "--shape", "random:60:1", "-k", "1", "-l", "2",
             "--kind", "mixed", "--steps", "2", "--batch", "2",
             "--drop", "0.3", "--ascii"]
        ) == 0
        out = capsys.readouterr().out
        assert "faults:" in out
        assert "S" in out  # the rendered frame marks the source

    def test_churn_unknown_kind(self):
        with pytest.raises(SystemExit):
            main(["churn", "--shape", "hexagon:2", "--kind", "melt"])


class TestStoreCompactionCLI:
    def test_resume_compacts_superseded_lines(self, tmp_path, capsys):
        store = tmp_path / "s.jsonl"
        assert main(
            ["campaign", "run", "--name", "spsp-small", "--store", str(store),
             "--quiet"]
        ) == 0
        # Force duplicate lines, then resume: the CLI compacts first.
        assert main(
            ["campaign", "run", "--name", "spsp-small", "--store", str(store),
             "--quiet", "--fresh"]
        ) == 0
        assert main(
            ["campaign", "resume", "--name", "spsp-small", "--store", str(store),
             "--quiet"]
        ) == 0
        out = capsys.readouterr().out
        assert "compacted store: dropped 4 superseded line(s)" in out
        lines = [l for l in store.read_text().splitlines() if l.strip()]
        assert len(lines) == 4
