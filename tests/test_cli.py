"""Tests for the command line interface."""

import pytest

from repro.cli import main, make_structure
from repro.workloads import hexagon


class TestMakeStructure:
    def test_hexagon(self):
        assert make_structure("hexagon:2") == hexagon(2)

    def test_random_with_seed(self):
        a = make_structure("random:50:3")
        b = make_structure("random:50:3")
        assert a == b
        assert len(a) == 50

    def test_dendrite(self):
        assert len(make_structure("dendrite:30:1")) == 30

    def test_parallelogram(self):
        assert len(make_structure("parallelogram:4:3")) == 12

    def test_line_comb_staircase_triangle(self):
        assert len(make_structure("line:7")) == 7
        assert len(make_structure("triangle:4")) == 10
        make_structure("comb:3:2")
        make_structure("staircase:3:2")

    def test_unknown_shape(self):
        with pytest.raises(SystemExit):
            make_structure("torus:3")

    def test_bad_arity(self):
        with pytest.raises(SystemExit):
            make_structure("hexagon:1:2:3")


class TestCommands:
    def test_solve(self, capsys):
        assert main(["solve", "--shape", "hexagon:2", "-k", "2", "-l", "2"]) == 0
        out = capsys.readouterr().out
        assert "synchronous rounds" in out
        assert "algorithm: forest" in out

    def test_solve_single_source_ascii(self, capsys):
        assert main(
            ["solve", "--shape", "hexagon:2", "-k", "1", "-l", "2", "--ascii"]
        ) == 0
        out = capsys.readouterr().out
        assert "algorithm: spt" in out
        assert "S" in out

    def test_solve_spread(self, capsys):
        assert main(
            ["solve", "--shape", "random:60:2", "-k", "3", "-l", "2", "--spread"]
        ) == 0
        assert "hops" in capsys.readouterr().out

    def test_sweep_spsp(self, capsys):
        assert main(["sweep", "spsp"]) == 0
        out = capsys.readouterr().out
        assert "SPSP rounds vs n" in out

    def test_info(self, capsys):
        assert main(["info", "--shape", "hexagon:2"]) == 0
        out = capsys.readouterr().out
        assert "X-portals" in out
        assert "tree: True" in out

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            main([])
