"""Unit tests for directions and axes of the triangular grid."""

import pytest

from repro.grid.directions import (
    Axis,
    Direction,
    DIRECTION_OFFSETS,
    all_directions_ccw,
    clockwise,
    counterclockwise,
    direction_between,
    opposite,
)


class TestDirectionBasics:
    def test_six_directions(self):
        assert len(list(Direction)) == 6

    def test_offsets_are_unit_steps(self):
        for d in Direction:
            dx, dy = DIRECTION_OFFSETS[d]
            assert (abs(dx) + abs(dy) + abs(dx + dy)) // 2 == 1

    def test_offsets_distinct(self):
        assert len(set(DIRECTION_OFFSETS.values())) == 6

    def test_opposite_offsets_cancel(self):
        for d in Direction:
            dx, dy = DIRECTION_OFFSETS[d]
            ox, oy = DIRECTION_OFFSETS[opposite(d)]
            assert (dx + ox, dy + oy) == (0, 0)

    def test_opposite_is_involution(self):
        for d in Direction:
            assert opposite(opposite(d)) == d

    def test_ccw_rotation_order(self):
        assert counterclockwise(Direction.E) == Direction.NE
        assert counterclockwise(Direction.SE) == Direction.E

    def test_cw_inverts_ccw(self):
        for d in Direction:
            for steps in range(7):
                assert clockwise(counterclockwise(d, steps), steps) == d

    def test_full_turn_is_identity(self):
        for d in Direction:
            assert counterclockwise(d, 6) == d

    def test_all_directions_ccw_starts_anywhere(self):
        seq = all_directions_ccw(Direction.W)
        assert seq[0] == Direction.W
        assert len(set(seq)) == 6


class TestAxes:
    def test_three_axes(self):
        assert len(list(Axis)) == 3

    def test_axis_directions_are_opposite(self):
        for axis in Axis:
            pos, neg = axis.directions
            assert opposite(pos) == neg

    def test_each_direction_has_one_axis(self):
        for d in Direction:
            assert d.axis in Axis
            assert d in d.axis.directions

    def test_axis_others(self):
        for axis in Axis:
            others = axis.others
            assert len(others) == 2
            assert axis not in others

    def test_x_axis_is_east_west(self):
        assert Axis.X.directions == (Direction.E, Direction.W)


class TestDirectionBetween:
    def test_adjacent(self):
        assert direction_between((0, 0), (1, 0)) == Direction.E
        assert direction_between((0, 0), (0, 1)) == Direction.NE
        assert direction_between((2, 3), (1, 4)) == Direction.NW

    def test_non_adjacent_raises(self):
        with pytest.raises(ValueError):
            direction_between((0, 0), (2, 0))

    def test_same_node_raises(self):
        with pytest.raises(ValueError):
            direction_between((1, 1), (1, 1))
