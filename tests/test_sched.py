"""Event-driven activation engine: schedulers, determinism, faults.

The round-synchronization barrier makes every scheduler compute the
*same* forests as the plain synchronous engine — what changes is the
cost (activations, scheduler time).  This file property-tests exactly
that contract:

* :class:`~repro.sched.schedulers.SynchronousScheduler` reproduces the
  plain :class:`~repro.sim.engine.CircuitEngine` bit for bit — same
  parents, same round counts, and ``activations == n * rounds``;
* every scheduler is deterministic per seed (identical activation
  checksums, counts, time, and forests across reruns);
* ``solve_spf`` stays forest-checker-valid under every scheduler, with
  and without a :class:`~repro.dynamics.faults.FaultInjector` armed;
* the experiment spec layer's scheduler axis expands and round-trips
  without disturbing historical trial hashes.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sched import (
    ActivationEngine,
    AdversarialDelayScheduler,
    RandomSequentialScheduler,
    SCHEDULER_NAMES,
    SynchronousScheduler,
    WeightedScheduler,
    make_scheduler,
)
from repro.sim.engine import CircuitEngine
from repro.spf.api import solve_spf
from repro.verify.forest_checker import check_forest
from repro.workloads import sample_sources_destinations, spread_nodes
from repro.workloads.random_structures import random_hole_free

ALL_SPECS = ("sync", "random:7", "adversarial:5", "weighted:2")


@st.composite
def spf_cases(draw):
    """A random hole-free instance with spread sources."""
    n = draw(st.integers(min_value=12, max_value=45))
    seed = draw(st.integers(min_value=0, max_value=500))
    k = draw(st.integers(min_value=1, max_value=3))
    structure = random_hole_free(n, seed=seed, compactness=0.6)
    sources = spread_nodes(structure, min(k, len(structure)))
    rest = [u for u in sorted(structure.nodes) if u not in set(sources)]
    destinations = rest[:3] if rest else list(sources)
    return structure, sources, destinations


def _solve(structure, sources, destinations, scheduler):
    engine = ActivationEngine(structure, scheduler=scheduler)
    solution = solve_spf(structure, sources, destinations, engine=engine)
    return solution, engine


# ----------------------------------------------------------------------
# sync scheduler == plain synchronous engine
# ----------------------------------------------------------------------


class TestSynchronousEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(case=spf_cases())
    def test_sync_matches_plain_engine_bit_for_bit(self, case):
        structure, sources, destinations = case
        plain = solve_spf(structure, sources, destinations)
        solution, engine = _solve(structure, sources, destinations, "sync")
        assert solution.forest.parent == plain.forest.parent
        assert solution.forest.members == plain.forest.members
        assert solution.rounds == plain.rounds
        # Counter-level invariant: one activation per amoebot per round.
        n = len(structure)
        assert solution.activations == n * solution.rounds
        assert plain.activations == n * plain.rounds

    def test_pinned_round_counts_unchanged(self):
        # The same pinned instances the seed suite uses: the event
        # engine must not perturb round totals under the sync scheduler.
        from repro.workloads.specs import build_structure

        for shape, k, l in (("hexagon:3", 2, 3), ("lollipop:3:8", 2, 3)):
            structure = build_structure(shape)
            sources, destinations = sample_sources_destinations(
                structure, k, l, seed=0
            )
            plain = solve_spf(structure, sources, destinations)
            synced, _ = _solve(structure, sources, destinations, "sync")
            assert synced.rounds == plain.rounds
            assert synced.forest.parent == plain.forest.parent

    def test_sync_epoch_costs_one_time_unit(self):
        structure = random_hole_free(30, seed=3)
        nodes = sorted(structure.nodes)
        _, engine = _solve(structure, [nodes[0]], nodes[-3:], "sync")
        # Lock-step: zero wasted wake-ups, one time unit per epoch.
        assert engine.stats.wasted == 0
        assert engine.stats.time == pytest.approx(engine.stats.epochs)


# ----------------------------------------------------------------------
# determinism and validity under every scheduler
# ----------------------------------------------------------------------


class TestSchedulerDeterminism:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_same_seed_same_schedule_and_forest(self, spec):
        structure = random_hole_free(40, seed=11)
        nodes = sorted(structure.nodes)
        sources, destinations = [nodes[0], nodes[-1]], nodes[5:8]

        def run():
            solution, engine = _solve(structure, sources, destinations, spec)
            st_ = engine.stats
            return (
                st_.checksum,
                st_.activations,
                st_.time,
                solution.rounds,
                tuple(sorted(solution.forest.parent.items())),
            )

        assert run() == run()

    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_forest_valid_under_every_scheduler(self, spec):
        structure = random_hole_free(50, seed=17)
        sources = spread_nodes(structure, 2)
        rest = [u for u in sorted(structure.nodes) if u not in set(sources)]
        destinations = rest[:4]
        solution, engine = _solve(structure, sources, destinations, spec)
        assert not check_forest(
            structure, set(sources), set(destinations), solution.forest.parent
        )
        # The counter's model-level count never exceeds the physical
        # simulation count (ParallelGroup branches are rolled back).
        assert solution.activations == engine.rounds.activations
        assert engine.stats.activations >= solution.activations

    @settings(max_examples=10, deadline=None)
    @given(case=spf_cases(), spec=st.sampled_from(ALL_SPECS))
    def test_rounds_are_scheduler_invariant(self, case, spec):
        structure, sources, destinations = case
        plain = solve_spf(structure, sources, destinations)
        solution, _ = _solve(structure, sources, destinations, spec)
        assert solution.rounds == plain.rounds
        assert solution.forest.parent == plain.forest.parent


# ----------------------------------------------------------------------
# scheduler-specific behavior
# ----------------------------------------------------------------------


class TestAdversarialScheduler:
    def test_victims_picked_and_fairness_bounded(self):
        structure = random_hole_free(40, seed=23)
        nodes = sorted(structure.nodes)
        solution, engine = _solve(structure, [nodes[0]], nodes[-3:], "adversarial:6")
        sched = engine.scheduler
        assert sched.victims
        assert sched.delta == 6
        # Fairness: each epoch waits for the slowest victim, so the
        # adversary stretches time to at most delta per epoch.
        assert engine.stats.epochs <= engine.stats.time <= 6 * engine.stats.epochs
        assert not check_forest(
            structure, {nodes[0]}, set(nodes[-3:]), solution.forest.parent
        )

    def test_pinned_victims_respected(self):
        structure = random_hole_free(20, seed=2)
        grid = structure.grid_index()
        victim = next(iter(grid.live_ids()))
        sched = AdversarialDelayScheduler(delta=3, victims=[victim])
        sched.start(list(grid.live_ids()))
        assert sched.victims == frozenset([victim])
        assert sched.next_delay(victim) == 3.0
        # observe_layout must not retarget pinned victims.
        nodes = sorted(structure.nodes)
        engine = ActivationEngine(structure, scheduler=sched)
        solve_spf(structure, [nodes[0]], nodes[-2:], engine=engine)
        assert sched.victims == frozenset([victim])


class TestWeightedScheduler:
    def test_rates_skew_activation_counts(self):
        structure = random_hole_free(40, seed=31)
        nodes = sorted(structure.nodes)
        _, engine = _solve(structure, [nodes[0]], nodes[-3:], "weighted:4")
        per_node = engine.stats.per_node
        assert len(per_node) == len(structure)
        # Heterogeneous rates: fast amoebots wake up strictly more often.
        assert max(per_node.values()) > min(per_node.values())

    def test_explicit_rates_validated(self):
        with pytest.raises(ValueError, match="rate"):
            WeightedScheduler(rate_span=(0.0, 1.0))
        sched = WeightedScheduler(seed=1, rates={0: -1.0})
        with pytest.raises(ValueError, match="rate"):
            sched.start([0, 1])


# ----------------------------------------------------------------------
# fault composition: crashes and detect-and-retransmit
# ----------------------------------------------------------------------


class TestSchedulerFaults:
    @pytest.mark.parametrize("spec", ALL_SPECS)
    def test_forest_valid_with_drops_armed(self, spec):
        from repro.dynamics import FaultInjector

        structure = random_hole_free(45, seed=41)
        sources = spread_nodes(structure, 2)
        rest = [u for u in sorted(structure.nodes) if u not in set(sources)]
        destinations = rest[:3]
        engine = ActivationEngine(structure, scheduler=spec)
        engine.fault_injector = FaultInjector(drop_prob=0.25, seed=13)
        solution = solve_spf(structure, sources, destinations, engine=engine)
        assert not check_forest(
            structure, set(sources), set(destinations), solution.forest.parent
        )
        # Drops happened and were healed by retransmission, which is
        # visible as extra rounds relative to the fault-free run.
        assert engine.fault_injector.stats.dropped > 0
        assert engine.stats.retransmissions > 0
        clean = solve_spf(structure, sources, destinations)
        assert solution.rounds > clean.rounds
        assert solution.forest.parent == clean.forest.parent

    def test_crashed_amoebots_do_not_block_epochs(self):
        from repro.dynamics import FaultInjector

        structure = random_hole_free(30, seed=5)
        nodes = sorted(structure.nodes)
        engine = ActivationEngine(structure, scheduler="random:3")
        engine.fault_injector = FaultInjector(crashed=[nodes[-1]])
        layout = engine.global_layout()
        heard = engine.run_round(layout, [(nodes[0], "global")])
        # The epoch completed (no deadlock waiting on the crashed node)
        # and the healthy beep propagated.
        assert heard[(nodes[0], "global")]
        crashed_id = structure.grid_index().id_of(nodes[-1])
        assert crashed_id not in engine.stats.per_node

    def test_retransmission_cap_raises(self):
        from repro.dynamics import FaultInjector

        structure = random_hole_free(12, seed=9)
        nodes = sorted(structure.nodes)
        engine = ActivationEngine(
            structure, scheduler="sync", max_retransmissions=3
        )
        engine.fault_injector = FaultInjector(drop_prob=1.0, seed=0)
        layout = engine.global_layout()
        compiled = layout.compiled()
        beep = compiled.index.index_of((nodes[0], "global"))
        listen = [compiled.index.index_of((u, "global")) for u in nodes]
        with pytest.raises(RuntimeError, match="retransmissions"):
            engine.run_round_indexed(layout, [beep], listen)


# ----------------------------------------------------------------------
# construction surface
# ----------------------------------------------------------------------


class TestMakeScheduler:
    def test_names_and_defaults(self):
        assert SCHEDULER_NAMES == ("sync", "random", "adversarial", "weighted")
        assert isinstance(make_scheduler("sync"), SynchronousScheduler)
        assert isinstance(make_scheduler("random"), RandomSequentialScheduler)
        assert make_scheduler("random:9").seed == 9
        adv = make_scheduler("adversarial:7:0.25")
        assert (adv.delta, adv.fraction) == (7, 0.25)
        assert make_scheduler("weighted:3").seed == 3

    def test_instance_passthrough(self):
        sched = RandomSequentialScheduler(seed=5)
        assert make_scheduler(sched) is sched
        engine = ActivationEngine(random_hole_free(8, seed=1), scheduler=sched)
        assert engine.scheduler is sched

    @pytest.mark.parametrize(
        "bad",
        ["bogus", "adversarial:0", "adversarial:4:1.5", "random:-1",
         "weighted:-2", "sync:1", "random:x"],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            make_scheduler(bad)

    def test_solve_spf_rejects_engine_plus_scheduler(self):
        structure = random_hole_free(10, seed=0)
        nodes = sorted(structure.nodes)
        with pytest.raises(ValueError, match="not both"):
            solve_spf(
                structure,
                [nodes[0]],
                [nodes[-1]],
                engine=CircuitEngine(structure),
                scheduler="sync",
            )

    def test_solve_spf_scheduler_shortcut(self):
        structure = random_hole_free(20, seed=4)
        nodes = sorted(structure.nodes)
        solution = solve_spf(
            structure, [nodes[0]], nodes[-2:], scheduler="random:1"
        )
        plain = solve_spf(structure, [nodes[0]], nodes[-2:])
        assert solution.rounds == plain.rounds
        assert solution.activations > plain.activations


# ----------------------------------------------------------------------
# experiment spec integration
# ----------------------------------------------------------------------


class TestSpecIntegration:
    def test_trial_hash_stable_without_scheduler(self):
        from repro.experiments.spec import TrialSpec

        trial = TrialSpec(scenario="s", shape="hexagon:3", k=1, l=1, seed=0)
        assert "scheduler" not in trial.config()
        tagged = TrialSpec(
            scenario="s", shape="hexagon:3", k=1, l=1, seed=0, scheduler="sync"
        )
        assert tagged.config()["scheduler"] == "sync"
        assert tagged.key() != trial.key()

    def test_scenario_scheduler_axis_expands(self):
        from repro.experiments.spec import ScenarioSpec

        scenario = ScenarioSpec(
            name="s",
            shape="hexagon:3",
            ks=(1,),
            ls=(1,),
            seeds=(0,),
            schedulers=("sync", "random:1"),
        )
        trials = list(scenario.trials())
        assert sorted(t.scheduler for t in trials) == ["random:1", "sync"]
        roundtrip = ScenarioSpec.from_dict(scenario.to_dict())
        assert roundtrip.schedulers == ("sync", "random:1")
        # The default (empty) axis stays out of the serialized form.
        plain = ScenarioSpec(name="s", shape="hexagon:3", ks=(1,), ls=(1,))
        assert "schedulers" not in plain.to_dict()

    def test_bad_scheduler_axis_rejected(self):
        from repro.experiments.spec import ScenarioSpec, SpecError, TrialSpec

        with pytest.raises(SpecError, match="scheduler"):
            TrialSpec(
                scenario="s", shape="hexagon:3", k=1, l=1, seed=0,
                scheduler="bogus:1",
            )
        with pytest.raises(SpecError, match="scheduler"):
            ScenarioSpec(
                name="s", shape="hexagon:3", ks=(1,), ls=(1,),
                schedulers=("sync", "nope"),
            )

    def test_trial_records_activations(self):
        from repro.experiments.runner import execute_trial
        from repro.experiments.spec import TrialSpec

        trial = TrialSpec(
            scenario="s", shape="random:40:3", k=1, l=2, seed=0,
            scheduler="random:1",
        )
        result = execute_trial(trial)
        assert result.scheduler == "random:1"
        assert result.activations > result.rounds * 40 // 2
        assert result.sched_time is not None
        data = result.to_dict()
        assert data["scheduler"] == "random:1"
        # Sync-engine trials still report counter-level activations.
        plain = execute_trial(
            TrialSpec(scenario="s", shape="random:40:3", k=1, l=2, seed=0)
        )
        assert plain.activations == plain.rounds * 40
        assert plain.sched_time is None


class TestCli:
    def test_solve_with_scheduler(self, capsys):
        from repro.cli import main

        assert main([
            "solve", "--shape", "random:30:2", "-k", "1", "-l", "2",
            "--scheduler", "adversarial:3",
        ]) == 0
        out = capsys.readouterr().out
        assert "scheduler adversarial:" in out
        assert "activations" in out

    def test_bad_scheduler_exits(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main([
                "solve", "--shape", "hexagon:2", "--scheduler", "bogus",
            ])
