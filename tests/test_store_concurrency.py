"""Concurrent-writer safety of the JSONL :class:`ResultStore`.

The daemon turns one store file into a shared database: worker threads
append while a restarted daemon (or a ``repro campaign resume``)
compacts.  The contract under test: appends from separate *processes*
never tear each other's lines, and compaction never drops a record
appended by somebody else mid-compaction.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

from repro.experiments.store import ResultStore

SRC = str(Path(__file__).resolve().parent.parent / "src")

_WRITER = """
import sys
sys.path.insert(0, {src!r})
from repro.experiments.store import ResultStore

store = ResultStore({path!r})
for i in range({count}):
    store.add({{"key": "w{writer}-" + str(i), "writer": {writer}, "i": i}})
"""

_COMPACTOR = """
import sys, time
sys.path.insert(0, {src!r})
from repro.experiments.store import ResultStore

# Keep compacting while the writers race us; every pass must merge
# whatever they appended since our last read before rewriting.
for _ in range({passes}):
    ResultStore({path!r}).compact()
    time.sleep(0.01)
"""


def _spawn(code: str) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-c", code],
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


class TestConcurrentWriters:
    def test_two_process_appends_with_racing_compactor(self, tmp_path):
        path = str(tmp_path / "contested.jsonl")
        count = 150
        # Seed some duplicate lines so the compactor has real work.
        seed = ResultStore(path)
        for i in range(10):
            seed.add({"key": "dup", "i": i})

        writers = [
            _spawn(_WRITER.format(src=SRC, path=path, count=count, writer=w))
            for w in (1, 2)
        ]
        compactor = _spawn(_COMPACTOR.format(src=SRC, path=path, passes=20))
        for proc in writers + [compactor]:
            _out, err = proc.communicate(timeout=120)
            assert proc.returncode == 0, err.decode()

        final = ResultStore(path)
        expected = {f"w{w}-{i}" for w in (1, 2) for i in range(count)} | {"dup"}
        assert set(final.keys()) == expected
        # No torn lines: every surviving line parses and the loader saw
        # exactly as many parseable lines as live records after the
        # final compaction below.
        for line in Path(path).read_text().splitlines():
            json.loads(line)
        final.compact()
        assert len(ResultStore(path)) == len(expected)

    def test_appends_are_single_writes(self, tmp_path):
        # A record far larger than a pipe buffer still lands as one
        # line (O_APPEND + single os.write).
        path = tmp_path / "big.jsonl"
        store = ResultStore(path)
        store.add({"key": "big", "payload": "x" * 300_000})
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["key"] == "big"

    def test_compact_merges_foreign_records(self, tmp_path):
        path = tmp_path / "merge.jsonl"
        ours = ResultStore(path)
        ours.add({"key": "a", "v": 1})
        ours.add({"key": "a", "v": 2})  # superseded line to reclaim
        # Another process appends behind our back.
        other = ResultStore(path)
        other.add({"key": "b", "v": 9})
        reclaimed = ours.compact()
        assert reclaimed == 1
        assert ours.get("b") == {"key": "b", "v": 9}
        reloaded = ResultStore(path)
        assert set(reloaded.keys()) == {"a", "b"}
        assert reloaded.get("a")["v"] == 2

    def test_lock_sidecar_is_created(self, tmp_path):
        path = tmp_path / "locked.jsonl"
        ResultStore(path).add({"key": "k"})
        assert (tmp_path / "locked.jsonl.lock").exists()
