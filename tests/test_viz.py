"""Tests for the ASCII and SVG renderers."""

from repro.grid.coords import Node
from repro.viz.ascii_art import render_ascii, render_forest_ascii
from repro.viz.svg import SvgCanvas, render_structure_svg
from repro.workloads import hexagon, line_structure, parallelogram


class TestAscii:
    def test_line_rendering(self):
        out = render_ascii(line_structure(4))
        assert out.strip() == "o o o o"

    def test_rows_shift(self):
        out = render_ascii(parallelogram(3, 2))
        lines = out.split("\n")
        assert len(lines) == 2
        # The upper row is indented by one column relative to the lower.
        assert lines[0].index("o") == lines[1].index("o") + 1

    def test_glyph_override(self):
        out = render_ascii(line_structure(3), {Node(1, 0): "X"})
        assert "X" in out

    def test_forest_glyphs(self):
        s = line_structure(5)
        out = render_forest_ascii(
            s,
            sources=[Node(0, 0)],
            destinations=[Node(4, 0)],
            members=[Node(i, 0) for i in range(5)],
        )
        assert "S" in out and "D" in out and "*" in out

    def test_hexagon_symmetry(self):
        out = render_ascii(hexagon(1))
        lines = out.split("\n")
        assert len(lines) == 3
        assert lines[0].count("o") == 2
        assert lines[1].count("o") == 3
        assert lines[2].count("o") == 2


class TestSvg:
    def test_basic_document(self):
        svg = render_structure_svg(hexagon(1))
        assert svg.startswith("<svg")
        assert svg.count("<circle") == 7
        assert "</svg>" in svg

    def test_node_colors(self):
        svg = render_structure_svg(
            line_structure(2), node_colors={Node(0, 0): "#ff0000"}
        )
        assert "#ff0000" in svg

    def test_parent_arrows(self):
        svg = render_structure_svg(
            line_structure(3),
            parent={Node(1, 0): Node(0, 0), Node(2, 0): Node(1, 0)},
        )
        assert svg.count("marker-end") == 2

    def test_highlight_edges(self):
        svg = render_structure_svg(
            line_structure(3), highlight_edges=[(Node(0, 0), Node(1, 0))]
        )
        assert "#e41a1c" in svg

    def test_empty_canvas(self):
        assert "<svg" in SvgCanvas().render()

    def test_canvas_node_labels(self):
        canvas = SvgCanvas()
        canvas.node(Node(0, 0), label="7")
        assert "<text" in canvas.render()
