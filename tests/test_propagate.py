"""Tests for the propagation algorithm (§5.3, Lemma 50)."""


import pytest

from repro.grid.coords import Node
from repro.grid.directions import Axis
from repro.grid.structure import AmoebotStructure
from repro.sim.engine import CircuitEngine
from repro.spf.line import line_forest
from repro.spf.propagate import propagate_forest
from repro.spf.spt import shortest_path_tree
from repro.spf.types import Forest
from repro.verify import assert_valid_forest
from repro.workloads import hexagon, parallelogram, random_hole_free, staircase


def forest_on(structure, nodes, sources, engine):
    """An S-forest covering exactly ``nodes`` (a sub-structure)."""
    sub = AmoebotStructure(nodes, require_hole_free=False)
    if len(sources) == 1:
        spt = shortest_path_tree(engine, sub, sources[0], nodes)
        return Forest({sources[0]}, spt.parent, set(nodes))
    raise NotImplementedError


def split_at_row(structure, y):
    """Portal run at row y plus the half-structures it separates."""
    row = sorted(u for u in structure.nodes if u.y == y)
    below = {u for u in structure.nodes if u.y <= y}
    return row, below


class TestPropagationFromInteriorPortal:
    @pytest.mark.parametrize("y", [-2, 0, 2])
    def test_hexagon_split(self, y):
        s = hexagon(4)
        row, below = split_at_row(s, y)
        engine = CircuitEngine(s)
        source = row[0]
        base = forest_on(s, below, [source], engine)
        full = propagate_forest(engine, s, row, base)
        assert full.members == set(s.nodes)
        assert_valid_forest(s, [source], sorted(s.nodes), full.parent)

    def test_source_not_on_portal(self):
        s = hexagon(3)
        row, below = split_at_row(s, 0)
        corner = min(below)
        engine = CircuitEngine(s)
        base = forest_on(s, below, [corner], engine)
        full = propagate_forest(engine, s, row, base)
        assert_valid_forest(s, [corner], sorted(s.nodes), full.parent)

    def test_multi_source_forest_propagates(self):
        s = parallelogram(8, 5)
        row = sorted(u for u in s.nodes if u.y == 0)
        engine = CircuitEngine(s)
        base = line_forest(engine, row, [row[0], row[7]])
        full = propagate_forest(engine, s, row, base)
        assert_valid_forest(s, [row[0], row[7]], sorted(s.nodes), full.parent)


class TestBoundaryPortal:
    def test_propagate_from_bottom_row(self):
        # A empty: the forest initially covers only the portal itself.
        s = parallelogram(6, 4)
        row = sorted(u for u in s.nodes if u.y == 0)
        engine = CircuitEngine(s)
        base = line_forest(engine, row, [row[2]])
        full = propagate_forest(engine, s, row, base)
        assert_valid_forest(s, [row[2]], sorted(s.nodes), full.parent)

    def test_nothing_to_propagate(self):
        s = parallelogram(4, 1)
        row = sorted(s.nodes)
        engine = CircuitEngine(s)
        base = line_forest(engine, row, [row[0]])
        result = propagate_forest(engine, s, row, base)
        assert result.members == set(s.nodes)


class TestShadowRegions:
    def test_staircase_has_shadows_and_still_works(self):
        # Staircases guarantee B'' components (steps shadow each other).
        s = staircase(5, 3)
        row = sorted(u for u in s.nodes if u.y == 0)
        engine = CircuitEngine(s)
        base = line_forest(engine, row, [row[0]])
        full = propagate_forest(engine, s, row, base)
        assert_valid_forest(s, [row[0]], sorted(s.nodes), full.parent)

    def test_random_structures(self):
        for seed in range(6):
            s = random_hole_free(90, seed=seed)
            from repro.portals.portals import PortalSystem

            system = PortalSystem(s, Axis.X)
            portal = max(system.portals, key=len)
            members = _a_union_p(s, portal)
            if members == set(s.nodes):
                continue  # this portal has only one side; nothing to do
            engine = CircuitEngine(s)
            base = forest_on(s, members, [portal.nodes[0]], engine)
            full = propagate_forest(engine, s, list(portal.nodes), base)
            assert full.members == set(s.nodes)
            assert_valid_forest(s, [portal.nodes[0]], sorted(s.nodes), full.parent)

    def test_dendrite_structures(self):
        for seed in (3, 4):
            s = random_hole_free(70, seed=seed, compactness=0.05)
            from repro.portals.portals import PortalSystem

            system = PortalSystem(s, Axis.X)
            portal = max(system.portals, key=len)
            members = _a_union_p(s, portal)
            if members == set(s.nodes):
                continue
            engine = CircuitEngine(s)
            base = forest_on(s, members, [portal.nodes[0]], engine)
            full = propagate_forest(engine, s, list(portal.nodes), base)
            assert_valid_forest(s, [portal.nodes[0]], sorted(s.nodes), full.parent)


class TestValidation:
    def test_portal_not_covered_rejected(self):
        s = parallelogram(4, 2)
        row = sorted(u for u in s.nodes if u.y == 0)
        engine = CircuitEngine(s)
        base = line_forest(engine, row[:2], [row[0]])
        with pytest.raises(ValueError):
            propagate_forest(engine, s, row, base)

    def test_portal_off_line_rejected(self):
        s = parallelogram(4, 2)
        engine = CircuitEngine(s)
        base = line_forest(engine, sorted(u for u in s.nodes if u.y == 0), [Node(0, 0)])
        with pytest.raises(ValueError):
            propagate_forest(engine, s, [Node(0, 0), Node(0, 1)], base)

    def test_empty_portal_rejected(self):
        s = parallelogram(4, 2)
        engine = CircuitEngine(s)
        base = line_forest(engine, sorted(u for u in s.nodes if u.y == 0), [Node(0, 0)])
        with pytest.raises(ValueError):
            propagate_forest(engine, s, [], base)


def _component_containing(structure, nodes, start):
    component = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in structure.neighbors(u):
            if v in nodes and v not in component:
                component.add(v)
                stack.append(v)
    return component


def _a_union_p(structure, portal):
    """A valid "A ∪ P" for propagation: whole components of X \\ P.

    B must be a union of connected components of the structure minus the
    portal (Lemma 13); we take B = the components that lie north of the
    portal at their point of contact, A = everything else.
    """
    portal_set = set(portal.nodes)
    rest = set(structure.nodes) - portal_set
    members = set(portal_set)
    while rest:
        start = next(iter(rest))
        component = _component_containing(structure, rest, start)
        rest -= component
        touches_north = any(
            v in component
            for p in portal_set
            for v in structure.neighbors(p)
            if v.y > p.y
        )
        if not touches_north:
            members |= component
    return members
