"""Property test: compiled-array rounds match a dict-based reference.

The compiled backend (:mod:`repro.sim.compiled`) must be observationally
identical to the specification it replaced: beeps propagate exactly
within the connected components of the partition-set graph induced by
the wired external links.  This file keeps an *independent* reference
implementation — plain dict/set BFS over (node, label) tuples, no shared
code with the array backend — and checks, over random hole-free
structures and random pin assignments:

* the full ``run_round`` result dict,
* ``listen`` subsets (including the empty subset),
* the integer fast path ``run_round_indexed`` bit lists,
* error paths (beeping or listening on undeclared sets), and
* incremental recompilation after ``derive``/``reassign``/
  ``exchange_pins`` re-wiring versus a from-scratch build of the same
  wiring.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.backend import numpy_or_none
from repro.grid.coords import Node
from repro.grid.directions import opposite
from repro.sim.circuits import CircuitLayout
from repro.sim.engine import CircuitEngine
from repro.sim.errors import PinConfigurationError
from repro.workloads.random_structures import random_hole_free

CHANNELS = 3
LABELS = ("a", "b", "c")

PinSpec = Tuple[Node, object, int]  # (node, direction, channel)
SetId = Tuple[Node, str]


# ----------------------------------------------------------------------
# reference implementation (dicts and BFS only)
# ----------------------------------------------------------------------


def reference_components(
    declared: Set[SetId], pins_of: Dict[SetId, List[PinSpec]]
) -> Dict[SetId, int]:
    """Connected components of the partition-set graph, by plain BFS."""
    owner: Dict[PinSpec, SetId] = {}
    for set_id, pins in pins_of.items():
        for pin in pins:
            owner[pin] = set_id
    neighbors: Dict[SetId, List[SetId]] = {s: [] for s in declared}
    for (node, direction, channel), set_id in owner.items():
        mate = (node.neighbor(direction), opposite(direction), channel)
        mate_owner = owner.get(mate)
        if mate_owner is not None:
            neighbors[set_id].append(mate_owner)
    component: Dict[SetId, int] = {}
    label = 0
    for start in declared:
        if start in component:
            continue
        queue = [start]
        component[start] = label
        while queue:
            current = queue.pop()
            for nxt in neighbors[current]:
                if nxt not in component:
                    component[nxt] = label
                    queue.append(nxt)
        label += 1
    return component


def reference_round(
    declared: Set[SetId],
    pins_of: Dict[SetId, List[PinSpec]],
    beeps: List[SetId],
) -> Dict[SetId, bool]:
    """The expected full round result: hears iff sharing a circuit."""
    component = reference_components(declared, pins_of)
    beeping = {component[s] for s in beeps}
    return {s: component[s] in beeping for s in declared}


# ----------------------------------------------------------------------
# random wirings
# ----------------------------------------------------------------------


def build_assignment(draw, structure) -> Dict[SetId, List[PinSpec]]:
    """Draw a random, valid pin assignment over ``structure``."""
    pins_of: Dict[SetId, List[PinSpec]] = {}
    for node in sorted(structure.nodes):
        # Randomly declare up to all three labels, some possibly empty.
        declared = draw(
            st.lists(st.sampled_from(LABELS), unique=True, max_size=len(LABELS))
        )
        for label in declared:
            pins_of[(node, label)] = []
        if not declared:
            continue
        for direction in structure.occupied_directions(node):
            for channel in range(CHANNELS):
                choice = draw(
                    st.one_of(st.none(), st.sampled_from(declared))
                )
                if choice is not None:
                    pins_of[(node, choice)].append((node, direction, channel))
    return pins_of


def apply_assignment(
    engine: CircuitEngine, pins_of: Dict[SetId, List[PinSpec]]
) -> CircuitLayout:
    layout = engine.new_layout()
    for (node, label), pins in pins_of.items():
        layout.assign(node, label, [(d, c) for (_n, d, c) in pins])
    return layout


@st.composite
def round_cases(draw):
    """A structure, a wiring, and the beep/listen choices of one round."""
    n = draw(st.integers(min_value=2, max_value=10))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    compactness = draw(st.sampled_from([0.1, 0.5, 0.9]))
    structure = random_hole_free(n, seed=seed, compactness=compactness)
    pins_of = build_assignment(draw, structure)
    declared = sorted(pins_of)
    beeps = draw(st.lists(st.sampled_from(declared), max_size=6)) if declared else []
    listen = (
        draw(st.lists(st.sampled_from(declared), max_size=8)) if declared else []
    )
    return structure, pins_of, beeps, listen


# ----------------------------------------------------------------------
# equivalence properties
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(case=round_cases())
def test_integer_lowering_matches_tuple_reference(case):
    # The layout lowers through compile_wiring_ids (integer pins, grid
    # index mirror-edge mates); compile_wiring is the retained
    # tuple-keyed reference lowering.  Both must produce the same
    # circuits, up to component renumbering.
    from repro.sim.compiled import compile_wiring

    structure, pins_of, _beeps, _listen = case
    engine = CircuitEngine(structure, channels=CHANNELS)
    layout = apply_assignment(engine, pins_of)
    compiled = layout.compiled()

    reference = compile_wiring(layout.partition_sets(), layout.pin_assignments())
    grouped: Dict[int, Set] = {}
    for set_id in layout.partition_sets():
        grouped.setdefault(
            reference.comp[reference.index.index_of(set_id)], set()
        ).add(set_id)
    expected = {frozenset(members) for members in grouped.values()}

    actual: Dict[int, Set] = {}
    for i, set_id in enumerate(compiled.index.ids):
        actual.setdefault(compiled.comp[i], set()).add(set_id)
    assert {frozenset(members) for members in actual.values()} == expected
    assert compiled.n_components == reference.n_components


@settings(max_examples=60, deadline=None)
@given(case=round_cases())
def test_round_matches_reference(case):
    structure, pins_of, beeps, listen = case
    engine = CircuitEngine(structure, channels=CHANNELS)
    layout = apply_assignment(engine, pins_of)
    expected = reference_round(set(pins_of), pins_of, beeps)

    # Full materialization.
    assert engine.run_round(layout, beeps) == expected

    # Listen subsets (duplicates allowed; empty subset stays empty).
    subset = engine.run_round(layout, beeps, listen=listen)
    assert subset == {s: expected[s] for s in listen}
    assert engine.run_round(layout, beeps, listen=()) == {}

    # Integer fast path: same bits, in listen order and in index order.
    # (list() materializes the bits: the numpy backend returns ndarrays.)
    index = layout.compiled().index
    beep_idx = index.indices(beeps, "beep on")
    bits = engine.run_round_indexed(layout, beep_idx, index.indices(listen))
    assert list(bits) == [expected[s] for s in listen]
    all_bits = engine.run_round_indexed(layout, beep_idx)
    assert list(all_bits) == [expected[s] for s in index.ids]

    # The layout's component view agrees with the reference grouping.
    reference = reference_components(set(pins_of), pins_of)
    component_map = layout.component_map()
    assert len(set(component_map.values())) == len(set(reference.values()))
    for a in pins_of:
        for b in pins_of:
            assert (component_map[a] == component_map[b]) == (
                reference[a] == reference[b]
            )


@settings(max_examples=30, deadline=None)
@given(case=round_cases(), data=st.data())
def test_derived_rewiring_matches_fresh_build(case, data):
    structure, pins_of, beeps, listen = case
    engine = CircuitEngine(structure, channels=CHANNELS)
    base = apply_assignment(engine, pins_of)
    base.freeze()

    # Randomly re-wire a few sets on a derived layout...
    derived = base.derive()
    rewired = {k: list(v) for k, v in pins_of.items()}
    declared = sorted(pins_of)
    if declared:
        for set_id in data.draw(
            st.lists(st.sampled_from(declared), unique=True, max_size=3)
        ):
            node, label = set_id
            keep = [
                p
                for p in rewired[set_id]
                if data.draw(st.booleans())
            ]
            rewired[set_id] = keep
            derived.reassign(node, label, [(d, c) for (_n, d, c) in keep])
    derived.freeze()

    # ...and the incremental recompilation must match both the reference
    # and a from-scratch build of the identical wiring.
    expected = reference_round(set(rewired), rewired, beeps)
    assert engine.run_round(derived, beeps) == expected

    fresh = apply_assignment(engine, rewired)
    assert engine.run_round(fresh, beeps) == expected

    def grouping(layout):
        return {frozenset(circuit) for circuit in layout.circuits()}

    assert grouping(derived) == grouping(fresh)


def test_error_paths_match_reference_contract():
    structure = random_hole_free(5, seed=3)
    engine = CircuitEngine(structure, channels=CHANNELS)
    layout = engine.global_layout(label="g")
    probe = (next(iter(structure)), "g")
    ghost = (next(iter(structure)), "ghost")

    with pytest.raises(PinConfigurationError, match="cannot beep on undeclared"):
        engine.run_round(layout, [ghost])
    with pytest.raises(PinConfigurationError, match="cannot listen on undeclared"):
        engine.run_round(layout, [probe], listen=[ghost])
    index = layout.compiled().index
    with pytest.raises(PinConfigurationError, match="cannot beep on undeclared"):
        index.indices([ghost], "beep on")
    with pytest.raises(PinConfigurationError, match="cannot listen on undeclared"):
        index.index_of(ghost, "listen on")
    # The round counter must not tick when validation rejects the beeps.
    before = engine.rounds.total
    with pytest.raises(PinConfigurationError):
        engine.run_round(layout, [ghost])
    assert engine.rounds.total == before


# ----------------------------------------------------------------------
# python-vs-numpy backend equivalence (the numpy lowering must be
# *bit-identical* to the pure-Python reference, not merely isomorphic:
# same dense component labels, same bits, same forests)
# ----------------------------------------------------------------------

requires_numpy = pytest.mark.skipif(
    numpy_or_none() is None, reason="numpy not installed"
)


def _both_engines(structure) -> Tuple[CircuitEngine, CircuitEngine]:
    return (
        CircuitEngine(structure, channels=CHANNELS, backend="python"),
        CircuitEngine(structure, channels=CHANNELS, backend="numpy"),
    )


@requires_numpy
@settings(max_examples=50, deadline=None)
@given(case=round_cases())
def test_numpy_backend_round_is_bit_identical(case):
    structure, pins_of, beeps, listen = case
    py_engine, np_engine = _both_engines(structure)
    py_layout = apply_assignment(py_engine, pins_of)
    np_layout = apply_assignment(np_engine, pins_of)
    py_compiled = py_layout.compiled()
    np_compiled = np_layout.compiled()

    # Identical dense labels — not just the same partition — plus
    # identical adjacency rows, sizes, and CSR member slices.
    assert list(py_compiled.comp) == [int(c) for c in np_compiled.comp]
    assert py_compiled.n_components == np_compiled.n_components
    assert [sorted(row) for row in py_compiled.adj] == [
        sorted(int(v) for v in row) for row in np_compiled.adj
    ]
    assert list(py_compiled.component_sizes()) == [
        int(s) for s in np_compiled.component_sizes()
    ]
    py_starts, py_members = py_compiled.members_csr()
    np_starts, np_members = np_compiled.members_csr()
    assert list(py_starts) == [int(v) for v in np_starts]
    assert list(py_members) == [int(v) for v in np_members]

    # Same bits on the full result, the listen subset, and the empty
    # subset (the numpy path returns ndarrays; compare as lists).
    index = py_compiled.index
    beep_idx = index.indices(beeps, "beep on")
    listen_idx = index.indices(listen)
    assert list(py_compiled.execute(beep_idx, None)) == list(
        np_compiled.execute(beep_idx, None)
    )
    assert list(py_compiled.execute(beep_idx, listen_idx)) == list(
        np_compiled.execute(beep_idx, listen_idx)
    )
    assert list(np_compiled.execute(beep_idx, [])) == []


@requires_numpy
@settings(max_examples=25, deadline=None)
@given(case=round_cases(), data=st.data())
def test_numpy_backend_derived_chain_is_bit_identical(case, data):
    # Drive the same derive -> reassign/exchange_pins -> freeze chain
    # through both backends; the incremental recompilation must stay in
    # lock-step with the python reference at every step.
    structure, pins_of, beeps, _listen = case
    py_engine, np_engine = _both_engines(structure)
    py_layout = apply_assignment(py_engine, pins_of)
    np_layout = apply_assignment(np_engine, pins_of)
    py_layout.freeze()
    np_layout.freeze()

    declared = sorted(pins_of)
    for _step in range(data.draw(st.integers(min_value=1, max_value=3))):
        py_layout = py_layout.derive()
        np_layout = np_layout.derive()
        if declared:
            for set_id in data.draw(
                st.lists(st.sampled_from(declared), unique=True, max_size=2)
            ):
                node, label = set_id
                keep = [
                    (d, c)
                    for (_n, d, c) in pins_of[set_id]
                    if data.draw(st.booleans())
                ]
                py_layout.reassign(node, label, keep)
                np_layout.reassign(node, label, keep)
        py_layout.freeze()
        np_layout.freeze()
        py_compiled = py_layout.compiled()
        np_compiled = np_layout.compiled()
        assert list(py_compiled.comp) == [int(c) for c in np_compiled.comp]
        assert py_compiled.n_components == np_compiled.n_components
        beep_idx = py_compiled.index.indices(
            [s for s in beeps if s in py_layout.partition_sets()]
        )
        assert list(py_compiled.execute(beep_idx, None)) == list(
            np_compiled.execute(beep_idx, None)
        )


@requires_numpy
def test_numpy_backend_exchange_pins_matches_python():
    # PASC's crossing flip: swapping pin ownership between sibling sets
    # on a derived layout must recompile identically under both
    # backends.
    structure = random_hole_free(12, seed=5)
    results = {}
    for backend in ("python", "numpy"):
        engine = CircuitEngine(structure, channels=CHANNELS, backend=backend)
        layout = engine.new_layout()
        for node in sorted(structure.nodes):
            dirs = list(structure.occupied_directions(node))
            layout.assign(node, "a", [(d, 0) for d in dirs])
            layout.assign(node, "b", [(d, 1) for d in dirs])
        layout.freeze()
        derived = layout.derive()
        for node in sorted(structure.nodes)[:4]:
            dirs = list(structure.occupied_directions(node))
            derived.exchange_pins(
                node, "a", "b", [(d, c) for d in dirs for c in (0, 1)]
            )
        derived.freeze()
        compiled = derived.compiled()
        results[backend] = (
            [int(c) for c in compiled.comp],
            compiled.n_components,
            [int(s) for s in compiled.component_sizes()],
        )
    assert results["python"] == results["numpy"]


@requires_numpy
@settings(max_examples=20, deadline=None)
@given(case=round_cases(), seed=st.integers(min_value=0, max_value=1000))
def test_numpy_backend_faulty_rounds_are_bit_identical(case, seed):
    # The fault injector owns its randomness, so the same seed must
    # drop the same beeps — and detect the same missed hears — under
    # both backends.
    from repro.dynamics.faults import FaultInjector

    structure, pins_of, beeps, listen = case
    py_engine, np_engine = _both_engines(structure)
    results = {}
    for engine in (py_engine, np_engine):
        layout = apply_assignment(engine, pins_of)
        compiled = layout.compiled()
        injector = FaultInjector(drop_prob=0.5, seed=seed)
        index = compiled.index
        beep_idx = index.indices(beeps, "beep on")
        listen_idx = index.indices(listen)
        bits = [
            list(injector.execute(compiled, beep_idx, listen_idx))
            for _ in range(4)
        ]
        results[engine.backend] = (
            bits,
            injector.stats.dropped,
            injector.stats.faulty_rounds,
            injector.stats.missed_hears,
        )
    assert results["python"] == results["numpy"]
