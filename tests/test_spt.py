"""Tests for the Section 4 shortest path tree algorithm (Theorem 39)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.coords import Node
from repro.grid.oracle import bfs_distances
from repro.sim.engine import CircuitEngine
from repro.spf.spt import shortest_path_tree
from repro.verify import assert_valid_forest
from repro.workloads import (
    comb,
    hexagon,
    line_structure,
    lollipop,
    parallelogram,
    random_hole_free,
    staircase,
    triangle,
)


class TestCorrectness:
    @pytest.mark.parametrize(
        "structure",
        [
            hexagon(3),
            parallelogram(7, 4),
            triangle(7),
            comb(5, 4),
            staircase(5, 2),
            lollipop(2, 8),
        ],
        ids=["hexagon", "parallelogram", "triangle", "comb", "staircase", "lollipop"],
    )
    def test_valid_on_shapes(self, structure):
        rng = random.Random(0)
        nodes = sorted(structure.nodes)
        source = rng.choice(nodes)
        dests = rng.sample(nodes, min(6, len(nodes) // 3))
        engine = CircuitEngine(structure)
        result = shortest_path_tree(engine, structure, source, dests)
        assert_valid_forest(structure, [source], dests, result.parent)

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=12, deadline=None)
    def test_random_structures_property(self, seed):
        rng = random.Random(seed)
        structure = random_hole_free(rng.randint(20, 120), seed=seed)
        nodes = sorted(structure.nodes)
        source = rng.choice(nodes)
        dests = rng.sample(nodes, min(5, len(nodes)))
        engine = CircuitEngine(structure)
        result = shortest_path_tree(engine, structure, source, dests)
        assert_valid_forest(structure, [source], dests, result.parent)

    def test_all_destinations_sssp(self, medium_hexagon):
        nodes = sorted(medium_hexagon.nodes)
        engine = CircuitEngine(medium_hexagon)
        result = shortest_path_tree(engine, medium_hexagon, nodes[0], nodes)
        assert result.members == set(nodes)
        assert_valid_forest(medium_hexagon, [nodes[0]], nodes, result.parent)

    def test_members_are_paths_to_destinations(self, medium_hexagon):
        nodes = sorted(medium_hexagon.nodes)
        source, dest = nodes[0], nodes[-1]
        engine = CircuitEngine(medium_hexagon)
        result = shortest_path_tree(engine, medium_hexagon, source, [dest])
        path = result.path_from(dest)
        assert path[0] == dest and path[-1] == source
        assert len(path) - 1 == bfs_distances(medium_hexagon, [source])[dest]
        # Pruning: every member lies on the source-destination path here.
        assert result.members == set(path)

    def test_source_is_destination(self, small_hexagon):
        source = small_hexagon.westernmost()
        engine = CircuitEngine(small_hexagon)
        result = shortest_path_tree(engine, small_hexagon, source, [source])
        assert result.members == {source}
        assert result.parent == {}

    def test_raw_parents_superset(self, medium_hexagon):
        nodes = sorted(medium_hexagon.nodes)
        engine = CircuitEngine(medium_hexagon)
        result = shortest_path_tree(engine, medium_hexagon, nodes[0], [nodes[-1]])
        for u, p in result.parent.items():
            assert result.raw_parent[u] == p


class TestValidation:
    def test_empty_destinations_rejected(self, small_hexagon):
        engine = CircuitEngine(small_hexagon)
        with pytest.raises(ValueError):
            shortest_path_tree(engine, small_hexagon, small_hexagon.westernmost(), [])

    def test_foreign_source_rejected(self, small_hexagon):
        engine = CircuitEngine(small_hexagon)
        with pytest.raises(ValueError):
            shortest_path_tree(engine, small_hexagon, Node(50, 50), [Node(0, 0)])

    def test_foreign_destination_rejected(self, small_hexagon):
        engine = CircuitEngine(small_hexagon)
        with pytest.raises(ValueError):
            shortest_path_tree(
                engine, small_hexagon, small_hexagon.westernmost(), [Node(50, 50)]
            )


class TestRoundComplexity:
    def test_spsp_rounds_independent_of_n(self):
        # Theorem 39 with l = 1: O(1) rounds regardless of n.
        rounds = []
        for n in (40, 160, 640):
            s = random_hole_free(n, seed=1)
            nodes = sorted(s.nodes)
            engine = CircuitEngine(s)
            shortest_path_tree(engine, s, nodes[0], [nodes[-1]])
            rounds.append(engine.rounds.total)
        assert max(rounds) - min(rounds) <= 10

    def test_spt_rounds_grow_logarithmically_in_l(self):
        s = random_hole_free(400, seed=2)
        nodes = sorted(s.nodes)
        rng = random.Random(3)
        rounds = {}
        for l in (1, 4, 16, 64, 256):
            dests = rng.sample(nodes, l)
            engine = CircuitEngine(s)
            shortest_path_tree(engine, s, nodes[0], dests)
            rounds[l] = engine.rounds.total
        # Growth must be logarithmic: a bounded number of extra rounds
        # per doubling of l (the four root-and-prune passes each add at
        # most a PASC iteration, i.e. two rounds, per extra bit).
        doublings = 8  # 1 -> 256
        assert rounds[256] <= rounds[1] + 10 * doublings
        # And nowhere near linear: l grew by 255, rounds by a sliver.
        assert rounds[256] - rounds[1] < 256 / 2

    def test_line_spsp_beats_diameter(self):
        # The whole point of circuits: distance 199 in ~constant rounds.
        s = line_structure(200)
        engine = CircuitEngine(s)
        shortest_path_tree(engine, s, Node(0, 0), [Node(199, 0)])
        assert engine.rounds.total < 60
