"""Tests for the hole-tolerant fallback (extension beyond the paper).

The paper leaves structures with holes as future work; solve_spf
supports them via the wave fallback, still producing a valid forest.
"""

import pytest

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure
from repro.spf import solve_spf
from repro.verify import assert_valid_forest
from repro.workloads import hexagon


@pytest.fixture
def holey_structure():
    nodes = [n for n in hexagon(2).nodes if n != Node(0, 0)]
    return AmoebotStructure(nodes, require_hole_free=False)


class TestHoleFallback:
    def test_rejected_by_default(self, holey_structure):
        nodes = sorted(holey_structure.nodes)
        with pytest.raises(ValueError, match="holes"):
            solve_spf(holey_structure, [nodes[0]], [nodes[-1]])

    def test_fallback_produces_valid_forest(self, holey_structure):
        nodes = sorted(holey_structure.nodes)
        solution = solve_spf(
            holey_structure, [nodes[0]], [nodes[-1]], allow_holes=True
        )
        assert solution.algorithm == "wave-fallback"
        assert_valid_forest(
            holey_structure, [nodes[0]], [nodes[-1]], solution.forest.parent
        )

    def test_fallback_multi_source(self, holey_structure):
        nodes = sorted(holey_structure.nodes)
        sources = [nodes[0], nodes[-1]]
        dests = nodes[3:8]
        solution = solve_spf(holey_structure, sources, dests, allow_holes=True)
        assert_valid_forest(holey_structure, sources, dests, solution.forest.parent)

    def test_fallback_prunes_to_destinations(self, holey_structure):
        nodes = sorted(holey_structure.nodes)
        solution = solve_spf(
            holey_structure, [nodes[0]], [nodes[1]], allow_holes=True
        )
        # Only the path to the single destination should remain.
        assert len(solution.forest.members) <= 3

    def test_hole_free_structures_unaffected(self):
        s = hexagon(2)
        nodes = sorted(s.nodes)
        solution = solve_spf(s, [nodes[0]], [nodes[-1]], allow_holes=True)
        assert solution.algorithm == "spt"
