"""The telemetry layer: spans, metrics, exposition, rendering, logs.

Covers the observability contract end to end: span nesting and the
disabled no-op path, opt-in round tracing (structural check plus
bit-identity), histogram bucketing and quantiles, Prometheus rendering
against fixed fixtures (and the validator against broken bodies),
registry views over the legacy stat globals, the snapshotter, the JSON
log formatter, and the full-pipeline coverage criterion: a traced
solve's phase spans must account for >= 90% of the root wall-clock.
"""

from __future__ import annotations

import io
import json
import logging
import time

import pytest

from repro.api import Session, SolveRequest
from repro.motion.routing import RoutingStats
from repro.obs import (
    MetricError,
    MetricsRegistry,
    MetricsSnapshotter,
    NOOP_SPAN,
    Tracer,
    configure_logging,
    current_tracer,
    exponential_buckets,
    load_trace,
    register_process_views,
    render_trace,
    trace_span,
    use_tracer,
    validate_prometheus_text,
)
from repro.obs.logs import JsonLogFormatter
from repro.sched.engine import ActivationStats


class TestSpans:
    def test_noop_when_no_tracer_active(self):
        assert current_tracer() is None
        assert trace_span("anything", n=3) is NOOP_SPAN
        with trace_span("still-noop") as span:
            span.set(ignored=True)  # must not raise

    def test_nesting_parent_links_and_depth(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("outer", n=1):
                with trace_span("middle"):
                    with trace_span("inner"):
                        pass
                with trace_span("sibling"):
                    pass
        records = {r["name"]: r for r in tracer.records()}
        assert records["outer"]["parent"] is None
        assert records["middle"]["parent"] == records["outer"]["id"]
        assert records["inner"]["parent"] == records["middle"]["id"]
        assert records["sibling"]["parent"] == records["outer"]["id"]
        assert records["inner"]["depth"] == 2
        assert records["outer"]["attrs"] == {"n": 1}
        # children finish before their parent
        names = [r["name"] for r in tracer.records()]
        assert names.index("inner") < names.index("outer")

    def test_activation_is_scoped_and_nestable(self):
        first, second = Tracer(), Tracer()
        with use_tracer(first):
            assert current_tracer() is first
            with use_tracer(second):
                assert current_tracer() is second
            assert current_tracer() is first
        assert current_tracer() is None

    def test_exception_recorded_and_reraised(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                with trace_span("boom"):
                    raise RuntimeError("x")
        assert current_tracer() is None
        (record,) = tracer.records()
        assert record["attrs"]["error"] == "RuntimeError"

    def test_dump_load_round_trip(self, tmp_path):
        tracer = Tracer()
        with use_tracer(tracer):
            with trace_span("a", n=1):
                with trace_span("b"):
                    pass
        path = tmp_path / "t.jsonl"
        assert tracer.dump(path) == 2
        assert load_trace(path) == tracer.records()
        # append mode with an extra key (the campaign spool shape)
        tracer.dump(path, append=True, extra={"trial": "k1"})
        records = load_trace(path)
        assert len(records) == 4
        assert records[-1]["trial"] == "k1"

    def test_load_trace_reports_bad_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"id": 1}\nnot json\n')
        with pytest.raises(ValueError, match=":2:"):
            load_trace(path)


class TestRoundTracing:
    def test_disabled_engine_has_no_instance_shadowing(self):
        from repro.sim.engine import CircuitEngine
        from repro.workloads.specs import build_structure

        engine = CircuitEngine(build_structure("hexagon:2"))
        # The bit-identity guarantee: without opt-in, the instance runs
        # the untouched class methods — nothing shadowed on the object.
        assert "run_round_indexed" not in engine.__dict__
        assert "run_round" not in engine.__dict__
        engine.enable_round_tracing()
        assert "run_round_indexed" in engine.__dict__
        engine.enable_round_tracing()  # idempotent

    def test_round_spans_and_bit_identity(self):
        request = SolveRequest(shape="random:60:3", k=1, l=3, algorithm="spt")
        baseline = Session().run(request)
        tracer = Tracer(trace_rounds=True)
        with use_tracer(tracer):
            traced = Session().run(request)
        assert traced.rounds == baseline.rounds
        rounds = [r for r in tracer.records() if r["name"] == "round"]
        assert rounds, "opt-in round tracing must produce per-round spans"
        phase = {r["name"] for r in tracer.records()}
        assert {"solve", "build", "rounds"} <= phase

    def test_default_tracer_produces_no_round_spans(self):
        tracer = Tracer()  # trace_rounds=False
        with use_tracer(tracer):
            Session().run(SolveRequest(shape="random:60:3", k=1, l=3))
        assert not [r for r in tracer.records() if r["name"] == "round"]


class TestPipelineCoverage:
    def test_phase_spans_cover_90_percent_of_wallclock(self):
        tracer = Tracer()
        with use_tracer(tracer):
            Session().run(
                SolveRequest(shape="random:200:7", k=2, l=5, algorithm="forest")
            )
        records = tracer.records()
        (root,) = [r for r in records if r["parent"] is None]
        assert root["name"] == "solve"
        children = [r for r in records if r["parent"] == root["id"]]
        covered = sum(r["dur_s"] for r in children)
        assert covered >= 0.90 * root["dur_s"], (
            f"phase spans cover {covered / root['dur_s']:.1%} of the root"
        )
        attrs = root["attrs"]
        assert attrs["n"] == 200
        assert attrs["rounds"] > 0
        assert "layout_cache_hits" in attrs and "layout_cache_misses" in attrs

    def test_cached_run_records_cached_span(self):
        session = Session()
        request = SolveRequest(shape="random:60:3", k=1, l=3)
        session.run(request)
        tracer = Tracer()
        with use_tracer(tracer):
            report = session.run(request)
        assert report.cached is True
        (record,) = [r for r in tracer.records() if r["name"] == "solve"]
        assert record["attrs"]["cached"] is True


class TestHistogram:
    def test_exponential_buckets(self):
        bounds = exponential_buckets(0.001, 2.0, 4)
        assert bounds == (0.001, 0.002, 0.004, 0.008)
        with pytest.raises(MetricError):
            exponential_buckets(start=0)

    def test_bucketing_and_quantiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", "test", buckets=[0.01, 0.1, 1.0])
        for value in (0.005, 0.005, 0.05, 0.5, 5.0):
            hist.observe(value)
        assert hist.total_count() == 5
        # 0.005s observations land in the first bucket: p50 -> its bound
        assert hist.quantile(0.0) == 0.01
        assert hist.quantile(0.5) == 0.1
        # the 5.0 overflow observation reports the last finite bound
        assert hist.quantile(1.0) == 1.0
        assert registry.histogram("h", "test").quantile(0.5) == 0.1  # same object

    def test_label_subset_merging(self):
        hist = MetricsRegistry().histogram("h", buckets=[1.0, 10.0])
        hist.observe(0.5, kind="solve", cached="true")
        hist.observe(5.0, kind="solve", cached="false")
        hist.observe(0.5, kind="route", cached="false")
        assert hist.count() == 3
        assert hist.count(kind="solve") == 2
        assert hist.count(cached="false") == 2
        assert hist.quantile(1.0, cached="true") == 1.0
        assert hist.quantile(0.5) is not None
        assert hist.quantile(0.5, kind="absent") is None

    def test_bounded_memory(self):
        hist = MetricsRegistry().histogram("h", buckets=[0.1, 1.0])
        for i in range(10_000):
            hist.observe(i % 7 * 0.05, kind="solve")
        ((_labels, state),) = hist.series()
        assert len(state.counts) == 3  # 2 buckets + overflow, forever
        assert state.count == 10_000

    def test_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(MetricError, match="strictly increase"):
            registry.histogram("bad", buckets=[1.0, 1.0])
        with pytest.raises(MetricError, match="invalid metric name"):
            registry.counter("0starts-with-digit")
        registry.counter("c")
        with pytest.raises(MetricError, match="already registered"):
            registry.gauge("c")
        with pytest.raises(MetricError, match="cannot decrease"):
            registry.counter("c").inc(-1)


class TestPrometheusRendering:
    def test_fixed_fixture(self):
        registry = MetricsRegistry()
        counter = registry.counter("jobs_total", "Jobs by state.")
        counter.inc(3, state="done")
        counter.inc(state="failed")
        gauge = registry.gauge("queue_depth")
        gauge.set(2)
        hist = registry.histogram("latency_seconds", "Latency.", buckets=[0.1, 1.0])
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render_prometheus()
        expected = (
            "# HELP jobs_total Jobs by state.\n"
            "# TYPE jobs_total counter\n"
            'jobs_total{state="done"} 3\n'
            'jobs_total{state="failed"} 1\n'
            "# TYPE queue_depth gauge\n"
            "queue_depth 2\n"
            "# HELP latency_seconds Latency.\n"
            "# TYPE latency_seconds histogram\n"
            'latency_seconds_bucket{le="0.1"} 1\n'
            'latency_seconds_bucket{le="1"} 2\n'
            'latency_seconds_bucket{le="+Inf"} 3\n'
            "latency_seconds_sum 5.55\n"
            "latency_seconds_count 3\n"
        )
        assert text == expected
        assert validate_prometheus_text(text) == []

    def test_view_rendering(self):
        registry = MetricsRegistry()
        registry.register_view(
            "demo", lambda: {"hits": 4, "rate": 0.5, "backend": "numpy"}, "repro_demo"
        )
        text = registry.render_prometheus()
        assert "repro_demo_hits 4" in text
        assert "repro_demo_rate 0.5" in text
        assert 'repro_demo_info{backend="numpy"} 1' in text
        assert validate_prometheus_text(text) == []
        assert registry.views_dict()["demo"]["hits"] == 4

    def test_validator_rejects_broken_bodies(self):
        assert validate_prometheus_text("metric_a 1\nmetric_a 2")  # no newline
        problems = validate_prometheus_text("this is ! not a sample\n")
        assert any("malformed" in p for p in problems)
        problems = validate_prometheus_text(
            "# TYPE m wibble\n# TYPE m counter\nm 1\n"
        )
        assert any("unknown type" in p for p in problems)
        assert any("duplicate TYPE" in p for p in problems)
        # histogram invariants: non-cumulative buckets, _count mismatch
        body = (
            "# TYPE h histogram\n"
            'h_bucket{le="0.1"} 5\n'
            'h_bucket{le="1"} 3\n'
            'h_bucket{le="+Inf"} 3\n'
            "h_sum 1\n"
            "h_count 9\n"
        )
        problems = validate_prometheus_text(body)
        assert any("not cumulative" in p for p in problems)
        assert any("_count" in p for p in problems)
        body_missing_inf = (
            "# TYPE h histogram\n" 'h_bucket{le="0.1"} 1\n' "h_sum 1\nh_count 1\n"
        )
        assert any(
            "+Inf" in p for p in validate_prometheus_text(body_missing_inf)
        )


class TestProcessViews:
    def test_legacy_stat_globals_render(self):
        registry = register_process_views(MetricsRegistry())
        views = registry.views_dict()
        assert "full_builds" in views["grid_stats"]
        assert "cache_hits" in views["layout_stats"]
        assert views["backend"]["resolved"] in ("python", "numpy")
        text = registry.render_prometheus()
        assert validate_prometheus_text(text) == []
        assert "repro_grid_full_builds" in text
        assert "repro_layout_cache_hits" in text
        assert "repro_backend_info" in text

    def test_views_read_live_state(self):
        from repro.grid.compiled import GRID_STATS

        registry = register_process_views(MetricsRegistry())
        before = registry.views_dict()["grid_stats"]["full_builds"]
        GRID_STATS.full_builds += 1
        try:
            after = registry.views_dict()["grid_stats"]["full_builds"]
            assert after == before + 1
        finally:
            GRID_STATS.full_builds -= 1


class TestStatsObjects:
    def test_activation_stats_to_dict_and_reset(self):
        stats = ActivationStats(
            activations=7, wasted=2, epochs=3, time=1.25,
            retransmissions=1, checksum=99, per_node={1: 4, 2: 3},
        )
        data = stats.to_dict()
        assert data == {
            "activations": 7, "wasted": 2, "epochs": 3, "time": 1.25,
            "retransmissions": 1, "checksum": 99, "participants": 2,
        }
        json.dumps(data)  # JSON-ready: no Node keys, no sets
        stats.reset()
        assert stats.activations == 0 and stats.per_node == {}
        assert stats.to_dict()["participants"] == 0

    def test_routing_stats_reset(self):
        from repro.grid.coords import Node

        stats = RoutingStats(
            steps=5, total_moves=9, lower_bound=4,
            token_paths={0: [Node(0, 0), Node(1, 0)]}, rescued=1,
        )
        assert stats.to_dict()["steps"] == 5
        stats.reset()
        assert stats.steps == 0 and stats.token_paths == {}
        assert stats.to_dict()["path_lengths"] == {}


class TestRenderTrace:
    def test_flamegraph_fixture(self):
        records = [
            {"id": 1, "parent": None, "name": "solve", "depth": 0,
             "start_s": 0.0, "dur_s": 1.0, "attrs": {"n": 10}},
            {"id": 2, "parent": 1, "name": "build", "depth": 1,
             "start_s": 0.0, "dur_s": 0.25},
            {"id": 3, "parent": 1, "name": "rounds", "depth": 1,
             "start_s": 0.25, "dur_s": 0.75},
        ]
        text = render_trace(records, width=4)
        lines = text.splitlines()
        assert lines[0].startswith("solve")
        assert "100.0%" in lines[0] and "n=10" in lines[0]
        assert lines[1].lstrip().startswith("build")
        assert "25.0%" in lines[1] and "█" in lines[1]
        assert "75.0%" in lines[2]

    def test_orphans_and_multiple_roots(self):
        records = [
            {"id": 1, "parent": None, "name": "a", "start_s": 0.0, "dur_s": 0.1},
            {"id": 9, "parent": 404, "name": "orphan", "start_s": 0.2,
             "dur_s": 0.1, "trial": "k7"},
        ]
        text = render_trace(records)
        assert "a" in text and "orphan" in text
        assert "trial=k7" in text
        assert render_trace([]) == "(empty trace)"


class TestSnapshotter:
    def test_snapshots_appended_and_final_on_stop(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("c").inc(5)
        path = tmp_path / "metrics.jsonl"
        snap = MetricsSnapshotter(registry, path, interval_s=0.05).start()
        time.sleep(0.18)
        snap.stop()
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert len(lines) >= 2  # periodic plus the final stop() write
        last = lines[-1]
        assert last["ts"] > 0
        series = last["metrics"]["instruments"]["c"]["series"]
        assert series == [{"labels": {}, "value": 5}]
        with pytest.raises(ValueError):
            MetricsSnapshotter(registry, path, interval_s=0)


class TestLogging:
    def test_json_formatter_includes_extras(self):
        formatter = JsonLogFormatter()
        record = logging.LogRecord(
            "repro.test", logging.INFO, __file__, 1, "job %s", ("j-1",), None
        )
        record.latency_s = 0.25
        data = json.loads(formatter.format(record))
        assert data["msg"] == "job j-1"
        assert data["level"] == "info"
        assert data["latency_s"] == 0.25

    def test_configure_logging_levels_and_streams(self):
        stream = io.StringIO()
        logger = configure_logging(level="debug", fmt="json", stream=stream)
        logger.debug("hello", extra={"k": 1})
        data = json.loads(stream.getvalue())
        assert data["msg"] == "hello" and data["k"] == 1
        # idempotent reconfiguration replaces the handler
        stream2 = io.StringIO()
        logger = configure_logging(level="info", fmt="text", stream=stream2)
        assert len(logger.handlers) == 1
        logger.info("plain")
        assert "plain" in stream2.getvalue()
        with pytest.raises(ValueError):
            configure_logging(level="loud")
        with pytest.raises(ValueError):
            configure_logging(fmt="xml")
        logger.handlers[:] = []  # leave global logging untouched for other tests


class TestCliTrace:
    def test_solve_trace_and_render(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "t.jsonl"
        assert main([
            "solve", "--shape", "random:60:3", "-k", "1", "-l", "3",
            "--trace", str(path),
        ]) == 0
        records = load_trace(path)
        assert [r for r in records if r["parent"] is None][0]["name"] == "solve"
        capsys.readouterr()
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "solve" in out and "100.0%" in out and "█" in out

    def test_trace_rejects_missing_file(self, tmp_path):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["trace", str(tmp_path / "nope.jsonl")])


class TestCampaignTraceSpool:
    def test_inline_runner_spools_tagged_trials(self, tmp_path):
        from repro.experiments import CampaignRunner, get_campaign
        from repro.experiments.runner import _TRACE_DIR

        runner = CampaignRunner(workers=1, trace_dir=tmp_path / "spool")
        report = runner.run(get_campaign("spsp-small"))
        assert report.executed == report.total
        files = sorted((tmp_path / "spool").glob("trials-*.jsonl"))
        assert len(files) == 1  # inline: one spool for this process
        records = [r for f in files for r in load_trace(f)]
        trials = [r for r in records if r["name"] == "trial"]
        assert len(trials) == report.total
        assert all("trial" in r for r in records)  # every span is tagged
        assert _TRACE_DIR is None  # restored after the run
