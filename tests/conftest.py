"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import random
from typing import Dict, List, Set, Tuple

import pytest

from repro.grid.coords import Node
from repro.grid.oracle import bfs_tree
from repro.grid.structure import AmoebotStructure
from repro.ett.tour import adjacency_from_edges
from repro.sim.engine import CircuitEngine
from repro.workloads import hexagon, random_hole_free


@pytest.fixture
def small_hexagon() -> AmoebotStructure:
    return hexagon(2)


@pytest.fixture
def medium_hexagon() -> AmoebotStructure:
    return hexagon(4)


@pytest.fixture
def random_structure() -> AmoebotStructure:
    return random_hole_free(120, seed=42)


@pytest.fixture
def dendrite_structure() -> AmoebotStructure:
    return random_hole_free(100, seed=7, compactness=0.05)


def engine_for(structure: AmoebotStructure, channels: int = 8) -> CircuitEngine:
    return CircuitEngine(structure, channels=channels)


def bfs_tree_adjacency(
    structure: AmoebotStructure, root: Node
) -> Tuple[Dict[Node, List[Node]], Dict[Node, Node]]:
    """A BFS tree of the structure as rotation-ordered adjacency."""
    _dist, parent = bfs_tree(structure, root)
    edges = [(child, par) for child, par in parent.items() if par is not None]
    adjacency = adjacency_from_edges(edges) if edges else {root: []}
    cleaned = {child: par for child, par in parent.items() if par is not None}
    return adjacency, cleaned


def random_subset(structure: AmoebotStructure, count: int, seed: int) -> Set[Node]:
    rng = random.Random(seed)
    return set(rng.sample(sorted(structure.nodes), count))
