"""Tests for the workload generators and samplers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.coords import Node
from repro.grid.holes import has_holes
from repro.workloads import (
    comb,
    hexagon,
    line_structure,
    lollipop,
    parallelogram,
    random_hole_free,
    sample_sources_destinations,
    spread_nodes,
    staircase,
    triangle,
)


class TestShapes:
    def test_line_count_and_shape(self):
        s = line_structure(9)
        assert len(s) == 9
        assert all(u.y == 0 for u in s)

    def test_parallelogram_count(self):
        assert len(parallelogram(5, 4)) == 20

    def test_triangle_count(self):
        assert len(triangle(5)) == 15

    def test_hexagon_count(self):
        for r in range(4):
            assert len(hexagon(r)) == 3 * r * r + 3 * r + 1

    def test_comb_count(self):
        s = comb(4, 3, spacing=2)
        assert len(s) == 7 + 4 * 3

    def test_staircase_is_connected_and_thin(self):
        s = staircase(5, 2)
        assert len(s) == 1 + 5 * 2 + 4 * 2

    def test_lollipop_handle(self):
        s = lollipop(2, 6)
        assert Node(8, 0) in s

    def test_all_shapes_hole_free(self):
        shapes = [
            line_structure(6),
            parallelogram(5, 5),
            triangle(6),
            hexagon(3),
            comb(4, 4),
            staircase(4, 3),
            lollipop(2, 5),
        ]
        for s in shapes:
            assert not has_holes(s.nodes)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            line_structure(0)
        with pytest.raises(ValueError):
            parallelogram(3, 0)
        with pytest.raises(ValueError):
            triangle(0)
        with pytest.raises(ValueError):
            hexagon(-1)
        with pytest.raises(ValueError):
            comb(0, 2)
        with pytest.raises(ValueError):
            staircase(0)


class TestSpecValidation:
    """build_structure must reject degenerate size arguments up front."""

    @pytest.mark.parametrize(
        "spec",
        ["random:0", "line:-3", "hexagon:0", "lollipop:0:8", "comb:3:0",
         "dendrite:-1", "triangle:0"],
    )
    def test_non_positive_sizes_rejected(self, spec):
        from repro.workloads.specs import build_structure

        with pytest.raises(ValueError, match="size argument"):
            build_structure(spec)

    def test_error_names_the_spec(self):
        from repro.workloads.specs import build_structure

        with pytest.raises(ValueError, match="random:0"):
            build_structure("random:0")

    @pytest.mark.parametrize("spec", ["random:12:0", "dendrite:12:-5"])
    def test_seed_arguments_may_be_non_positive(self, spec):
        from repro.workloads.specs import build_structure

        assert len(build_structure(spec)) == 12


class TestRandomStructures:
    def test_deterministic_by_seed(self):
        a = random_hole_free(60, seed=5)
        b = random_hole_free(60, seed=5)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_hole_free(60, seed=5)
        b = random_hole_free(60, seed=6)
        assert a != b

    def test_compactness_bounds(self):
        with pytest.raises(ValueError):
            random_hole_free(10, seed=0, compactness=1.5)

    def test_compact_growth_is_rounder(self):
        blob = random_hole_free(100, seed=1, compactness=0.9)
        snake = random_hole_free(100, seed=1, compactness=0.05)

        def spread(s):
            min_x, max_x, min_y, max_y = s.bounding_box()
            return (max_x - min_x + 1) * (max_y - min_y + 1)

        assert spread(snake) > spread(blob)

    def test_growth_matches_historical_rescan_reference(self):
        # The frontier-incremental generator must grow *bit for bit*
        # the structure the historical implementation grew: recompute
        # every addable candidate from scratch each step, sort, and
        # draw with random.choices — O(n^2) but unimpeachable.
        import random as random_mod

        from repro.grid.directions import all_directions_ccw
        from repro.workloads.random_structures import addable_nodes

        def reference(n, seed, compactness):
            rng = random_mod.Random(seed)
            nodes = {Node(0, 0)}
            base = 1.0 - compactness
            while len(nodes) < n:
                candidates = sorted(addable_nodes(nodes))
                counts = [
                    sum(1 for d in all_directions_ccw() if v.neighbor(d) in nodes)
                    for v in candidates
                ]
                weights = [base + compactness * (c * c) for c in counts]
                nodes.add(rng.choices(candidates, weights=weights, k=1)[0])
            return nodes

        for compactness in (0.05, 0.5, 1.0):
            grown = random_hole_free(80, seed=9, compactness=compactness)
            assert grown.nodes == reference(80, 9, compactness), (
                f"frontier-incremental growth diverged from the "
                f"historical re-scan at compactness {compactness}"
            )

    def test_draw_branches_are_bit_identical(self, monkeypatch):
        # The ndarray weighted draw and the scalar one must choose the
        # same candidate for the same seed; force each branch in turn
        # (the threshold normally routes small frontiers to the scalar
        # path).
        import repro.workloads.random_structures as rs

        if rs.numpy_or_none() is None:
            pytest.skip("numpy not installed")
        monkeypatch.setattr(rs, "_NUMPY_DRAW_MIN", 1)
        vectorized = rs.random_hole_free(400, seed=11)
        monkeypatch.setattr(rs, "numpy_or_none", lambda: None)
        scalar = rs.random_hole_free(400, seed=11)
        assert vectorized == scalar

    def test_frontier_growth_scales_to_thousands(self):
        # The smoke for the scale tiers: a few-thousand-node growth
        # (infeasible under the historical per-step re-sort) completes
        # and validates (AmoebotStructure re-checks connectivity and
        # hole-freeness on construction).
        structure = random_hole_free(3000, seed=11)
        assert len(structure.nodes) == 3000

    def test_scale_tier_aliases_resolve(self, monkeypatch):
        from repro.workloads import SCALE_TIERS
        from repro.workloads import specs

        assert SCALE_TIERS == {
            "large": "random:20000:11",
            "huge": "random:100000:11",
        }
        # Resolution goes through the alias table (patch in a cheap
        # tier rather than growing 20000 nodes in a unit test).
        monkeypatch.setitem(specs.SCALE_TIERS, "tiny", "hexagon:2")
        assert specs.build_structure("tiny") == hexagon(2)


class TestSamplers:
    def test_disjoint_sampling(self):
        s = hexagon(3)
        src, dst = sample_sources_destinations(s, 4, 6, seed=3)
        assert len(src) == 4 and len(dst) == 6
        assert not set(src) & set(dst)

    def test_sampling_too_many_raises(self):
        s = hexagon(1)
        with pytest.raises(ValueError):
            sample_sources_destinations(s, 5, 5, seed=0)

    def test_sampler_is_seeded(self):
        s = hexagon(3)
        assert sample_sources_destinations(s, 3, 3, seed=9) == (
            sample_sources_destinations(s, 3, 3, seed=9)
        )

    def test_spread_nodes_count_and_membership(self):
        s = hexagon(3)
        picks = spread_nodes(s, 5)
        assert len(picks) == 5
        assert len(set(picks)) == 5
        assert all(u in s for u in picks)

    def test_spread_nodes_spreads(self):
        s = line_structure(20)
        picks = spread_nodes(s, 2)
        # The two picks should be the two ends of the line.
        assert {u.x for u in picks} == {0, 19}

    @given(st.integers(min_value=1, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_spread_nodes_any_k(self, k):
        s = hexagon(3)
        assert len(spread_nodes(s, k)) == k
