"""Locks on the supported public surface of :mod:`repro`.

Two contracts live here:

* ``repro.__all__`` names exactly the supported API — adding or
  removing an export is a deliberate, test-visible act.
* The deprecated kwarg aliases (``solve_spf(scheduler=)``,
  ``DynamicSPF(engine=)``) warn but behave identically to the
  session-based replacements, for one release.
"""

from __future__ import annotations

import inspect

import pytest

import repro
from repro import Session, SolveRequest, solve_spf
from repro.workloads import random_hole_free

EXPECTED_ALL = {
    # facade
    "Session", "SolveRequest", "SolveReport", "RequestError",
    # backend controls
    "backend_info", "set_default_backend", "use_backend",
    # grid
    "AmoebotStructure", "Axis", "Direction", "Node",
    "bfs_distances", "grid_distance", "structure_diameter",
    # engines & metrics
    "CircuitEngine", "RoundCounter",
    # SPF solvers
    "Forest", "SPFSolution", "line_forest", "merge_forests",
    "propagate_forest", "shortest_path_forest", "shortest_path_tree",
    "solve_spf",
    # verification
    "assert_valid_forest", "check_forest",
    # dynamics
    "DynamicSPF", "EditBatch", "EditScript", "FaultInjector",
    "generate_churn",
    # experiments
    "CampaignRunner", "CampaignSpec", "ResultStore", "ScenarioSpec",
    "TrialSpec", "campaign_names", "get_campaign", "run_campaign",
    # workload generators
    "build_structure", "comb", "hexagon", "line_structure", "lollipop",
    "parallelogram", "random_hole_free", "sample_sources_destinations",
    "spread_nodes", "staircase", "triangle",
    "__version__",
}


class TestPublicSurface:
    def test_all_is_exactly_the_supported_surface(self):
        assert set(repro.__all__) == EXPECTED_ALL

    def test_every_export_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_session_signature(self):
        params = list(inspect.signature(Session.__init__).parameters)
        assert params == [
            "self", "backend", "scheduler", "allow_holes", "channels",
            "layouts", "store", "max_structures",
        ]

    def test_solve_request_fields(self):
        from dataclasses import fields

        names = [f.name for f in fields(SolveRequest)]
        assert names == [
            "kind", "shape", "k", "l", "seed", "placement", "algorithm",
            "allow_holes", "scheduler", "backend", "tokens", "churn",
            "churn_steps", "churn_batch", "threshold", "crash", "drop",
            "deadline_s",
        ]

    def test_solve_spf_signature(self):
        params = list(inspect.signature(solve_spf).parameters)
        assert params == [
            "structure", "sources", "destinations", "engine",
            "allow_holes", "scheduler", "session",
        ]

    def test_dynamic_spf_signature(self):
        from repro import DynamicSPF

        params = list(inspect.signature(DynamicSPF.__init__).parameters)
        assert params == [
            "self", "structure", "sources", "destinations", "engine",
            "threshold", "faults", "session",
        ]


class TestDeprecatedAliases:
    """The old kwargs warn and delegate, bit-identically."""

    def _instance(self):
        structure = random_hole_free(40, seed=3)
        nodes = sorted(structure.nodes)
        return structure, [nodes[0]], nodes[-3:]

    def test_solve_spf_scheduler_kwarg_warns_and_matches(self):
        structure, sources, destinations = self._instance()
        with pytest.warns(DeprecationWarning, match="solve_spf.*deprecated"):
            old = solve_spf(
                structure, sources, destinations, scheduler="random:5"
            )
        new = solve_spf(
            structure, sources, destinations,
            session=Session(scheduler="random:5"),
        )
        assert old.rounds == new.rounds
        assert old.forest.parent == new.forest.parent

    def test_dynamic_spf_engine_kwarg_warns_and_matches(self):
        from repro import CircuitEngine, DynamicSPF

        structure, sources, destinations = self._instance()
        with pytest.warns(DeprecationWarning, match="DynamicSPF.*deprecated"):
            old = DynamicSPF(
                structure, sources, destinations,
                engine=CircuitEngine(structure),
            )
        structure2 = random_hole_free(40, seed=3)
        nodes2 = sorted(structure2.nodes)
        new = DynamicSPF(
            structure2, [nodes2[0]], nodes2[-3:], session=Session()
        )
        assert old.forest.parent == new.forest.parent
        assert old.engine.rounds.total == new.engine.rounds.total

    def test_session_path_does_not_warn(self, recwarn):
        structure, sources, destinations = self._instance()
        solve_spf(
            structure, sources, destinations,
            session=Session(scheduler="sync"),
        )
        deprecations = [
            w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
        ]
        assert not deprecations
