"""Tests for the experiment subsystem: specs, runner, store, aggregate."""

import json
import math

import pytest

from repro.experiments import (
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    SpecError,
    TrialSpec,
    campaign_names,
    classify_growth,
    execute_trial,
    expand_trials,
    get_campaign,
    group_records,
    growth_report,
    run_campaign,
    summarize,
    summary_table,
    sweep_axis,
)

TINY_CAMPAIGN = {
    "name": "tiny",
    "scenarios": [
        {
            "name": "hex",
            "shape": "hexagon:{n}",
            "sizes": [2, 3],
            "ks": [1, 2],
            "ls": [2],
            "seeds": [0],
        },
    ],
}


class TestSpecParsing:
    def test_round_trip_json(self):
        campaign = CampaignSpec.from_dict(TINY_CAMPAIGN)
        again = CampaignSpec.from_json(campaign.to_json())
        assert again == campaign
        assert again.trial_count() == 4

    def test_scenario_defaults(self):
        scenario = ScenarioSpec.from_dict({"name": "s", "shape": "hexagon:2"})
        assert scenario.trials()[0].algorithm == "auto"
        assert scenario.trials()[0].k == 1

    def test_scalar_axis_promoted(self):
        scenario = ScenarioSpec.from_dict(
            {"name": "s", "shape": "hexagon:{n}", "sizes": 3, "ks": 2}
        )
        assert scenario.sizes == (3,)
        assert scenario.ks == (2,)

    @pytest.mark.parametrize(
        "data,fragment",
        [
            ({"name": "s", "shape": "hexagon:2", "sizes": [2]}, "placeholder"),
            ({"name": "s", "shape": "hexagon:{n}"}, "no sizes"),
            ({"name": "s", "shape": "hexagon:2", "bogus": 1}, "unknown scenario"),
            ({"shape": "hexagon:2"}, "requires"),
            ({"name": "s", "shape": "hexagon:2", "ks": []}, "non-empty"),
            ({"name": "s", "shape": "hexagon:2", "ks": ["two"]}, "ints"),
            ({"name": "s", "shape": "hexagon:2", "algorithm": "magic"}, "algorithm"),
            (
                {"name": "s", "shape": "hexagon:2", "ks": [2], "algorithm": "spt"},
                "requires k = 1",
            ),
            (
                {"name": "s", "shape": "hexagon:2", "placement": "corners"},
                "placement",
            ),
            (
                {"name": "s", "shape": "hexagon:2", "ls": [3],
                 "algorithm": "sequential"},
                "requires l = 0",
            ),
        ],
    )
    def test_bad_scenarios_rejected(self, data, fragment):
        with pytest.raises(SpecError, match=fragment):
            ScenarioSpec.from_dict(data)

    def test_bad_campaigns_rejected(self):
        with pytest.raises(SpecError, match="no scenarios"):
            CampaignSpec.from_dict({"name": "empty"})
        with pytest.raises(SpecError, match="duplicate"):
            CampaignSpec.from_dict(
                {
                    "name": "dup",
                    "scenarios": [
                        {"name": "s", "shape": "hexagon:2"},
                        {"name": "s", "shape": "hexagon:3"},
                    ],
                }
            )
        with pytest.raises(SpecError, match="JSON"):
            CampaignSpec.from_json("{not json")
        with pytest.raises(SpecError, match="unknown campaign fields"):
            CampaignSpec.from_dict(
                {
                    "name": "x",
                    "extra": 1,
                    "scenarios": [{"name": "s", "shape": "hexagon:2"}],
                }
            )

    def test_negative_parameters_rejected(self):
        with pytest.raises(SpecError, match="k must be positive"):
            TrialSpec(scenario="s", shape="hexagon:2", k=0, l=1, seed=0)
        with pytest.raises(SpecError, match="l must be"):
            TrialSpec(scenario="s", shape="hexagon:2", k=1, l=-1, seed=0)


class TestTrialKeys:
    def test_key_is_content_hash(self):
        a = TrialSpec(scenario="a", shape="hexagon:2", k=1, l=1, seed=0)
        b = TrialSpec(scenario="b", shape="hexagon:2", k=1, l=1, seed=0)
        c = TrialSpec(scenario="a", shape="hexagon:2", k=1, l=1, seed=1)
        assert a.key() == b.key()  # scenario name is not identity
        assert a.key() != c.key()

    def test_sampling_seed_deterministic(self):
        t = TrialSpec(scenario="s", shape="hexagon:3", k=2, l=2, seed=7)
        assert t.sampling_seed() == t.sampling_seed()
        other = TrialSpec(scenario="s", shape="hexagon:3", k=2, l=2, seed=8)
        assert t.sampling_seed() != other.sampling_seed()

    def test_expand_trials_dedupes_across_scenarios(self):
        a = ScenarioSpec(name="a", shape="hexagon:2")
        b = ScenarioSpec(name="b", shape="hexagon:2")
        trials = expand_trials([*a.trials(), *b.trials()])
        assert len(trials) == 1


class TestRunner:
    def test_worker_layout_cache_shared_across_trials(self):
        # Trials over the same shape hit the worker-wide layout cache:
        # the second execution reuses frozen-and-compiled layouts built
        # by the first instead of recompiling them per trial.
        from repro.experiments.runner import _WORKER_LAYOUTS

        first = TrialSpec(scenario="s", shape="hexagon:2", k=1, l=1, seed=0)
        second = TrialSpec(scenario="s", shape="hexagon:2", k=1, l=1, seed=1)
        execute_trial(first)
        hits_before = _WORKER_LAYOUTS.hits
        result = execute_trial(second)
        assert result.rounds > 0
        assert _WORKER_LAYOUTS.hits > hits_before

    def test_execute_trial_measures(self):
        trial = TrialSpec(
            scenario="s", shape="hexagon:2", k=2, l=2, seed=0,
            measure_diameter=True,
        )
        result = execute_trial(trial)
        assert result.key == trial.key()
        assert result.n == 19
        assert result.rounds > 0
        assert result.resolved == "forest"
        assert result.forest_members >= 2
        assert result.diameter == 4
        assert result.sections

    @pytest.mark.parametrize("placement", ["extremes", "spread", "random"])
    def test_oversized_l_rejected_not_truncated(self, placement):
        trial = TrialSpec(
            scenario="s", shape="hexagon:1", k=1, l=50, seed=0,
            placement=placement,
        )
        with pytest.raises(ValueError, match="cannot pick"):
            execute_trial(trial)

    def test_parallel_matches_serial(self):
        campaign = CampaignSpec.from_dict(TINY_CAMPAIGN)
        serial = run_campaign(campaign, workers=1)
        parallel = run_campaign(campaign, workers=2)
        assert serial.total == parallel.total == 4

        def comparable(report):
            rows = []
            for record in report.records():
                record.pop("elapsed_s")
                record.pop("cached")
                rows.append(record)
            return sorted(rows, key=lambda r: r["key"])

        assert comparable(serial) == comparable(parallel)

    def test_resume_skips_cached_trials(self, tmp_path):
        campaign = CampaignSpec.from_dict(TINY_CAMPAIGN)
        path = tmp_path / "tiny.jsonl"
        first = run_campaign(campaign, store=ResultStore(path))
        assert first.executed == 4 and first.cache_hits == 0
        rerun = run_campaign(campaign, store=ResultStore(path))
        assert rerun.executed == 0 and rerun.cache_hits == 4
        assert all(r.cached for r in rerun.results)
        assert comparable_rounds(first) == comparable_rounds(rerun)

    def test_fresh_run_ignores_cache(self, tmp_path):
        campaign = CampaignSpec.from_dict(TINY_CAMPAIGN)
        store = ResultStore(tmp_path / "tiny.jsonl")
        run_campaign(campaign, store=store)
        again = run_campaign(campaign, store=store, resume=False)
        assert again.executed == 4 and again.cache_hits == 0

    def test_interrupted_run_resumes_from_last_trial(self, tmp_path):
        campaign = CampaignSpec.from_dict(TINY_CAMPAIGN)
        path = tmp_path / "tiny.jsonl"

        def bomb(trial, result, done, total):
            if done == 2:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_campaign(campaign, store=ResultStore(path), progress=bomb)
        assert len(ResultStore(path)) == 2  # completed trials were persisted
        rerun = run_campaign(campaign, store=ResultStore(path))
        assert rerun.cache_hits == 2 and rerun.executed == 2

    def test_progress_callback(self):
        campaign = CampaignSpec.from_dict(TINY_CAMPAIGN)
        seen = []
        run_campaign(
            campaign, progress=lambda t, r, done, total: seen.append((done, total))
        )
        assert sorted(seen) == [(1, 4), (2, 4), (3, 4), (4, 4)]


def comparable_rounds(report):
    return sorted((r.key, r.rounds, r.forest_members) for r in report.results)


class TestStore:
    def test_in_memory_store(self):
        store = ResultStore()
        store.add({"key": "k1", "rounds": 3, "scenario": "s"})
        assert store.has("k1") and len(store) == 1
        assert store.get("k1")["rounds"] == 3
        assert store.get("missing") is None

    def test_requires_key(self):
        with pytest.raises(ValueError, match="key"):
            ResultStore().add({"rounds": 3})

    def test_persistence_and_corrupt_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add({"key": "a", "rounds": 1, "scenario": "x"})
        store.add({"key": "b", "rounds": 2, "scenario": "y"})
        with path.open("a") as handle:
            handle.write("{torn-write\n\n")
            handle.write(json.dumps({"key": "a", "rounds": 9, "scenario": "x"}) + "\n")
        reloaded = ResultStore(path)
        assert len(reloaded) == 2
        assert reloaded.get("a")["rounds"] == 9  # last write wins
        assert reloaded.scenarios() == ["x", "y"]
        assert [r["key"] for r in reloaded.records(scenario="y")] == ["b"]

    def test_non_string_key_survives_reload(self, tmp_path):
        """A trial recorded under a non-string key must still count as
        cached after a restart — resume must not silently re-run it."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add({"key": 123, "rounds": 7, "scenario": "s"})
        assert store.has(123) and store.has("123")  # normalized in memory

        reloaded = ResultStore(path)
        assert reloaded.has(123), "trial lost across reload: would re-run"
        assert reloaded.has("123")
        assert reloaded.get(123)["rounds"] == 7
        # The normalized key is what reached the disk.
        assert json.loads(path.read_text().strip())["key"] == "123"

    def test_mixed_key_types_do_not_duplicate(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add({"key": 7, "rounds": 1, "scenario": "s"})
        store.add({"key": "7", "rounds": 2, "scenario": "s"})
        assert len(store) == 1
        assert ResultStore(path).get(7)["rounds"] == 2  # last write wins


class TestAggregate:
    def test_summarize_means(self):
        records = [
            {"n": 10, "rounds": 4},
            {"n": 10, "rounds": 6},
            {"n": 20, "rounds": 10},
        ]
        assert summarize(records, x="n") == [(10, 5.0), (20, 10.0)]

    def test_group_and_axis(self):
        records = [
            {"scenario": "a", "n": 10, "k": 1, "rounds": 1},
            {"scenario": "b", "n": 10, "k": 2, "rounds": 2},
        ]
        assert set(group_records(records, "scenario")) == {"a", "b"}
        assert sweep_axis(records) == "k"

    def test_summary_table_renders(self):
        records = [{"n": 10, "rounds": 4}, {"n": 20, "rounds": 8}]
        text = summary_table(records, x="n", title="demo").render()
        assert "demo" in text and "10" in text and "8" in text

    @pytest.mark.parametrize(
        "fn,expected",
        [
            (lambda x: 7.0, "flat"),
            (lambda x: 3 * math.log2(x) + 5, "logarithmic"),
            (lambda x: 4 * math.log2(x) ** 2 + 1, "polylogarithmic"),
            (lambda x: 2 * x + 3, "linear"),
        ],
    )
    def test_classify_growth_shapes(self, fn, expected):
        xs = [50, 100, 200, 400, 800]
        fit = classify_growth(xs, [fn(x) for x in xs])
        assert fit is not None and fit.shape == expected

    def test_classify_growth_underdetermined(self):
        assert classify_growth([10, 20], [1, 2]) is None

    def test_growth_report_over_records(self):
        records = [
            {"n": n, "rounds": 3 * math.log2(n) + 2} for n in (64, 128, 256, 512)
        ]
        fit = growth_report(records, x="n")
        assert fit.shape == "logarithmic"
        assert fit.slope == pytest.approx(3.0)


class TestRegistry:
    def test_builtins_registered(self):
        names = campaign_names()
        for expected in ("spsp-small", "sssp-small", "forest-small", "forest",
                         "ablations", "shapes"):
            assert expected in names

    def test_builtin_trial_counts(self):
        assert get_campaign("forest").trial_count() >= 12
        assert get_campaign("shapes").trial_count() >= 12
        assert get_campaign("spsp-small").trial_count() == 4

    def test_unknown_campaign(self):
        with pytest.raises(KeyError, match="unknown campaign"):
            get_campaign("nope")

    def test_all_builtins_expand(self):
        for name in campaign_names():
            trials = get_campaign(name).trials()
            assert trials, name
            assert len({t.key() for t in trials}) == len(trials)


class TestStoreCompaction:
    def test_compact_drops_superseded_lines(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        for i in range(3):
            store.add({"key": "a", "rounds": i, "scenario": "s"})
        store.add({"key": "b", "rounds": 9, "scenario": "s"})
        with path.open("a") as handle:
            handle.write("{torn\n")

        reloaded = ResultStore(path)
        assert reloaded.superseded_lines == 3  # two dupes + one torn line
        reclaimed = reloaded.compact()
        assert reclaimed == 3
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 2

        again = ResultStore(path)
        assert len(again) == 2
        assert again.get("a")["rounds"] == 2  # last record survived
        assert again.superseded_lines == 0
        assert again.compact() == 0  # already minimal: no rewrite

    def test_compact_sees_duplicates_written_through_live_store(self, tmp_path):
        """Overwrites through the same instance count as superseded."""
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add({"key": "a", "rounds": 1, "scenario": "s"})
        store.add({"key": "a", "rounds": 2, "scenario": "s"})
        assert store.superseded_lines == 1
        assert store.compact() == 1
        lines = [l for l in path.read_text().splitlines() if l.strip()]
        assert len(lines) == 1
        assert ResultStore(path).get("a")["rounds"] == 2

    def test_compact_noop_on_clean_store(self, tmp_path):
        path = tmp_path / "store.jsonl"
        store = ResultStore(path)
        store.add({"key": "a", "rounds": 1, "scenario": "s"})
        before = path.read_text()
        reloaded = ResultStore(path)
        assert reloaded.compact() == 0
        assert path.read_text() == before

    def test_compact_in_memory_store_is_noop(self):
        store = ResultStore()
        store.add({"key": "a", "rounds": 1})
        assert store.compact() == 0


class TestChurnSpecs:
    def test_churn_scenario_round_trip(self):
        scenario = ScenarioSpec(
            name="churny",
            shape="random:{n}:1",
            sizes=(50,),
            ks=(1,),
            ls=(3,),
            seeds=(1,),
            churn="growth",
            churn_steps=4,
            churn_batch=2,
        )
        again = ScenarioSpec.from_dict(scenario.to_dict())
        assert again == scenario
        trial = scenario.trials()[0]
        assert trial.churn == "growth" and trial.churn_steps == 4

    def test_churn_requires_steps_and_auto(self):
        with pytest.raises(SpecError, match="churn_steps"):
            TrialSpec(scenario="s", shape="hexagon:2", k=1, l=1, seed=0,
                      churn="growth")
        with pytest.raises(SpecError, match="auto"):
            TrialSpec(scenario="s", shape="hexagon:2", k=1, l=1, seed=0,
                      algorithm="spt", churn="growth", churn_steps=2)
        with pytest.raises(SpecError, match="without a churn kind"):
            TrialSpec(scenario="s", shape="hexagon:2", k=1, l=1, seed=0,
                      churn_steps=2)
        with pytest.raises(SpecError, match="churn"):
            ScenarioSpec(name="s", shape="hexagon:2", churn="melt",
                         churn_steps=1)

    def test_non_churn_keys_unchanged_by_dynamics_fields(self):
        """Churn fields must not enter pre-dynamics content hashes."""
        trial = TrialSpec(scenario="s", shape="hexagon:2", k=1, l=2, seed=0)
        assert "churn" not in trial.config()
        churny = TrialSpec(scenario="s", shape="hexagon:2", k=1, l=2, seed=0,
                           churn="growth", churn_steps=2)
        assert churny.key() != trial.key()
        assert churny.config()["churn_steps"] == 2

    def test_churn_trial_executes(self):
        trial = TrialSpec(
            scenario="churn-test",
            shape="random:60:1",
            k=1,
            l=2,
            seed=1,
            churn="growth",
            churn_steps=2,
            churn_batch=2,
        )
        result = execute_trial(trial)
        assert result.resolved == "dynamic"
        assert result.rounds > 0
        assert result.sections["edit_batches"] == 2
        assert result.sections["repairs_patch"] + result.sections["repairs_full"] == 2
        assert result.sections["repair_rounds"] < result.rounds

    def test_churn_trial_is_deterministic(self):
        trial = TrialSpec(
            scenario="churn-test", shape="random:50:1", k=1, l=2, seed=3,
            churn="mixed", churn_steps=2, churn_batch=2,
        )
        a, b = execute_trial(trial), execute_trial(trial)
        assert a.rounds == b.rounds
        assert a.forest_members == b.forest_members
        assert a.sections == b.sections

    def test_builtin_churn_campaigns_registered(self):
        assert "churn-small" in campaign_names()
        assert "churn" in campaign_names()
        campaign = get_campaign("churn-small")
        trials = campaign.trials()
        assert all(t.churn for t in trials)
        assert campaign.trial_count() == len(expand_trials(trials))
