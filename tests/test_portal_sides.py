"""Tests for portal_sides and its use as propagation input."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.directions import Axis
from repro.grid.structure import AmoebotStructure
from repro.portals import PortalSystem, portal_sides
from repro.sim.engine import CircuitEngine
from repro.spf.propagate import propagate_forest
from repro.spf.spt import shortest_path_tree
from repro.spf.types import Forest
from repro.verify import assert_valid_forest
from repro.workloads import hexagon, random_hole_free


class TestPortalSides:
    def test_sides_partition_with_portal_in_a(self):
        s = hexagon(3)
        system = PortalSystem(s, Axis.X)
        portal = max(system.portals, key=len)
        a, b = portal_sides(s, portal)
        assert a | b == set(s.nodes)
        assert not a & b
        assert set(portal.nodes) <= a

    def test_every_a_to_b_path_crosses_the_portal(self):
        s = random_hole_free(80, seed=600)
        system = PortalSystem(s, Axis.X)
        portal = max(system.portals, key=len)
        a, b = portal_sides(s, portal)
        # Remove the portal: no edge may join A \ P to B.
        portal_set = set(portal.nodes)
        for u in a - portal_set:
            for v in s.neighbors(u):
                assert v not in b or v in portal_set

    @pytest.mark.parametrize("axis", list(Axis))
    def test_works_for_every_axis(self, axis):
        s = hexagon(2)
        system = PortalSystem(s, axis)
        portal = max(system.portals, key=len)
        a, b = portal_sides(s, portal)
        assert a | b == set(s.nodes)

    def test_boundary_portal_one_empty_side(self):
        s = hexagon(2)
        system = PortalSystem(s, Axis.X)
        top = max(system.portals, key=lambda p: p.nodes[0].y)
        _a, b = portal_sides(s, top)
        assert b == set()


class TestPropagationViaPortalSides:
    @given(st.integers(min_value=0, max_value=2**14))
    @settings(max_examples=10, deadline=None)
    def test_propagation_property(self, seed):
        rng = random.Random(seed)
        s = random_hole_free(rng.randint(25, 90), seed=seed)
        system = PortalSystem(s, Axis.X)
        portal = max(system.portals, key=len)
        a, b = portal_sides(s, portal)
        if not b:
            return  # nothing to propagate into
        source = rng.choice(sorted(a))
        a_struct = AmoebotStructure(a, require_hole_free=False)
        engine = CircuitEngine(s)
        spt = shortest_path_tree(engine, a_struct, source, a)
        base = Forest({source}, spt.parent, set(a))
        full = propagate_forest(engine, s, list(portal.nodes), base)
        assert_valid_forest(s, [source], sorted(s.nodes), full.parent)
