"""Chaos injectors for the resilience layer (not a test module itself).

Fault injectors shared by the chaos suite (``tests/test_chaos.py``) and
the ``repro chaos`` smoke command:

* :func:`chaos_crash_trial` — a picklable :func:`execute_trial` wrapper
  that kills its *worker process* (``os._exit``, no cleanup, no
  exception — exactly what a segfault or OOM kill looks like to the
  pool) according to marker files under ``$REPRO_CHAOS_DIR``.  Arm it
  with :func:`arm_crash_once` (one crash, then healthy — exercises the
  retry path) or :func:`arm_poison` (crashes every time — exercises
  quarantine).  Markers travel via the environment + filesystem because
  worker processes cannot share Python state with the parent.

* :class:`FlakyStore` — a :class:`ResultStore` whose ``add`` fails
  and/or stalls on a schedule, for drills where persistence is the
  broken layer.

* :class:`GatedSession` — wraps a :class:`~repro.api.Session` so cold
  runs block on an event until the drill releases them: the
  deterministic way to keep daemon workers busy (backpressure, stalled
  streams, shutdown-with-queued-jobs) without timing races.  Deadline
  tokens are still honored while gated, so a gated job with a deadline
  times out on schedule.
"""

from __future__ import annotations

import os
import threading
import time
from pathlib import Path
from typing import Optional

from repro.experiments.runner import TrialResult, execute_trial
from repro.experiments.spec import TrialSpec
from repro.experiments.store import ResultStore

#: Environment variable pointing worker processes at the marker dir.
CHAOS_DIR_ENV = "REPRO_CHAOS_DIR"

#: Exit code of a chaos-killed worker (distinctive in pool diagnostics).
CRASH_EXIT_CODE = 23


def _marker(chaos_dir: str, prefix: str, trial: TrialSpec) -> Path:
    return Path(chaos_dir) / f"{prefix}-{trial.key()}"


def arm_crash_once(chaos_dir: os.PathLike, trial: TrialSpec) -> None:
    """Make ``trial``'s next execution kill its worker; later ones succeed."""
    _marker(str(chaos_dir), "once", trial).touch()


def arm_poison(chaos_dir: os.PathLike, trial: TrialSpec) -> None:
    """Make every execution of ``trial`` kill its worker (poison trial)."""
    _marker(str(chaos_dir), "poison", trial).touch()


def chaos_crash_trial(trial: TrialSpec) -> TrialResult:
    """:func:`execute_trial` with marker-driven worker-process death.

    Module-level (hence picklable) so it can replace ``trial_fn`` on a
    :class:`~repro.experiments.runner.CampaignRunner` running a real
    ``ProcessPoolExecutor``.
    """
    chaos_dir = os.environ.get(CHAOS_DIR_ENV)
    if chaos_dir:
        if _marker(chaos_dir, "poison", trial).exists():
            os._exit(CRASH_EXIT_CODE)
        once = _marker(chaos_dir, "once", trial)
        if once.exists():
            once.unlink()  # disarm first: the retry must find it gone
            os._exit(CRASH_EXIT_CODE)
    return execute_trial(trial)


class FlakyStore(ResultStore):
    """A result store whose writes fail (and/or stall) on a schedule.

    ``fail_every=N`` makes every Nth ``add`` raise ``OSError`` (0 = never
    fail); ``delay_s`` stalls each write first.  Reads are untouched —
    the point of the drill is that a broken *write* path must cost only
    cache entries, never results or worker threads.
    """

    def __init__(
        self,
        path: Optional[os.PathLike] = None,
        fail_every: int = 0,
        delay_s: float = 0.0,
    ):
        super().__init__(path)
        self.fail_every = fail_every
        self.delay_s = delay_s
        self.writes = 0
        self.injected_failures = 0
        self._flaky_lock = threading.Lock()

    def add(self, record) -> None:
        with self._flaky_lock:
            self.writes += 1
            write = self.writes
        if self.delay_s:
            time.sleep(self.delay_s)
        if self.fail_every and write % self.fail_every == 0:
            with self._flaky_lock:
                self.injected_failures += 1
            raise OSError(f"injected store fault (write #{write})")
        super().add(record)


class GatedSession:
    """Session proxy whose cold runs block until :meth:`release`.

    Everything except ``run`` delegates to the wrapped session, so a
    :class:`~repro.service.SolverService` built over it behaves
    normally (store, stats, caches).  ``run`` waits on the gate in
    small slices, checking the cancellation token each slice — gated
    jobs still honor deadlines.
    """

    def __init__(self, session):
        self._session = session
        self._gate = threading.Event()
        #: Set once a run has reached the gate (lets drills wait until
        #: a worker is provably occupied before submitting more).
        self.entered = threading.Event()

    def __getattr__(self, name):
        return getattr(self._session, name)

    def release(self) -> None:
        """Open the gate: all blocked and future runs proceed."""
        self._gate.set()

    def run(self, request, resume=True, on_event=None, token=None):
        self.entered.set()
        while not self._gate.wait(timeout=0.02):
            if token is not None:
                token.check()
        return self._session.run(
            request, resume=resume, on_event=on_event, token=token
        )
