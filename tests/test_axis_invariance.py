"""Axis-choice ablation (DESIGN.md §5, item 4).

The divide & conquer algorithm splits along one axis's portals; the
paper picks it arbitrarily.  Correctness must hold for all three axes,
and the round costs must stay in the same ballpark.
"""

import random

import pytest

from repro.grid.directions import Axis
from repro.sim.engine import CircuitEngine
from repro.spf.forest import shortest_path_forest
from repro.spf.propagate import propagate_forest
from repro.spf.line import line_forest
from repro.verify import assert_valid_forest
from repro.workloads import hexagon, random_hole_free, spread_nodes


class TestForestAxisChoice:
    @pytest.mark.parametrize("axis", list(Axis))
    def test_valid_on_every_axis(self, axis):
        s = random_hole_free(100, seed=92)
        sources = spread_nodes(s, 4)
        engine = CircuitEngine(s)
        forest = shortest_path_forest(engine, s, sources, axis=axis)
        assert_valid_forest(s, sources, sorted(s.nodes), forest.parent)

    def test_round_costs_comparable(self):
        s = random_hole_free(120, seed=93)
        sources = spread_nodes(s, 5)
        rounds = {}
        for axis in Axis:
            engine = CircuitEngine(s)
            shortest_path_forest(engine, s, sources, axis=axis)
            rounds[axis] = engine.rounds.total
        assert max(rounds.values()) <= 2 * min(rounds.values())

    @pytest.mark.parametrize("axis", list(Axis))
    def test_dendrite_every_axis(self, axis):
        s = random_hole_free(70, seed=94, compactness=0.05)
        rng = random.Random(0)
        sources = rng.sample(sorted(s.nodes), 3)
        engine = CircuitEngine(s)
        forest = shortest_path_forest(engine, s, sources, axis=axis)
        assert_valid_forest(s, sources, sorted(s.nodes), forest.parent)


class TestPropagationAxisChoice:
    @pytest.mark.parametrize("axis", list(Axis))
    def test_propagate_along_each_axis(self, axis):
        s = hexagon(3)
        # The portal through the center along the chosen axis.
        center = sorted(s.nodes)[len(s) // 2]
        from repro.portals.portals import PortalSystem

        system = PortalSystem(s, axis)
        portal = system.portal_of[center]
        # A = the components of X \ P that touch P from the "negative"
        # side; on a convex hexagon each side is one component, so we
        # use the complement-of-one-side helper from the checker tests.
        nodes = list(portal.nodes)
        coord = nodes[0].axis_coordinate(axis)
        members = {
            u for u in s.nodes if u.axis_coordinate(axis) >= coord
        }  # convex: coordinate sides are genuine sides
        engine = CircuitEngine(s)
        base_chain = nodes
        forest = line_forest(engine, base_chain, [base_chain[0]])

        # Extend the line forest over the whole A side first via
        # propagation restricted to A (members == portal for that call).
        from repro.grid.structure import AmoebotStructure

        a_struct = AmoebotStructure(members, require_hole_free=False)
        a_forest = propagate_forest(engine, a_struct, nodes, forest, axis=axis)
        full = propagate_forest(engine, s, nodes, a_forest, axis=axis)
        assert_valid_forest(s, [base_chain[0]], sorted(s.nodes), full.parent)
