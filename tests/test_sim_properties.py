"""Property-based tests of the circuit simulator's invariants."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import CircuitEngine
from repro.workloads import random_hole_free


def random_layout(engine, rng):
    """A random pin configuration: each amoebot splits its pins into
    one or two partition sets on channel 0."""
    structure = engine.structure
    layout = engine.new_layout()
    for u in structure:
        directions = structure.occupied_directions(u)
        rng.shuffle(directions)
        cut = rng.randint(0, len(directions))
        layout.assign(u, "a", [(d, 0) for d in directions[:cut]])
        layout.assign(u, "b", [(d, 0) for d in directions[cut:]])
    layout.freeze()
    return layout


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_circuits_partition_the_partition_sets(seed):
    rng = random.Random(seed)
    structure = random_hole_free(rng.randint(5, 60), seed=seed)
    engine = CircuitEngine(structure)
    layout = random_layout(engine, rng)
    circuits = layout.circuits()
    flattened = [set_id for circuit in circuits for set_id in circuit]
    assert len(flattened) == len(set(flattened))
    assert set(flattened) == layout.partition_sets()


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=20, deadline=None)
def test_beep_delivery_equals_component_membership(seed):
    rng = random.Random(seed)
    structure = random_hole_free(rng.randint(5, 50), seed=seed + 1)
    engine = CircuitEngine(structure)
    layout = random_layout(engine, rng)
    all_sets = sorted(layout.partition_sets())
    beepers = rng.sample(all_sets, max(1, len(all_sets) // 5))
    received = engine.run_round(layout, beepers)
    beeping_circuits = {layout.circuit_of(*b) for b in beepers}
    for set_id in all_sets:
        expected = layout.circuit_of(*set_id) in beeping_circuits
        assert received[set_id] == expected


@given(st.integers(min_value=0, max_value=2**16))
@settings(max_examples=15, deadline=None)
def test_connected_partition_sets_share_circuits_symmetrically(seed):
    rng = random.Random(seed)
    structure = random_hole_free(rng.randint(5, 40), seed=seed + 2)
    engine = CircuitEngine(structure)
    layout = random_layout(engine, rng)
    # Any two partition sets joined by an external link must be in the
    # same circuit; verified by walking all physical links.
    from repro.sim.pins import Pin

    component = layout.component_map()
    # The decoded pin-assignment view exists exactly for this kind of
    # white-box check; the layout itself stores integer pins.
    owners = layout.pin_assignments()
    for u in structure:
        for d in structure.occupied_directions(u):
            pin = Pin(u, d, 0)
            owner = owners.get(pin)
            mate_owner = owners.get(pin.mate())
            if owner and mate_owner:
                assert component[owner] == component[mate_owner]
