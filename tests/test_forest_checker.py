"""Tests for the forest property checker itself.

The checker is the backbone of every algorithm test, so it must detect
each kind of corruption reliably (and accept valid forests).
"""

import pytest

from repro.grid.coords import Node
from repro.grid.oracle import bfs_tree
from repro.verify import assert_valid_forest, check_forest
from repro.workloads import hexagon, line_structure


def valid_tree(structure, source):
    _dist, parent = bfs_tree(structure, source)
    return {u: p for u, p in parent.items() if p is not None}


class TestAcceptsValid:
    def test_bfs_tree_is_valid_sssp_forest(self):
        s = hexagon(2)
        source = Node(0, 0)
        parent = valid_tree(s, source)
        assert check_forest(s, [source], sorted(s.nodes), parent) == []

    def test_partial_forest_with_destination_leaves(self):
        s = line_structure(6)
        source = Node(0, 0)
        dest = Node(3, 0)
        parent = {Node(i, 0): Node(i - 1, 0) for i in range(1, 4)}
        assert check_forest(s, [source], [dest], parent) == []

    def test_source_equals_destination(self):
        s = line_structure(3)
        assert check_forest(s, [Node(0, 0)], [Node(0, 0)], {}) == []

    def test_two_source_forest(self):
        s = line_structure(7)
        parent = {
            Node(1, 0): Node(0, 0),
            Node(2, 0): Node(1, 0),
            Node(3, 0): Node(2, 0),
            Node(5, 0): Node(6, 0),
            Node(4, 0): Node(5, 0),
        }
        violations = check_forest(
            s, [Node(0, 0), Node(6, 0)], sorted(s.nodes), parent
        )
        assert violations == []


class TestDetectsCorruption:
    def test_cycle_detected(self):
        s = line_structure(4)
        parent = {
            Node(1, 0): Node(2, 0),
            Node(2, 0): Node(1, 0),
            Node(3, 0): Node(2, 0),
        }
        violations = check_forest(s, [Node(0, 0)], [Node(3, 0)], parent)
        assert any(v.prop == "prop1" for v in violations)

    def test_missing_destination_detected(self):
        s = line_structure(5)
        parent = {Node(1, 0): Node(0, 0)}
        violations = check_forest(s, [Node(0, 0)], [Node(4, 0)], parent)
        assert any(v.prop == "prop4" for v in violations)

    def test_non_shortest_path_detected(self):
        s = hexagon(2)
        source = Node(0, 0)
        parent = valid_tree(s, source)
        # Reroute one neighbor of the source through a distance-1 node,
        # making its path length 2 instead of 1.
        victim = Node(1, 0)
        parent[victim] = Node(0, 1)
        violations = check_forest(s, [source], sorted(s.nodes), parent)
        assert any(v.prop == "prop5" for v in violations)

    def test_wrong_source_assignment_detected(self):
        s = line_structure(9)
        a, b = Node(0, 0), Node(8, 0)
        # Node 1 is closest to a, but we attach it to b's tree.
        parent = {Node(i, 0): Node(i + 1, 0) for i in range(1, 8)}
        violations = check_forest(s, [a, b], [Node(1, 0)], parent)
        assert any("closest source" in v.message for v in violations)

    def test_non_sd_leaf_detected(self):
        s = line_structure(6)
        # Tree extends past the destination to a plain leaf.
        parent = {Node(i, 0): Node(i - 1, 0) for i in range(1, 6)}
        violations = check_forest(s, [Node(0, 0)], [Node(2, 0)], parent)
        assert any(v.prop == "prop2" for v in violations)

    def test_source_with_parent_detected(self):
        s = line_structure(3)
        parent = {Node(0, 0): Node(1, 0), Node(1, 0): Node(2, 0)}
        violations = check_forest(s, [Node(0, 0), Node(2, 0)], [Node(1, 0)], parent)
        assert any("source" in v.message for v in violations)

    def test_non_adjacent_parent_detected(self):
        s = line_structure(5)
        parent = {Node(4, 0): Node(0, 0)}
        violations = check_forest(s, [Node(0, 0)], [Node(4, 0)], parent)
        assert any(v.prop == "structure" for v in violations)

    def test_dangling_chain_detected(self):
        s = line_structure(5)
        # Node 3 points at node 2, which has no parent and is no source.
        parent = {Node(3, 0): Node(2, 0)}
        violations = check_forest(s, [Node(0, 0)], [Node(3, 0)], parent)
        assert any(v.prop == "prop1" for v in violations)


class TestAssertHelper:
    def test_raises_with_summary(self):
        s = line_structure(4)
        parent = {Node(3, 0): Node(0, 0)}  # non-adjacent
        with pytest.raises(AssertionError, match="violations"):
            assert_valid_forest(s, [Node(0, 0)], [Node(3, 0)], parent)

    def test_passes_silently(self):
        s = line_structure(3)
        parent = {Node(1, 0): Node(0, 0), Node(2, 0): Node(1, 0)}
        assert_valid_forest(s, [Node(0, 0)], [Node(2, 0)], parent)
