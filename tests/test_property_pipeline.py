"""Hypothesis-driven end-to-end properties of the full pipeline."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.oracle import bfs_distances
from repro.sim.engine import CircuitEngine
from repro.spf import solve_spf
from repro.verify import check_forest
from repro.workloads import (
    comb,
    hexagon,
    parallelogram,
    random_hole_free,
    staircase,
    triangle,
)


def structure_strategy():
    """A mixed strategy over all structure families."""
    return st.one_of(
        st.integers(min_value=1, max_value=4).map(hexagon),
        st.tuples(
            st.integers(min_value=2, max_value=10),
            st.integers(min_value=2, max_value=6),
        ).map(lambda wh: parallelogram(*wh)),
        st.integers(min_value=2, max_value=8).map(triangle),
        st.tuples(
            st.integers(min_value=2, max_value=4),
            st.integers(min_value=1, max_value=4),
        ).map(lambda tl: comb(*tl)),
        st.tuples(
            st.integers(min_value=2, max_value=4),
            st.integers(min_value=1, max_value=3),
        ).map(lambda sw: staircase(*sw)),
        st.tuples(
            st.integers(min_value=15, max_value=70),
            st.integers(min_value=0, max_value=2**12),
        ).map(lambda ns: random_hole_free(*ns)),
    )


class TestPipelineProperties:
    @given(structure_strategy(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_solution_always_valid(self, structure, seed):
        rng = random.Random(seed)
        nodes = sorted(structure.nodes)
        k = rng.randint(1, min(5, len(nodes)))
        l = rng.randint(1, min(6, len(nodes)))
        sources = rng.sample(nodes, k)
        destinations = rng.sample(nodes, l)
        solution = solve_spf(structure, sources, destinations)
        assert check_forest(structure, sources, destinations, solution.forest.parent) == []

    @given(structure_strategy(), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=12, deadline=None)
    def test_destination_distances_are_optimal(self, structure, seed):
        rng = random.Random(seed)
        nodes = sorted(structure.nodes)
        k = rng.randint(1, min(4, len(nodes)))
        sources = rng.sample(nodes, k)
        destinations = rng.sample(nodes, min(4, len(nodes)))
        solution = solve_spf(structure, sources, destinations)
        oracle = bfs_distances(structure, sources)
        for d in destinations:
            assert solution.forest.depth_of(d) == oracle[d]

    @given(st.integers(min_value=0, max_value=2**12))
    @settings(max_examples=6, deadline=None)
    def test_rounds_reported_consistently(self, seed):
        structure = random_hole_free(50, seed=seed)
        nodes = sorted(structure.nodes)
        engine = CircuitEngine(structure)
        before = engine.rounds.total
        solution = solve_spf(structure, nodes[:2], nodes[-2:], engine=engine)
        assert engine.rounds.total - before == solution.rounds
        assert solution.rounds > 0


class TestSectionAccounting:
    def test_forest_sections_present(self):
        structure = random_hole_free(80, seed=303)
        nodes = sorted(structure.nodes)
        engine = CircuitEngine(structure)
        from repro.spf.forest import shortest_path_forest

        shortest_path_forest(engine, structure, nodes[:4], section="f")
        breakdown = engine.rounds.breakdown()
        # Sections over-count parallel branches (each branch's rounds
        # are attributed even though the group charges only the max),
        # so the section total bounds the clock from above.
        assert breakdown.get("f", 0) >= engine.rounds.total
        assert any(key.startswith("f:") for key in breakdown)

    def test_spt_sections_present(self):
        structure = hexagon(3)
        nodes = sorted(structure.nodes)
        engine = CircuitEngine(structure)
        from repro.spf.spt import shortest_path_tree

        shortest_path_tree(engine, structure, nodes[0], nodes[-3:], section="t")
        breakdown = engine.rounds.breakdown()
        assert breakdown.get("t", 0) == engine.rounds.total
        assert breakdown.get("t:portal_rp", 0) > 0
