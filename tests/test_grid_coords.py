"""Unit and property tests for triangular grid coordinates."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.coords import Node, grid_distance, parallelogram_nodes
from repro.grid.directions import Axis, Direction

coords = st.integers(min_value=-50, max_value=50)
nodes = st.builds(Node, coords, coords)


class TestNodeBasics:
    def test_six_neighbors(self):
        u = Node(0, 0)
        assert len(u.neighbors()) == 6
        assert len(set(u.neighbors())) == 6

    def test_neighbor_direction_roundtrip(self):
        u = Node(3, -2)
        for d in Direction:
            v = u.neighbor(d)
            assert u.direction_to(v) == d

    def test_adjacency_symmetry(self):
        u = Node(0, 0)
        for v in u.neighbors():
            assert u.is_adjacent(v)
            assert v.is_adjacent(u)

    def test_not_adjacent_to_self(self):
        assert not Node(1, 1).is_adjacent(Node(1, 1))

    def test_ordering_and_hash(self):
        assert Node(0, 0) < Node(1, 0)
        assert len({Node(1, 2), Node(1, 2)}) == 1

    def test_iter_unpacking(self):
        x, y = Node(4, 5)
        assert (x, y) == (4, 5)

    def test_cartesian_y_spacing(self):
        _x0, y0 = Node(0, 0).cartesian()
        _x1, y1 = Node(0, 1).cartesian()
        assert y1 - y0 == pytest.approx(math.sqrt(3) / 2)


class TestAxisCoordinate:
    def test_x_lines_have_constant_y(self):
        u = Node(2, 3)
        v = u.neighbor(Direction.E)
        assert u.axis_coordinate(Axis.X) == v.axis_coordinate(Axis.X)

    def test_y_lines_have_constant_x(self):
        u = Node(2, 3)
        v = u.neighbor(Direction.NE)
        assert u.axis_coordinate(Axis.Y) == v.axis_coordinate(Axis.Y)

    def test_z_lines_have_constant_sum(self):
        u = Node(2, 3)
        v = u.neighbor(Direction.NW)
        assert u.axis_coordinate(Axis.Z) == v.axis_coordinate(Axis.Z)

    @given(nodes)
    def test_moving_along_axis_preserves_coordinate(self, u):
        for axis in Axis:
            for d in axis.directions:
                assert u.neighbor(d).axis_coordinate(axis) == u.axis_coordinate(axis)

    @given(nodes)
    def test_moving_off_axis_changes_coordinate(self, u):
        for axis in Axis:
            for d in Direction:
                if d.axis is axis:
                    continue
                assert u.neighbor(d).axis_coordinate(axis) != u.axis_coordinate(axis)


class TestGridDistance:
    def test_zero_distance(self):
        assert grid_distance(Node(3, 4), Node(3, 4)) == 0

    def test_neighbors_distance_one(self):
        u = Node(0, 0)
        for v in u.neighbors():
            assert grid_distance(u, v) == 1

    @given(nodes, nodes)
    def test_symmetry(self, u, v):
        assert grid_distance(u, v) == grid_distance(v, u)

    @given(nodes, nodes, nodes)
    @settings(max_examples=60)
    def test_triangle_inequality(self, u, v, w):
        assert grid_distance(u, w) <= grid_distance(u, v) + grid_distance(v, w)

    @given(nodes, nodes)
    def test_one_step_changes_distance_by_one(self, u, v):
        if u == v:
            return
        # Some neighbor of v is strictly closer to u.
        assert min(grid_distance(u, w) for w in v.neighbors()) == grid_distance(u, v) - 1


class TestParallelogramNodes:
    def test_count(self):
        assert len(parallelogram_nodes(4, 3)) == 12

    def test_invalid(self):
        with pytest.raises(ValueError):
            parallelogram_nodes(0, 3)
