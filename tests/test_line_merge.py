"""Tests for the line algorithm (§5.1) and merging algorithm (§5.2)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.coords import Node
from repro.sim.engine import CircuitEngine
from repro.spf.line import line_forest
from repro.spf.merge import forest_distances, merge_forests
from repro.spf.spt import shortest_path_tree
from repro.spf.types import Forest
from repro.verify import assert_valid_forest
from repro.workloads import line_structure, random_hole_free


def line_nodes(n):
    return [Node(i, 0) for i in range(n)]


class TestLineAlgorithm:
    def test_single_source(self):
        s = line_structure(10)
        nodes = line_nodes(10)
        engine = CircuitEngine(s)
        forest = line_forest(engine, nodes, [nodes[0]])
        assert_valid_forest(s, [nodes[0]], nodes, forest.parent)

    @given(
        st.integers(min_value=1, max_value=30),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_random_sources_property(self, n, data):
        nodes = line_nodes(n)
        k = data.draw(st.integers(min_value=1, max_value=n))
        source_positions = data.draw(
            st.sets(st.integers(min_value=0, max_value=n - 1), min_size=k, max_size=k)
        )
        sources = [nodes[i] for i in source_positions]
        s = line_structure(n)
        engine = CircuitEngine(s)
        forest = line_forest(engine, nodes, sources)
        assert_valid_forest(s, sources, nodes, forest.parent)

    def test_parent_points_to_closer_source(self):
        nodes = line_nodes(9)
        s = line_structure(9)
        engine = CircuitEngine(s)
        forest = line_forest(engine, nodes, [nodes[0], nodes[8]])
        assert forest.parent[nodes[1]] == nodes[0]
        assert forest.parent[nodes[7]] == nodes[8]

    def test_rounds_logarithmic(self):
        for n in (16, 64, 256):
            nodes = line_nodes(n)
            s = line_structure(n)
            engine = CircuitEngine(s)
            line_forest(engine, nodes, [nodes[0], nodes[n // 2]])
            assert engine.rounds.total <= 2 * (n.bit_length() + 2)

    def test_on_y_axis_chain(self):
        # The algorithm must work on any chain, not just x-rows.
        from repro.grid.structure import AmoebotStructure

        chain = [Node(0, i) for i in range(8)]
        s = AmoebotStructure(chain)
        engine = CircuitEngine(s)
        forest = line_forest(engine, chain, [chain[3]])
        assert_valid_forest(s, [chain[3]], chain, forest.parent)

    def test_sources_not_on_chain_rejected(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        with pytest.raises(ValueError):
            line_forest(engine, line_nodes(4), [Node(9, 9)])

    def test_non_adjacent_chain_rejected(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        with pytest.raises(ValueError):
            line_forest(engine, [Node(0, 0), Node(2, 0)], [Node(0, 0)])

    def test_empty_sources_rejected(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        with pytest.raises(ValueError):
            line_forest(engine, line_nodes(4), [])


class TestForestDistances:
    def test_depths_equal_bfs_distances(self, medium_hexagon):
        nodes = sorted(medium_hexagon.nodes)
        engine = CircuitEngine(medium_hexagon)
        spt = shortest_path_tree(engine, medium_hexagon, nodes[0], nodes)
        forest = Forest({nodes[0]}, spt.parent, set(spt.members))
        dist = forest_distances(engine, forest)
        from repro.grid.oracle import bfs_distances

        assert dist == bfs_distances(medium_hexagon, [nodes[0]])


class TestMergingAlgorithm:
    def test_merge_two_ssps(self, medium_hexagon):
        nodes = sorted(medium_hexagon.nodes)
        a, b = nodes[0], nodes[-1]
        engine = CircuitEngine(medium_hexagon)
        fa = _sssp_forest(engine, medium_hexagon, a)
        fb = _sssp_forest(engine, medium_hexagon, b)
        merged = merge_forests(engine, fa, fb)
        assert_valid_forest(medium_hexagon, [a, b], nodes, merged.parent)

    def test_merge_is_iterable_to_many_sources(self):
        s = random_hole_free(100, seed=13)
        nodes = sorted(s.nodes)
        rng = random.Random(1)
        sources = rng.sample(nodes, 4)
        engine = CircuitEngine(s)
        merged = _sssp_forest(engine, s, sources[0])
        for src in sources[1:]:
            merged = merge_forests(engine, merged, _sssp_forest(engine, s, src))
        assert_valid_forest(s, sources, nodes, merged.parent)

    def test_mismatched_members_rejected(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        f1 = line_forest(engine, line_nodes(4), [Node(0, 0)])
        f2 = line_forest(engine, line_nodes(3), [Node(0, 0)])
        with pytest.raises(ValueError):
            merge_forests(engine, f1, f2)

    def test_tie_prefers_first_forest(self):
        s = line_structure(5)
        nodes = line_nodes(5)
        engine = CircuitEngine(s)
        f1 = line_forest(engine, nodes, [nodes[0]])
        f2 = line_forest(engine, nodes, [nodes[4]])
        merged = merge_forests(engine, f1, f2)
        # The middle node is equidistant; forest 1's parent must win.
        assert merged.parent[nodes[2]] == nodes[1]

    def test_merged_sources_are_union(self):
        s = line_structure(6)
        nodes = line_nodes(6)
        engine = CircuitEngine(s)
        f1 = line_forest(engine, nodes, [nodes[0]])
        f2 = line_forest(engine, nodes, [nodes[5]])
        merged = merge_forests(engine, f1, f2)
        assert merged.sources == {nodes[0], nodes[5]}


def _sssp_forest(engine, structure, source):
    spt = shortest_path_tree(engine, structure, source, structure.nodes)
    return Forest({source}, spt.parent, set(spt.members))
