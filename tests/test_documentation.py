"""Documentation quality gate: every public item carries a docstring."""

import importlib
import inspect
import pkgutil

import pytest

import repro


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if "__main__" in info.name:
            continue
        modules.append(importlib.import_module(info.name))
    return modules


MODULES = _public_modules()


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), (
        f"module {module.__name__} lacks a docstring"
    )


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_public_callables_documented(module):
    undocumented = []
    for name, obj in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isfunction(obj) or inspect.isclass(obj)):
            continue
        if getattr(obj, "__module__", None) != module.__name__:
            continue  # re-exports are documented at their home
        if not (obj.__doc__ and obj.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(obj):
            for attr_name, attr in vars(obj).items():
                if attr_name.startswith("_"):
                    continue
                if inspect.isfunction(attr) and not (
                    attr.__doc__ and attr.__doc__.strip()
                ):
                    undocumented.append(f"{name}.{attr_name}")
    assert not undocumented, (
        f"{module.__name__}: undocumented public items: {undocumented}"
    )


def test_package_exports_resolve():
    for name in repro.__all__:
        assert hasattr(repro, name), f"__all__ export {name} missing"
