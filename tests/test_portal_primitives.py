"""Tests for the portal-level primitives (Section 3.5)."""

import math
import random

import pytest

from repro.grid.coords import Node
from repro.grid.directions import Axis
from repro.portals.portals import PortalSystem
from repro.portals.primitives import (
    PortalScope,
    portal_centroid_decomposition,
    portal_centroids,
    portal_elect,
    portal_root_and_prune,
)
from repro.sim.engine import CircuitEngine
from repro.workloads import comb, random_hole_free


def make_system(seed=9, n=150):
    s = random_hole_free(n, seed=seed)
    return s, PortalSystem(s, Axis.X)


def oracle_portal_vq(system, root, q):
    parent = system.parent_relation(root)
    children = {}
    for p, par in parent.items():
        if par is not None:
            children.setdefault(par, []).append(p)

    def subtree(p):
        out = {p}
        for c in children.get(p, []):
            out |= subtree(c)
        return out

    return {p for p in system.portals if subtree(p) & q}


class TestPortalRootPrune:
    def test_matches_oracle(self):
        s, system = make_system()
        rng = random.Random(4)
        q_nodes = rng.sample(sorted(s.nodes), 10)
        q = system.portals_containing(q_nodes)
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        result = portal_root_and_prune(engine, system, root, q)
        assert result.in_vq == oracle_portal_vq(system, root, q)
        oracle_parent = system.parent_relation(root)
        for p, par in result.parent.items():
            assert oracle_parent[p] == par

    def test_q_size(self):
        s, system = make_system()
        q = set(system.portals[:5])
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        assert portal_root_and_prune(engine, system, root, q).q_size == 5

    def test_augmentation_on_comb(self):
        # A comb's x-portal tree is a star around the spine: choosing the
        # teeth tips as Q makes the spine the augmentation portal.
        s = comb(4, 3, spacing=2)
        system = PortalSystem(s, Axis.X)
        tips = [u for u in s if u.y == 3]
        q = system.portals_containing(tips)
        root = system.portal_of[Node(0, 0)]
        engine = CircuitEngine(s)
        result = portal_root_and_prune(
            engine, system, root, q, compute_augmentation=True
        )
        spine = system.portal_of[Node(0, 0)]
        # Teeth rows (y in 1..3) each form one portal per tooth; the
        # spine joins all teeth, so with 4 teeth in Q its T_Q degree is
        # >= 4 unless the spine is the root's own portal... it is, and
        # roots of degree >= 3 are still in A_Q.
        assert result.degree_q[spine] >= 3
        assert spine in result.augmentation

    def test_rounds_logarithmic_in_q(self):
        s, system = make_system(n=250, seed=2)
        root = system.portal_of[s.westernmost()]
        q = set(system.portals[:3])
        engine = CircuitEngine(s)
        portal_root_and_prune(engine, system, root, q, section="prp")
        assert engine.rounds.section_total("prp") <= 40

    def test_scope_restriction(self):
        s, system = make_system()
        root = system.portal_of[s.westernmost()]
        scope = PortalScope(system)
        assert set(scope.portals) == set(system.portals)
        with pytest.raises(ValueError):
            portal_root_and_prune(
                engine=CircuitEngine(s),
                system=system,
                root_portal=root,
                q_portals=[Portal_like_outsider()],
            )


def Portal_like_outsider():
    from repro.portals.portals import Portal

    return Portal(Axis.X, (Node(99, 99),))


class TestPortalElection:
    def test_winner_in_q(self):
        s, system = make_system()
        rng = random.Random(5)
        q = system.portals_containing(rng.sample(sorted(s.nodes), 6))
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        assert portal_elect(engine, system, root, q) in q

    def test_constant_rounds(self):
        s, system = make_system()
        q = set(system.portals[:4])
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        portal_elect(engine, system, root, q, section="pe")
        assert engine.rounds.section_total("pe") <= 3  # Lemma 35: O(1)

    def test_empty_rejected(self):
        s, system = make_system()
        root = system.portal_of[s.westernmost()]
        with pytest.raises(ValueError):
            portal_elect(CircuitEngine(s), system, root, [])


def brute_force_portal_centroids(system, q, scope_portals=None):
    portals = scope_portals or set(system.portals)
    adjacency = {
        p: [x for x in system.portal_adjacency[p] if x in portals] for p in portals
    }
    result = set()
    for p in q:
        worst = 0
        for start in adjacency[p]:
            seen = {start}
            stack = [start]
            while stack:
                a = stack.pop()
                for b in adjacency[a]:
                    if b not in seen and b != p:
                        seen.add(b)
                        stack.append(b)
            worst = max(worst, len(seen & q))
        if 2 * worst <= len(q):
            result.add(p)
    return result


class TestPortalCentroids:
    @pytest.mark.parametrize("seed", range(4))
    def test_matches_brute_force(self, seed):
        s, system = make_system(seed=seed + 20)
        rng = random.Random(seed)
        q = system.portals_containing(rng.sample(sorted(s.nodes), 8))
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        got = portal_centroids(engine, system, root, q)
        assert got == brute_force_portal_centroids(system, q)


class TestPortalDecomposition:
    def test_members_and_height(self):
        s, system = make_system()
        rng = random.Random(6)
        q = system.portals_containing(rng.sample(sorted(s.nodes), 9))
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        rp = portal_root_and_prune(
            engine, system, root, q, compute_augmentation=True
        )
        q_prime = q | rp.augmentation
        tree = portal_centroid_decomposition(engine, system, root, q_prime)
        assert tree.members() == q_prime
        assert tree.height <= math.ceil(math.log2(len(q_prime))) + 1

    def test_deterministic(self):
        s, system = make_system()
        q = set(system.portals[:6])
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        rp = portal_root_and_prune(engine, system, root, q, compute_augmentation=True)
        q_prime = q | rp.augmentation
        a = portal_centroid_decomposition(engine, system, root, q_prime)
        b = portal_centroid_decomposition(engine, system, root, q_prime)
        assert a.levels == b.levels

    def test_depths_consistent(self):
        s, system = make_system(seed=30)
        q = set(system.portals[::3])
        root = system.portal_of[s.westernmost()]
        engine = CircuitEngine(s)
        rp = portal_root_and_prune(engine, system, root, q, compute_augmentation=True)
        q_prime = q | rp.augmentation
        tree = portal_centroid_decomposition(engine, system, root, q_prime)
        for portal, parent in tree.parent.items():
            if parent is not None:
                assert tree.depth_of(parent) < tree.depth_of(portal)
