"""Tests for the divide & conquer forest algorithm (§5.4, Theorem 56)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.coords import Node
from repro.sim.engine import CircuitEngine
from repro.spf.forest import shortest_path_forest
from repro.verify import assert_valid_forest
from repro.workloads import (
    comb,
    hexagon,
    lollipop,
    parallelogram,
    random_hole_free,
    staircase,
    triangle,
)

SHAPES = {
    "hexagon": hexagon(3),
    "parallelogram": parallelogram(8, 4),
    "triangle": triangle(7),
    "comb": comb(4, 3),
    "staircase": staircase(4, 2),
    "lollipop": lollipop(2, 8),
}


class TestCorrectness:
    @pytest.mark.parametrize("name", sorted(SHAPES))
    @pytest.mark.parametrize("k", [2, 4])
    def test_shapes(self, name, k):
        structure = SHAPES[name]
        rng = random.Random(hash(name) % 1000 + k)
        nodes = sorted(structure.nodes)
        sources = rng.sample(nodes, k)
        engine = CircuitEngine(structure)
        forest = shortest_path_forest(engine, structure, sources)
        assert forest.members == set(nodes)
        assert_valid_forest(structure, sources, nodes, forest.parent)

    @given(st.integers(min_value=0, max_value=2**16), st.integers(min_value=2, max_value=9))
    @settings(max_examples=10, deadline=None)
    def test_random_structures_property(self, seed, k):
        rng = random.Random(seed)
        structure = random_hole_free(rng.randint(30, 110), seed=seed)
        nodes = sorted(structure.nodes)
        sources = rng.sample(nodes, min(k, len(nodes)))
        engine = CircuitEngine(structure)
        forest = shortest_path_forest(engine, structure, sources)
        assert_valid_forest(structure, sources, nodes, forest.parent)

    def test_with_destination_pruning(self):
        structure = random_hole_free(120, seed=77)
        rng = random.Random(0)
        nodes = sorted(structure.nodes)
        sources = rng.sample(nodes, 4)
        dests = rng.sample([u for u in nodes if u not in sources], 8)
        engine = CircuitEngine(structure)
        forest = shortest_path_forest(engine, structure, sources, dests)
        assert_valid_forest(structure, sources, dests, forest.parent)
        # Pruning must have removed something on a 120-node structure
        # with only 8 destinations.
        assert len(forest.members) < len(nodes)

    def test_sources_on_same_portal(self):
        structure = parallelogram(10, 4)
        row = [Node(i, 1) for i in range(10)]
        sources = [row[1], row[5], row[8]]
        engine = CircuitEngine(structure)
        forest = shortest_path_forest(engine, structure, sources)
        assert_valid_forest(structure, sources, sorted(structure.nodes), forest.parent)

    def test_adjacent_sources(self):
        structure = hexagon(3)
        nodes = sorted(structure.nodes)
        sources = [nodes[0], nodes[1]]
        engine = CircuitEngine(structure)
        forest = shortest_path_forest(engine, structure, sources)
        assert_valid_forest(structure, sources, nodes, forest.parent)

    def test_every_node_a_source(self):
        structure = hexagon(2)
        nodes = sorted(structure.nodes)
        engine = CircuitEngine(structure)
        forest = shortest_path_forest(engine, structure, nodes)
        assert forest.parent == {}
        assert forest.members == set(nodes)

    def test_spread_sources(self):
        from repro.workloads import spread_nodes

        structure = random_hole_free(150, seed=88)
        sources = spread_nodes(structure, 6)
        engine = CircuitEngine(structure)
        forest = shortest_path_forest(engine, structure, sources)
        assert_valid_forest(structure, sources, sorted(structure.nodes), forest.parent)

    def test_empty_sources_rejected(self):
        structure = hexagon(1)
        with pytest.raises(ValueError):
            shortest_path_forest(CircuitEngine(structure), structure, [])

    def test_foreign_source_rejected(self):
        structure = hexagon(1)
        with pytest.raises(ValueError):
            shortest_path_forest(
                CircuitEngine(structure), structure, [Node(50, 50)]
            )


class TestRoundComplexity:
    def test_polylog_growth_in_k(self):
        from repro.workloads import spread_nodes

        structure = random_hole_free(300, seed=5)
        rounds = {}
        for k in (2, 4, 8, 16):
            sources = spread_nodes(structure, k)
            engine = CircuitEngine(structure)
            shortest_path_forest(engine, structure, sources)
            rounds[k] = engine.rounds.total
        # Tripling the budget from k=2 to k=16 is acceptable for a
        # log n log^2 k algorithm; linear growth (8x) is not.
        assert rounds[16] <= 5 * rounds[2]

    def test_beats_diameter_for_long_structures(self):
        from repro.grid.oracle import structure_diameter

        structure = staircase(12, 4)
        nodes = sorted(structure.nodes)
        sources = [nodes[0], nodes[-1]]
        engine = CircuitEngine(structure)
        shortest_path_forest(engine, structure, sources)
        diam = structure_diameter(structure)
        # For stretched structures the circuit algorithm must finish in
        # rounds comparable to polylog factors, not the diameter.  With
        # n ~ 100 the crossover is not yet extreme; we check it at least
        # does not blow past a few multiples of the diameter and rely on
        # the benches to show the asymptotic gap.
        assert engine.rounds.total <= 8 * diam
