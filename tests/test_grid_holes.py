"""Tests for hole detection."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.grid.coords import Node
from repro.grid.holes import find_holes, has_holes
from repro.workloads import hexagon, parallelogram
from repro.workloads.random_structures import random_hole_free


class TestBasicHoles:
    def test_solid_shapes_hole_free(self):
        assert not has_holes(hexagon(3).nodes)
        assert not has_holes(parallelogram(6, 4).nodes)

    def test_single_node(self):
        assert not has_holes([Node(0, 0)])

    def test_empty(self):
        assert not has_holes([])
        assert find_holes([]) == []

    def test_ring_has_one_hole(self):
        ring = [n for n in hexagon(1).nodes if n != Node(0, 0)]
        holes = find_holes(ring)
        assert len(holes) == 1
        assert holes[0] == {Node(0, 0)}

    def test_bigger_ring_hole_contains_center(self):
        ring = [n for n in hexagon(2).nodes if n not in hexagon(1).nodes]
        holes = find_holes(ring)
        assert len(holes) == 1
        assert holes[0] == set(hexagon(1).nodes)

    def test_two_separate_holes(self):
        nodes = set(parallelogram(9, 5).nodes)
        nodes.discard(Node(2, 2))
        nodes.discard(Node(6, 2))
        holes = find_holes(nodes)
        assert len(holes) == 2

    def test_bay_is_not_a_hole(self):
        # Removing a boundary node leaves the complement connected.
        nodes = set(parallelogram(5, 3).nodes)
        nodes.discard(Node(2, 0))
        assert not has_holes(nodes)


class TestRandomGrowth:
    @given(st.integers(min_value=1, max_value=120), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=25, deadline=None)
    def test_random_growth_is_hole_free(self, n, seed):
        s = random_hole_free(n, seed=seed)
        assert len(s) == n
        assert not has_holes(s.nodes)

    @given(st.integers(min_value=1, max_value=80), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=15, deadline=None)
    def test_dendritic_growth_is_hole_free(self, n, seed):
        s = random_hole_free(n, seed=seed, compactness=0.05)
        assert not has_holes(s.nodes)
