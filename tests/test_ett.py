"""Tests for the Euler tour technique (Section 3.1, Lemmas 14-17)."""

import random

import pytest

from repro.ett.election import ElectionRequest, elect_first_marked, elect_first_marked_many
from repro.ett.technique import ETTOp, mark_one_outgoing_edge, run_ett, run_etts_parallel
from repro.ett.tour import adjacency_from_edges, build_euler_tour
from repro.grid.coords import Node
from repro.sim.engine import CircuitEngine
from repro.workloads import random_hole_free
from tests.conftest import bfs_tree_adjacency


def sample_tree(structure, root):
    adjacency, parent = bfs_tree_adjacency(structure, root)
    return adjacency, parent


def subtree_members(parent, root):
    children = {}
    for c, p in parent.items():
        children.setdefault(p, []).append(c)

    def collect(u):
        out = {u}
        for c in children.get(u, []):
            out |= collect(c)
        return out

    return collect


class TestTourConstruction:
    def test_tour_length(self, medium_hexagon):
        root = medium_hexagon.westernmost()
        adjacency, _ = sample_tree(medium_hexagon, root)
        tour = build_euler_tour(root, adjacency)
        assert tour.length == 2 * (len(medium_hexagon) - 1)

    def test_every_directed_edge_once(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        assert len(set(tour.edges)) == tour.length

    def test_consecutive_edges_share_node(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        for (u1, v1), (u2, _v2) in zip(tour.edges, tour.edges[1:]):
            assert v1 == u2

    def test_tour_starts_and_ends_at_root(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        assert tour.edges[0][0] == root
        assert tour.edges[-1][1] == root
        assert tour.units[-1][0] == root

    def test_units_per_amoebot_equal_degree(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        from collections import Counter

        count = Counter(node for node, _uid in tour.units)
        for u, neighbors in adjacency.items():
            expected = len(neighbors) + (1 if u == root else 0)
            assert count[u] == expected

    def test_single_node_tour(self):
        tour = build_euler_tour(Node(0, 0), {Node(0, 0): []})
        assert tour.length == 0
        assert tour.units == [(Node(0, 0), "0")]

    def test_non_tree_rejected(self):
        # A triangle of edges is not a tree.
        a, b, c = Node(0, 0), Node(1, 0), Node(0, 1)
        adjacency = adjacency_from_edges([(a, b), (b, c), (c, a)])
        with pytest.raises(ValueError):
            build_euler_tour(a, adjacency)

    def test_root_not_in_tree_rejected(self):
        adjacency = adjacency_from_edges([(Node(0, 0), Node(1, 0))])
        with pytest.raises(ValueError):
            build_euler_tour(Node(5, 5), adjacency)

    def test_adjacency_sorted_ccw(self):
        center = Node(0, 0)
        edges = [(center, v) for v in center.neighbors()]
        adjacency = adjacency_from_edges(edges)
        dirs = [int(center.direction_to(v)) for v in adjacency[center]]
        assert dirs == sorted(dirs)


class TestETTPrefixSums:
    def test_total_equals_marked_count(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        rng = random.Random(1)
        q = rng.sample(sorted(random_structure.nodes), 9)
        marked = mark_one_outgoing_edge(tour, q)
        engine = CircuitEngine(random_structure)
        result, _stats = run_ett(engine, tour, marked)
        assert result.total == 9

    def test_lemma17_subtree_counts(self, random_structure):
        root = random_structure.westernmost()
        adjacency, parent = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        rng = random.Random(2)
        q = set(rng.sample(sorted(random_structure.nodes), 12))
        marked = mark_one_outgoing_edge(tour, q)
        engine = CircuitEngine(random_structure)
        result, _stats = run_ett(engine, tour, marked)
        collect = subtree_members(parent, root)
        for child, par in parent.items():
            assert result.subtree_count(child, par) == len(collect(child) & q)

    def test_lemma17_sign_properties(self, random_structure):
        root = random_structure.westernmost()
        adjacency, parent = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        q = sorted(random_structure.nodes)[:7]
        marked = mark_one_outgoing_edge(tour, q)
        engine = CircuitEngine(random_structure)
        result, _stats = run_ett(engine, tour, marked)
        for child, par in parent.items():
            assert result.diff(child, par) >= 0  # property 2
            assert result.diff(par, child) <= 0  # property 4

    def test_rounds_logarithmic_in_weight(self):
        s = random_hole_free(300, seed=4)
        root = s.westernmost()
        adjacency, _ = sample_tree(s, root)
        tour = build_euler_tour(root, adjacency)
        engine = CircuitEngine(s)
        marked = mark_one_outgoing_edge(tour, [root])
        _result, stats = run_ett(engine, tour, marked)
        assert stats.iterations <= 3  # log(1) + termination slack

    def test_empty_weight_function(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = sample_tree(small_hexagon, root)
        tour = build_euler_tour(root, adjacency)
        engine = CircuitEngine(small_hexagon)
        result, _stats = run_ett(engine, tour, [])
        assert result.total == 0
        assert all(v == 0 for v in result.prefix.values())

    def test_marked_edge_off_tour_rejected(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = sample_tree(small_hexagon, root)
        tour = build_euler_tour(root, adjacency)
        with pytest.raises(ValueError):
            ETTOp(tour, [(Node(40, 40), Node(41, 40))])

    def test_parallel_etts_on_disjoint_trees(self):
        left = [Node(i, 0) for i in range(5)]
        right = [Node(i, 0) for i in range(7, 12)]
        from repro.grid.structure import AmoebotStructure

        s = AmoebotStructure(left + [Node(i, 0) for i in range(5, 7)] + right)
        tours = []
        ops = []
        for chain in (left, right):
            edges = list(zip(chain, chain[1:]))
            adjacency = adjacency_from_edges(edges)
            tour = build_euler_tour(chain[0], adjacency)
            tours.append(tour)
            ops.append(ETTOp(tour, mark_one_outgoing_edge(tour, chain[:2])))
        engine = CircuitEngine(s)
        results, stats = run_etts_parallel(engine, ops)
        assert [r.total for r in results] == [2, 2]
        assert stats.rounds == 2 * stats.iterations


class TestElection:
    def test_winner_is_candidate(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        rng = random.Random(3)
        q = rng.sample(sorted(random_structure.nodes), 6)
        marked = mark_one_outgoing_edge(tour, q)
        engine = CircuitEngine(random_structure)
        winner = elect_first_marked(engine, tour, marked)
        assert winner in set(q)
        assert engine.rounds.total == 1  # Lemma 21: O(1) rounds

    def test_single_candidate_wins(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = sample_tree(small_hexagon, root)
        tour = build_euler_tour(root, adjacency)
        target = sorted(small_hexagon.nodes)[-1]
        marked = mark_one_outgoing_edge(tour, [target])
        engine = CircuitEngine(small_hexagon)
        assert elect_first_marked(engine, tour, marked) == target

    def test_deterministic(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = sample_tree(random_structure, root)
        tour = build_euler_tour(root, adjacency)
        q = sorted(random_structure.nodes)[:5]
        marked = mark_one_outgoing_edge(tour, q)
        winners = set()
        for _ in range(3):
            engine = CircuitEngine(random_structure)
            winners.add(elect_first_marked(engine, tour, marked))
        assert len(winners) == 1

    def test_empty_candidates_rejected(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = sample_tree(small_hexagon, root)
        tour = build_euler_tour(root, adjacency)
        with pytest.raises(ValueError):
            elect_first_marked(CircuitEngine(small_hexagon), tour, [])

    def test_batched_elections_single_round(self):
        left = [Node(i, 0) for i in range(4)]
        right = [Node(i, 0) for i in range(6, 10)]
        from repro.grid.structure import AmoebotStructure

        s = AmoebotStructure([Node(i, 0) for i in range(10)])
        requests = []
        for chain in (left, right):
            edges = list(zip(chain, chain[1:]))
            tour = build_euler_tour(chain[0], adjacency_from_edges(edges))
            requests.append(
                ElectionRequest(tour, mark_one_outgoing_edge(tour, chain[1:3]))
            )
        engine = CircuitEngine(s)
        winners = elect_first_marked_many(engine, requests)
        assert engine.rounds.total == 1
        assert winners[0] in left[1:3]
        assert winners[1] in right[1:3]
