"""End-to-end integration tests across the whole stack.

These exercise complete scenarios the paper motivates — SPSP/SSSP
special cases, agreement between the two algorithms, between strict
executions and oracles, and failure injection at the simulator level.
"""


import pytest

from repro.grid.oracle import bfs_distances, structure_diameter
from repro.sim.engine import CircuitEngine
from repro.baselines import bfs_wave_forest, sequential_merge_forest
from repro.spf import solve_spf
from repro.spf.forest import shortest_path_forest
from repro.spf.spt import shortest_path_tree
from repro.verify import check_forest
from repro.workloads import (
    hexagon,
    random_hole_free,
    sample_sources_destinations,
    spread_nodes,
    staircase,
)


class TestSpecialCases:
    def test_spsp_path_is_shortest(self):
        s = random_hole_free(150, seed=31)
        nodes = sorted(s.nodes)
        engine = CircuitEngine(s)
        result = shortest_path_tree(engine, s, nodes[0], [nodes[-1]])
        path = result.path_from(nodes[-1])
        assert len(path) - 1 == bfs_distances(s, [nodes[0]])[nodes[-1]]

    def test_sssp_depths_equal_bfs(self):
        s = random_hole_free(120, seed=32)
        nodes = sorted(s.nodes)
        engine = CircuitEngine(s)
        result = shortest_path_tree(engine, s, nodes[0], nodes)
        from repro.spf.types import Forest

        forest = Forest({nodes[0]}, result.parent, set(result.members))
        oracle = bfs_distances(s, [nodes[0]])
        for u in nodes:
            assert forest.depth_of(u) == oracle[u]


class TestAlgorithmsAgree:
    @pytest.mark.parametrize("seed", range(4))
    def test_divide_conquer_matches_sequential_baseline(self, seed):
        s = random_hole_free(90, seed=40 + seed)
        sources = spread_nodes(s, 4)
        fast = shortest_path_forest(CircuitEngine(s), s, sources)
        slow = sequential_merge_forest(CircuitEngine(s), s, sources)
        oracle = bfs_distances(s, sources)
        for u in s:
            assert fast.depth_of(u) == oracle[u]
            assert slow.depth_of(u) == oracle[u]

    def test_wave_and_circuit_same_distances(self):
        s = random_hole_free(80, seed=45)
        sources = spread_nodes(s, 3)
        circuit = shortest_path_forest(CircuitEngine(s), s, sources)
        wave = bfs_wave_forest(CircuitEngine(s), s, sources)
        for u in s:
            assert circuit.depth_of(u) == wave.depth_of(u)


class TestRoundSeparation:
    def test_circuit_beats_wave_on_stretched_structures(self):
        s = staircase(10, 5)
        nodes = sorted(s.nodes)
        source, dest = nodes[0], max(nodes, key=lambda u: u.y + u.x)
        wave_engine = CircuitEngine(s)
        bfs_wave_forest(wave_engine, s, [source], destinations=[dest])
        spt_engine = CircuitEngine(s)
        shortest_path_tree(spt_engine, s, source, [dest])
        assert spt_engine.rounds.total < wave_engine.rounds.total

    def test_spsp_rounds_do_not_track_diameter(self):
        small = staircase(4, 4)
        large = staircase(16, 4)
        results = {}
        for name, s in (("small", small), ("large", large)):
            nodes = sorted(s.nodes)
            engine = CircuitEngine(s)
            shortest_path_tree(engine, s, nodes[0], [max(nodes, key=lambda u: u.x + u.y)])
            results[name] = (engine.rounds.total, structure_diameter(s))
        small_rounds, small_diam = results["small"]
        large_rounds, large_diam = results["large"]
        assert large_diam >= 3 * small_diam
        assert large_rounds <= small_rounds + 12


class TestSampledWorkloads:
    @pytest.mark.parametrize("seed", range(3))
    def test_full_pipeline_on_sampled_instances(self, seed):
        s = random_hole_free(100, seed=60 + seed)
        sources, dests = sample_sources_destinations(s, 3, 7, seed=seed)
        solution = solve_spf(s, sources, dests)
        assert check_forest(s, sources, dests, solution.forest.parent) == []

    def test_repeated_solves_are_deterministic(self):
        s = random_hole_free(80, seed=70)
        sources, dests = sample_sources_destinations(s, 3, 5, seed=1)
        a = solve_spf(s, sources, dests)
        b = solve_spf(s, sources, dests)
        assert a.forest.parent == b.forest.parent
        assert a.rounds == b.rounds


class TestFailureInjection:
    def test_corrupted_forest_is_caught(self):
        # End-to-end sanity of the safety net: sabotage a correct forest
        # and confirm the checker reports it.
        s = hexagon(2)
        nodes = sorted(s.nodes)
        solution = solve_spf(s, [nodes[0]], nodes)
        parent = dict(solution.forest.parent)
        victim = next(u for u, p in parent.items() if s.degree(u) == 6)
        neighbors = [v for v in s.neighbors(victim) if v != parent[victim]]
        parent[victim] = neighbors[0]
        violations = check_forest(s, [nodes[0]], nodes, parent)
        # Either the rewired edge lengthened a path or broke nothing —
        # but for an interior node of a hexagon SSSP tree at least one
        # neighbor rewiring must be caught; assert the checker flags a
        # wrong depth when distances disagree.
        oracle = bfs_distances(s, [nodes[0]])
        expects_violation = oracle[neighbors[0]] + 1 != oracle[victim]
        assert bool(violations) == expects_violation

    def test_channel_starvation_raises(self):
        # With c = 1 the PASC wiring cannot be built: the simulator must
        # fail loudly, not silently mis-wire.
        from repro.pasc.chain import PascChainRun, chain_links_for_nodes
        from repro.pasc.runner import run_pasc
        from repro.sim.errors import PinConfigurationError
        from repro.workloads import line_structure

        s = line_structure(4)
        engine = CircuitEngine(s, channels=1)
        nodes = sorted(s.nodes)
        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        with pytest.raises(PinConfigurationError):
            run_pasc(engine, [run])
