"""Tests for error handling and less-traveled code paths."""

import pytest

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure
from repro.metrics.rounds import RoundCounter
from repro.sim.engine import CircuitEngine
from repro.spf.types import Forest
from repro.workloads import hexagon, line_structure


class TestEngineEdgeCases:
    def test_edge_subset_layout_rejects_non_adjacent(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        with pytest.raises(ValueError):
            engine.edge_subset_layout([(Node(0, 0), Node(2, 0))])

    def test_edge_subset_layout_without_isolated(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        layout = engine.edge_subset_layout(
            [(Node(0, 0), Node(1, 0))], isolated_ok=False
        )
        sets = layout.partition_sets()
        assert (Node(3, 0), "net") not in sets

    def test_charge_local_round_negative_rejected(self):
        engine = CircuitEngine(line_structure(2))
        with pytest.raises(ValueError):
            engine.charge_local_round(-1)


class TestParallelGroupExceptions:
    def test_exception_skips_group_charge(self):
        counter = RoundCounter()
        with pytest.raises(RuntimeError):
            with counter.parallel() as group:
                with group.branch():
                    counter.tick(5)
                raise RuntimeError("boom")
        # The failed group does not charge its max.
        assert counter.total == 0

    def test_branch_exception_propagates(self):
        counter = RoundCounter()
        with pytest.raises(ValueError):
            with counter.parallel() as group:
                with group.branch():
                    raise ValueError("inner")


class TestForestEdgeCases:
    def test_multi_source_tree_maps(self):
        a, b, c, d = (Node(i, 0) for i in range(4))
        forest = Forest({a, d}, {b: a, c: d}, {a, b, c, d})
        trees = forest.tree_parent_maps()
        assert trees[a] == {b: a}
        assert trees[d] == {c: d}

    def test_depth_of_source_zero(self):
        a, b = Node(0, 0), Node(1, 0)
        forest = Forest({a}, {b: a}, {a, b})
        assert forest.depth_of(a) == 0

    def test_iteration_yields_members(self):
        a, b = Node(0, 0), Node(1, 0)
        forest = Forest({a}, {b: a}, {a, b})
        assert set(iter(forest)) == {a, b}

    def test_parent_outside_members_rejected(self):
        a, b = Node(0, 0), Node(1, 0)
        with pytest.raises(ValueError):
            Forest({a}, {b: Node(5, 5)}, {a, b}).restricted_to({a, b})


class TestStructureValidationMessages:
    def test_structure_error_mentions_connectivity(self):
        with pytest.raises(Exception, match="connected"):
            AmoebotStructure([Node(0, 0), Node(3, 3)])

    def test_structure_error_mentions_holes(self):
        ring = [n for n in hexagon(1).nodes if n != Node(0, 0)]
        with pytest.raises(Exception, match="hole"):
            AmoebotStructure(ring)
