"""The solver daemon: jobs, worker pool, HTTP endpoints, resume.

Covers the service contract end to end: submit → stream → fetch round
trips, cache hits on repeated identical jobs (with the layout/grid
probes asserting nothing is rebuilt), failed jobs, campaign jobs,
graceful shutdown (including mid-stream, with queued jobs, and when
requested twice concurrently), resume-after-restart from the store,
and the HTTP shapes of the resilience features (429 shedding, 408
bodies, field-named 400s).
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.api import RequestError, Session, SolveRequest
from repro.grid.compiled import GRID_STATS
from repro.service import (
    JobSpec,
    ServiceClient,
    ServiceClosed,
    SolverService,
    serve,
)
from repro.obs import validate_prometheus_text
from repro.service.client import ServiceError
from repro.sim.circuits import LAYOUT_STATS

REQUEST = SolveRequest(shape="random:60:2", k=1, l=3, seed=1)


@pytest.fixture
def daemon():
    """An HTTP daemon on an ephemeral port plus a connected client."""
    server = serve(port=0, workers=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("127.0.0.1", server.server_address[1], timeout=30)
    try:
        yield server.service, client
    finally:
        server.service.shutdown(wait=True)
        server.shutdown()
        server.server_close()
        thread.join(timeout=10)


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(request=REQUEST, fresh=True)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key() == REQUEST.key()
        assert again.kind == "solve"

    def test_campaign_spec(self):
        spec = JobSpec(campaign="spsp-small", workers=2)
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.kind == "campaign"
        assert again.key() != JobSpec(campaign="sssp-small").key()

    def test_validation(self):
        with pytest.raises(RequestError, match="exactly one"):
            JobSpec()
        with pytest.raises(RequestError, match="exactly one"):
            JobSpec(request=REQUEST, campaign="spsp-small")
        with pytest.raises(RequestError, match="unknown job fields"):
            JobSpec.from_dict({"request": REQUEST.to_dict(), "turbo": True})


class TestSolverService:
    """The in-process daemon core, no HTTP involved."""

    def test_submit_and_wait(self):
        service = SolverService(workers=2)
        job = service.wait(service.submit(JobSpec(request=REQUEST)).id)
        assert job.state == "done"
        assert job.result["rounds"] == Session().run(REQUEST).rounds
        assert job.id.startswith(REQUEST.key()[:12])
        service.shutdown()

    def test_failed_job_does_not_kill_worker(self):
        service = SolverService(workers=1)
        bad = service.wait(
            service.submit(
                JobSpec(request=SolveRequest(shape="bogus:1"))
            ).id
        )
        assert bad.state == "failed"
        assert "bogus" in bad.error
        good = service.wait(service.submit(JobSpec(request=REQUEST)).id)
        assert good.state == "done"
        service.shutdown()

    def test_shutdown_cancels_queued_finishes_running(self):
        service = SolverService(workers=1)
        slow = service.submit(
            JobSpec(request=SolveRequest(shape="random:300:5", k=1, l=3))
        )
        # Wait for the worker to pick the job up: only *running* jobs
        # survive shutdown, queued ones are cancelled.
        deadline = time.time() + 30
        while slow.state != "running" and time.time() < deadline:
            time.sleep(0.005)
        queued = [
            service.submit(
                JobSpec(request=SolveRequest(shape="hexagon:2", seed=s))
            )
            for s in range(3)
        ]
        summary = service.shutdown(wait=True)
        assert service.wait(slow.id).state == "done"
        states = {service.wait(j.id).state for j in queued}
        assert states <= {"cancelled", "done"}
        assert summary["cancelled"] == sum(
            1 for j in queued if j.state == "cancelled"
        )
        with pytest.raises(ServiceClosed):
            service.submit(JobSpec(request=REQUEST))

    def test_resume_after_restart(self, tmp_path):
        path = tmp_path / "service.jsonl"
        first = SolverService(store=path, workers=1)
        done = first.wait(first.submit(JobSpec(request=REQUEST)).id)
        first.shutdown()

        revived = SolverService(store=path, workers=1)
        again = revived.wait(revived.submit(JobSpec(request=REQUEST)).id)
        assert again.result["cached"] is True
        assert again.result["rounds"] == done.result["rounds"]
        assert revived.session.stats.cache_hits == 1
        revived.shutdown()

    def test_fresh_bypasses_cache(self):
        service = SolverService(workers=1)
        service.wait(service.submit(JobSpec(request=REQUEST)).id)
        redo = service.wait(
            service.submit(JobSpec(request=REQUEST, fresh=True)).id
        )
        assert redo.result["cached"] is False
        service.shutdown()

    def test_campaign_job(self, tmp_path):
        service = SolverService(store=tmp_path / "c.jsonl", workers=1)
        campaign = {
            "name": "tiny",
            "description": "one-scenario smoke",
            "scenarios": [{
                "name": "s", "shape": "random:{n}:1", "sizes": [40],
                "ks": [1], "ls": [2], "seeds": [0],
            }],
        }
        job = service.wait(service.submit(JobSpec(campaign=campaign)).id)
        assert job.state == "done"
        assert job.result["record"] == "campaign-report"
        assert job.result["trials"] == 1
        # Re-submitting the campaign hits the shared store per trial.
        again = service.wait(service.submit(JobSpec(campaign=campaign)).id)
        assert again.result["cache_hits"] == 1
        service.shutdown()


class TestHTTPEndpoints:
    def test_health_and_stats(self, daemon):
        _service, client = daemon
        assert client.health()["ok"] is True
        stats = client.stats()
        assert stats["workers"] == 2
        assert "layout_stats" in stats and "grid_stats" in stats

    def test_submit_stream_fetch_round_trip(self, daemon):
        _service, client = daemon
        job = client.submit(JobSpec(request=REQUEST))
        events = list(client.stream(job["id"]))
        names = [e["event"] for e in events]
        assert names[0] == "queued"
        assert "running" in names and "done" in names
        assert names[-1] == "end" and events[-1]["state"] == "done"
        rounds = [e["rounds"] for e in events if e["event"] == "round"]
        assert rounds == sorted(rounds) and rounds
        result = client.result(job["id"], timeout=30)
        assert result["state"] == "done"
        assert result["result"]["rounds"] == rounds[-1]

    def test_repeated_job_hits_cache_without_rebuilds(self, daemon):
        _service, client = daemon
        cold = client.run(JobSpec(request=REQUEST), timeout=60)
        assert cold["result"]["cached"] is False
        LAYOUT_STATS.reset()
        GRID_STATS.reset()
        warm = client.run(JobSpec(request=REQUEST), timeout=60)
        assert warm["result"]["cached"] is True
        assert warm["result"]["rounds"] == cold["result"]["rounds"]
        # Cache hits execute nothing: no index builds, no compilations.
        assert GRID_STATS.full_builds == 0
        assert LAYOUT_STATS.compiles == 0
        assert client.stats()["session"]["cache_hits"] >= 1

    def test_concurrent_clients(self, daemon):
        _service, client = daemon
        requests = [
            SolveRequest(shape="random:40:3", k=1, l=2, seed=s)
            for s in range(8)
        ]
        results: dict = {}

        def drive(i: int) -> None:
            results[i] = client.run(
                JobSpec(request=requests[i]), timeout=120
            )

        threads = [
            threading.Thread(target=drive, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert len(results) == 8
        assert all(r["state"] == "done" for r in results.values())

    def test_error_responses(self, daemon):
        _service, client = daemon
        with pytest.raises(ServiceError) as err:
            client.job("no-such-job")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.submit({"request": {"shape": "hexagon:2", "bogus": 1}})
        assert err.value.status == 400

    def test_result_timeout_is_408(self, daemon):
        service, client = daemon
        job = client.submit(
            JobSpec(request=SolveRequest(shape="random:400:9", k=1, l=3))
        )
        with pytest.raises(ServiceError) as err:
            client.result(job["id"], timeout=0.001)
        assert err.value.status == 408
        service.wait(job["id"])  # drain before fixture shutdown

    def test_metrics_endpoint_is_valid_prometheus(self, daemon):
        _service, client = daemon
        client.run(JobSpec(request=REQUEST), timeout=60)
        body = client.metrics()
        assert validate_prometheus_text(body) == []
        assert "repro_jobs_total" in body
        assert "repro_job_latency_seconds_bucket" in body
        assert "repro_session_cache_hits" in body
        assert "repro_layout_cache_hits" in body
        assert "repro_backend_info" in body

    def test_trace_endpoint(self, daemon):
        _service, client = daemon
        job = client.run(JobSpec(request=REQUEST), timeout=60)
        trace = client.trace(job["id"])
        assert trace["state"] == "done"
        names = {span["name"] for span in trace["spans"]}
        assert "solve" in names
        with pytest.raises(ServiceError) as err:
            client.trace("no-such-job")
        assert err.value.status == 404


class TestTelemetry:
    def test_latency_memory_is_bounded(self):
        """Per-job latency tracking must not grow with job count."""
        service = SolverService(workers=1)
        # The old implementation kept an unbounded per-job list; the
        # histogram keeps a fixed bucket vector regardless of volume.
        assert not hasattr(service, "_latencies")
        for seed in range(4):
            service.wait(
                service.submit(
                    JobSpec(request=SolveRequest(shape="hexagon:2", seed=seed))
                ).id
            )
        for _labels, state in service._job_latency.series():
            assert len(state.counts) == len(service._job_latency.buckets) + 1
        summary = service.stats()["latency"]
        assert summary["completed"] == 4
        assert summary["cold"]["count"] == 4
        assert summary["cold"]["p50_s"] is not None
        service.shutdown()

    def test_latency_summary_splits_warm_and_cold(self):
        service = SolverService(workers=1)
        service.wait(service.submit(JobSpec(request=REQUEST)).id)
        service.wait(service.submit(JobSpec(request=REQUEST)).id)
        summary = service.stats()["latency"]
        assert summary["completed"] == 2
        assert summary["warm"]["count"] == 1
        assert summary["cold"]["count"] == 1
        service.shutdown()

    def test_metrics_snapshot_file(self, tmp_path):
        import json

        service = SolverService(
            store=tmp_path / "jobs.jsonl", workers=1, metrics_interval=0.05
        )
        service.wait(service.submit(JobSpec(request=REQUEST)).id)
        time.sleep(0.12)
        service.shutdown()
        lines = (tmp_path / "metrics.jsonl").read_text().splitlines()
        assert lines
        last = json.loads(lines[-1])
        instruments = last["metrics"]["instruments"]
        assert "repro_jobs_total" in instruments
        assert last["metrics"]["views"]["session"]["executed"] >= 1

    def test_http_shutdown_endpoint(self):
        server = serve(port=0, workers=1)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(
            "127.0.0.1", server.server_address[1], timeout=30
        )
        assert client.shutdown()["shutting_down"] is True
        thread.join(timeout=30)
        assert not thread.is_alive()
        server.server_close()
        with pytest.raises(ServiceClosed):
            server.service.submit(JobSpec(request=REQUEST))


def gated_server(**service_kw):
    """An HTTP daemon over a GatedSession: jobs block until released."""
    from tests.chaos import GatedSession

    gated = GatedSession(Session())
    service = SolverService(session=gated, **service_kw)
    server = serve(port=0, service=service)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient("127.0.0.1", server.server_address[1], timeout=30)
    return gated, server, thread, client


class TestShutdownEdgeCases:
    def test_shutdown_during_inflight_stream(self):
        """A stream open across /shutdown still delivers the terminal
        events of its (finishing) job."""
        gated, server, thread, client = gated_server(workers=1)
        job = client.submit(JobSpec(request=REQUEST))
        events: list = []

        def drain() -> None:
            for event in client.stream(job["id"]):
                events.append(event)

        streamer = threading.Thread(target=drain, daemon=True)
        streamer.start()
        assert gated.entered.wait(timeout=10)
        assert client.shutdown()["shutting_down"] is True
        gated.release()
        streamer.join(timeout=60)
        assert not streamer.is_alive()
        names = [e["event"] for e in events]
        assert "done" in names
        assert names[-1] == "end" and events[-1]["state"] == "done"
        thread.join(timeout=30)
        server.server_close()

    def test_shutdown_with_queued_jobs_cancels_them(self):
        gated, server, thread, client = gated_server(workers=1)
        running = client.submit(JobSpec(request=REQUEST))
        assert gated.entered.wait(timeout=10)
        queued = [
            client.submit(
                JobSpec(request=SolveRequest(shape="hexagon:2", seed=s))
            )
            for s in range(3)
        ]
        assert client.shutdown()["shutting_down"] is True
        gated.release()
        thread.join(timeout=60)
        server.server_close()
        service = server.service
        assert service.wait(running["id"], timeout=30).state == "done"
        states = [service.wait(j["id"], timeout=30).state for j in queued]
        assert states == ["cancelled"] * 3

    def test_double_concurrent_shutdown_is_idempotent(self):
        gated, server, thread, client = gated_server(workers=1)
        gated.release()  # nothing to block on in this test
        job = client.submit(JobSpec(request=REQUEST))
        server.service.wait(job["id"], timeout=60)
        responses: list = []

        def stop() -> None:
            try:
                responses.append(client.shutdown())
            except ServiceError as exc:  # pragma: no cover - timing
                responses.append(exc)

        stoppers = [threading.Thread(target=stop) for _ in range(2)]
        for t in stoppers:
            t.start()
        for t in stoppers:
            t.join(timeout=30)
        assert len(responses) == 2
        assert all(
            isinstance(r, dict) and r["shutting_down"] is True
            for r in responses
        )
        thread.join(timeout=30)
        server.server_close()
        # A third, in-process shutdown is a no-op summary, not an error.
        assert server.service.shutdown(wait=True) == {"cancelled": 0}
        with pytest.raises(ServiceClosed):
            server.service.submit(JobSpec(request=REQUEST))


class TestResilienceOverHTTP:
    def test_healthz_reports_status_and_queue(self, daemon):
        _service, client = daemon
        health = client.health()
        assert health["ok"] is True
        assert health["status"] == "ok"
        assert health["queue_depth"] == 0
        assert health["queue_limit"] >= 1
        assert health["workers"] == 2

    def test_submit_rejects_bad_qos_fields_by_name(self, daemon):
        _service, client = daemon
        with pytest.raises(ServiceError) as err:
            client.submit({"request": REQUEST.to_dict(), "deadline_s": -1})
        assert err.value.status == 400
        assert "deadline_s" in str(err.value)
        with pytest.raises(ServiceError) as err:
            client.submit({"campaign": "spsp-small", "workers": 0})
        assert err.value.status == 400
        assert "workers" in str(err.value)

    def test_result_408_body_names_state_and_queue_position(self):
        gated, server, thread, client = gated_server(workers=1)
        running = client.submit(JobSpec(request=REQUEST))
        assert gated.entered.wait(timeout=10)
        queued = client.submit(
            JobSpec(request=SolveRequest(shape="hexagon:2", seed=1))
        )
        with pytest.raises(ServiceError) as err:
            client.result(running["id"], timeout=0.01)
        assert err.value.status == 408
        assert err.value.payload["id"] == running["id"]
        assert err.value.payload["state"] == "running"
        assert err.value.payload["queue_position"] is None
        with pytest.raises(ServiceError) as err:
            client.result(queued["id"], timeout=0.01)
        assert err.value.payload["state"] == "queued"
        assert err.value.payload["queue_position"] == 0
        gated.release()
        server.service.wait(queued["id"], timeout=60)
        server.service.shutdown(wait=True)
        server.shutdown()
        server.server_close()
        thread.join(timeout=30)

    def test_full_queue_is_429_with_retry_hint(self):
        gated, server, thread, client = gated_server(workers=1, max_queue=1)
        running = client.submit(JobSpec(request=REQUEST))
        assert gated.entered.wait(timeout=10)
        queued = client.submit(
            JobSpec(request=SolveRequest(shape="hexagon:2", seed=1))
        )
        with pytest.raises(ServiceError) as err:
            client.submit(
                JobSpec(request=SolveRequest(shape="hexagon:2", seed=2))
            )
        assert err.value.status == 429
        assert err.value.payload["retry_after_s"] >= 1
        assert err.value.payload["state"] == "shed"
        assert client.health()["status"] == "overloaded"
        gated.release()
        for job in (running, queued):
            server.service.wait(job["id"], timeout=60)
        server.service.shutdown(wait=True)
        server.shutdown()
        server.server_close()
        thread.join(timeout=30)

    def test_client_retries_429_until_accepted(self):
        """A retry-configured client rides out a shed and lands the job
        once the queue drains."""
        from repro.resilience import RetryPolicy

        gated, server, thread, client = gated_server(workers=1, max_queue=1)
        client.retry = RetryPolicy(
            attempts=4, base_delay_s=0.05, max_delay_s=0.1
        )
        running = client.submit(JobSpec(request=REQUEST))
        assert gated.entered.wait(timeout=10)
        queued = client.submit(
            JobSpec(request=SolveRequest(shape="hexagon:2", seed=1))
        )
        releaser = threading.Timer(0.15, gated.release)
        releaser.start()
        third = client.submit(
            JobSpec(request=SolveRequest(shape="hexagon:2", seed=2))
        )
        for job in (running, queued, third):
            assert server.service.wait(job["id"], timeout=60).state == "done"
        assert server.service._sheds_total.value() >= 1
        releaser.join()
        server.service.shutdown(wait=True)
        server.shutdown()
        server.server_close()
        thread.join(timeout=30)
