"""Resilience primitives and their integration into requests and jobs.

:mod:`repro.resilience` is deliberately deterministic — seeded jitter,
injectable clocks — so this suite asserts exact delay sequences and
drives the circuit breaker's state machine with a synthetic clock.  The
integration half pins the contracts the rest of the stack builds on:
``deadline_s`` never enters a content key (impatience does not change
what the work is), ``Session.run`` surfaces partial progress on
cancellation, and the service layer rejects malformed QoS fields by
name.
"""

from __future__ import annotations

import pytest

from repro.api import RequestError, Session, SolveRequest
from repro.resilience import (
    CancellationToken,
    Cancelled,
    CircuitBreaker,
    CircuitOpen,
    DeadlineExceeded,
    RetryPolicy,
)
from repro.service import JobSpec


class FakeClock:
    def __init__(self, now: float = 100.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


class TestCancellationToken:
    def test_plain_token_never_trips(self):
        token = CancellationToken()
        token.check(rounds=7)
        assert not token.cancelled and not token.expired
        assert token.remaining_s() is None

    def test_cancel_raises_with_progress(self):
        token = CancellationToken()
        token.cancel("caller went away")
        with pytest.raises(Cancelled, match="caller went away") as err:
            token.check(rounds=12)
        assert err.value.partial == {"rounds": 12}

    def test_deadline_expiry(self):
        clock = FakeClock()
        token = CancellationToken(deadline_s=5.0, clock=clock)
        token.check()
        assert token.remaining_s() == 5.0
        clock.advance(4.999)
        token.check()
        clock.advance(0.001)
        assert token.expired
        assert token.remaining_s() == 0.0
        with pytest.raises(DeadlineExceeded, match="deadline of 5s") as err:
            token.check(rounds=3)
        assert err.value.deadline_s == 5.0
        assert err.value.partial == {"rounds": 3}
        assert isinstance(err.value, Cancelled)  # one catch clause suffices

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_non_positive_deadline_rejected(self, bad):
        with pytest.raises(ValueError, match="deadline_s must be positive"):
            CancellationToken(deadline_s=bad)


class TestRetryPolicy:
    def test_delays_are_deterministic_and_bounded(self):
        policy = RetryPolicy(
            attempts=5, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0
        )
        assert policy.delays() == policy.delays()
        assert policy.delays() == RetryPolicy(
            attempts=5, base_delay_s=0.1, max_delay_s=0.5, multiplier=2.0
        ).delays()
        assert len(policy.delays()) == 4
        for delay, ceiling in zip(policy.delays(), [0.1, 0.2, 0.4, 0.5]):
            assert delay <= ceiling * 1.1  # jitter widens by at most 10%
            assert delay >= ceiling * 0.9

    def test_seed_changes_jitter_only(self):
        a = RetryPolicy(attempts=4, seed=0)
        b = RetryPolicy(attempts=4, seed=1)
        assert a.delays() != b.delays()
        assert RetryPolicy(attempts=4, jitter=0.0, seed=0).delays() == (
            RetryPolicy(attempts=4, jitter=0.0, seed=1).delays()
        )

    def test_no_jitter_is_exact_exponential(self):
        policy = RetryPolicy(
            attempts=4, base_delay_s=0.1, max_delay_s=10.0,
            multiplier=3.0, jitter=0.0,
        )
        assert policy.delays() == [0.1, 0.3, 0.9]

    def test_validation(self):
        with pytest.raises(ValueError, match="attempts"):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError, match="max_delay_s"):
            RetryPolicy(base_delay_s=1.0, max_delay_s=0.5)
        with pytest.raises(ValueError, match="multiplier"):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)

    def test_call_retries_then_succeeds(self):
        policy = RetryPolicy(attempts=3, base_delay_s=0.01, max_delay_s=0.02)
        calls = {"n": 0}
        slept: list = []
        retried: list = []

        def flaky():
            calls["n"] += 1
            if calls["n"] < 3:
                raise OSError("transient")
            return "ok"

        result = policy.call(
            flaky,
            sleep=slept.append,
            on_retry=lambda attempt, exc, delay: retried.append(attempt),
        )
        assert result == "ok"
        assert calls["n"] == 3
        assert slept == policy.delays()
        assert retried == [1, 2]

    def test_call_reraises_after_budget(self):
        policy = RetryPolicy(attempts=2, base_delay_s=0.0, max_delay_s=0.0)
        calls = {"n": 0}

        def always_fails():
            calls["n"] += 1
            raise OSError(f"fault {calls['n']}")

        with pytest.raises(OSError, match="fault 2"):
            policy.call(always_fails, sleep=lambda _s: None)
        assert calls["n"] == 2

    def test_call_does_not_catch_unlisted_exceptions(self):
        policy = RetryPolicy(attempts=3)
        calls = {"n": 0}

        def typo():
            calls["n"] += 1
            raise KeyError("not retryable here")

        with pytest.raises(KeyError):
            policy.call(typo, retry_on=(OSError,), sleep=lambda _s: None)
        assert calls["n"] == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_and_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=3, reset_timeout_s=10.0, clock=clock
        )
        assert breaker.state == CircuitBreaker.CLOSED
        for _ in range(3):
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()

        clock.advance(10.0)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert breaker.allow()  # the single probe
        assert not breaker.allow()  # second caller must wait for it
        breaker.record_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert breaker.allow()

    def test_failed_probe_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        breaker.record_failure()
        clock.advance(5.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()
        clock.advance(4.9)
        assert not breaker.allow()  # fresh timeout from the failed probe
        clock.advance(0.1)
        assert breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_call_wraps_the_state_machine(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            failure_threshold=1, reset_timeout_s=5.0, clock=clock
        )
        with pytest.raises(OSError):
            breaker.call(lambda: (_ for _ in ()).throw(OSError("down")))
        with pytest.raises(CircuitOpen):
            breaker.call(lambda: "never reached")
        clock.advance(5.0)
        assert breaker.call(lambda: "recovered") == "recovered"

    def test_validation(self):
        with pytest.raises(ValueError, match="failure_threshold"):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError, match="reset_timeout_s"):
            CircuitBreaker(reset_timeout_s=0)


class TestDeadlineOnRequests:
    def test_deadline_never_enters_the_content_key(self):
        patient = SolveRequest(shape="hexagon:3", l=2)
        hurried = SolveRequest(shape="hexagon:3", l=2, deadline_s=0.5)
        assert patient.key() == hurried.key()
        assert "deadline_s" not in patient.config()
        assert hurried.to_dict()["deadline_s"] == 0.5
        assert "deadline_s" not in patient.to_dict()  # zero = omitted
        assert SolveRequest.from_dict(hurried.to_dict()) == hurried

    def test_request_rejects_bad_deadlines(self):
        with pytest.raises(RequestError, match="deadline_s"):
            SolveRequest(deadline_s=-1)
        with pytest.raises(RequestError, match="deadline_s"):
            SolveRequest(deadline_s="soon")

    def test_jobspec_rejects_bad_deadline_and_workers_by_name(self):
        request = SolveRequest(shape="hexagon:3", l=2)
        with pytest.raises(RequestError, match="deadline_s must be positive"):
            JobSpec(request=request, deadline_s=0)
        with pytest.raises(RequestError, match="deadline_s must be positive"):
            JobSpec(request=request, deadline_s=-2.5)
        with pytest.raises(RequestError, match="deadline_s must be a number"):
            JobSpec(request=request, deadline_s=True)
        with pytest.raises(RequestError, match="workers must be positive"):
            JobSpec(campaign="spsp-small", workers=0)

    def test_jobspec_deadline_precedence(self):
        request = SolveRequest(shape="hexagon:3", l=2, deadline_s=9.0)
        assert JobSpec(request=request).effective_deadline_s == 9.0
        assert (
            JobSpec(request=request, deadline_s=1.5).effective_deadline_s == 1.5
        )
        plain = SolveRequest(shape="hexagon:3", l=2)
        assert JobSpec(request=plain).effective_deadline_s is None
        spec = JobSpec(request=request, deadline_s=1.5)
        assert JobSpec.from_dict(spec.to_dict()) == spec


class TestSessionCancellation:
    def test_cancelled_run_reports_partial_progress(self):
        session = Session()
        request = SolveRequest(shape="random:80:2", k=1, l=3)
        token = CancellationToken()
        rounds_seen: list = []

        def cancel_after_two(event: dict) -> None:
            if event.get("event") == "round":
                rounds_seen.append(event["rounds"])
                if len(rounds_seen) == 2:
                    token.cancel("test says stop")

        with pytest.raises(Cancelled, match="test says stop") as err:
            session.run(request, on_event=cancel_after_two, token=token)
        partial = err.value.partial
        assert partial["rounds"] == 2
        assert partial["key"] == request.key()
        assert partial["kind"] == "solve"
        assert partial["elapsed_s"] >= 0

        # The session survives a cancelled run and still completes work.
        report = session.run(request)
        assert report.rounds >= 2

    def test_cached_hit_ignores_even_an_expired_deadline(self):
        session = Session()
        request = SolveRequest(shape="hexagon:3", l=2)
        session.run(request)
        clock = FakeClock()
        token = CancellationToken(deadline_s=0.001, clock=clock)
        clock.advance(1.0)  # long expired
        report = session.run(
            SolveRequest(shape="hexagon:3", l=2, deadline_s=0.001), token=token
        )
        assert report.cached is True

    def test_store_failures_counted_not_raised(self):
        class ExplodingStore:
            def get(self, key):
                return None

            def add(self, record):
                raise OSError("disk on fire")

        from repro.experiments.store import ResultStore

        store = ResultStore()
        store.add = ExplodingStore().add  # type: ignore[method-assign]
        session = Session(store=store)
        report = session.run(SolveRequest(shape="hexagon:3", l=2))
        assert report.rounds > 0
        assert session.stats.store_failures == 1
