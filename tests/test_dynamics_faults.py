"""Fault injection: crashed amoebots, dropped beeps, detection, healing."""

from __future__ import annotations

import pytest

from repro.dynamics import DynamicSPF, FaultInjector, generate_churn
from repro.sim.engine import CircuitEngine
from repro.spf.api import solve_spf
from repro.workloads import line_structure, random_hole_free
from repro.grid.coords import Node


class TestFaultInjector:
    def test_crashed_amoebots_go_silent(self):
        s = line_structure(6)
        engine = CircuitEngine(s)
        injector = FaultInjector(crashed=[Node(0, 0)])
        engine.fault_injector = injector
        layout = engine.global_layout()
        # The crashed head beeps: nobody hears anything.
        heard = engine.run_round(layout, [(Node(0, 0), "global")])
        assert not any(heard.values())
        assert injector.stats.suppressed == 1
        # A healthy amoebot's beep still goes through.
        heard = engine.run_round(layout, [(Node(3, 0), "global")])
        assert all(heard.values())

    def test_recover_restores_transmission(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        injector = FaultInjector(crashed=[Node(1, 0)])
        engine.fault_injector = injector
        layout = engine.global_layout()
        assert not any(engine.run_round(layout, [(Node(1, 0), "global")]).values())
        injector.recover(Node(1, 0))
        assert all(engine.run_round(layout, [(Node(1, 0), "global")]).values())

    def test_drop_probability_is_seeded(self):
        def run(seed):
            s = line_structure(8)
            engine = CircuitEngine(s)
            injector = FaultInjector(drop_prob=0.5, seed=seed)
            engine.fault_injector = injector
            layout = engine.global_layout()
            compiled = layout.compiled()
            beep = compiled.index.index_of((Node(0, 0), "global"))
            results = [
                engine.run_round_indexed(layout, [beep], [beep])[0]
                for _ in range(20)
            ]
            return results, injector.stats.dropped

        a, dropped_a = run(3)
        b, dropped_b = run(3)
        assert a == b and dropped_a == dropped_b
        assert 0 < dropped_a < 20

    def test_detection_counts_missed_hears(self):
        s = line_structure(5)
        engine = CircuitEngine(s)
        injector = FaultInjector(crashed=[Node(0, 0)])
        engine.fault_injector = injector
        layout = engine.global_layout()
        compiled = layout.compiled()
        beep = compiled.index.index_of((Node(0, 0), "global"))
        listen = [compiled.index.index_of((Node(i, 0), "global")) for i in range(5)]
        bits = engine.run_round_indexed(layout, [beep], listen)
        assert list(bits) == [False] * 5
        assert injector.stats.missed_hears == 5
        assert injector.stats.faulty_rounds == 1

    def test_detection_diff_rejects_mismatched_lengths(self):
        from repro.dynamics.faults import missed_hears

        with pytest.raises(ValueError, match="different lengths"):
            missed_hears([True, False], [True])

    def test_detection_diff_accepts_ndarray_bits(self):
        np = pytest.importorskip("numpy")
        from repro.dynamics.faults import missed_hears

        clean = np.asarray([True, True, False, True])
        faulty = np.asarray([True, False, False, False])
        assert missed_hears(clean, faulty) == 2
        # Mixed representations diff elementwise too.
        assert missed_hears([True, True, False, True], faulty) == 2
        assert missed_hears(clean, [True, False, False, False]) == 2

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            FaultInjector(drop_prob=1.5)

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="drop probability"):
            FaultInjector(drop_prob=-0.1)

    def test_negative_seed_rejected(self):
        with pytest.raises(ValueError, match="seed"):
            FaultInjector(drop_prob=0.5, seed=-1)


class TestFaultyRepair:
    @pytest.mark.parametrize("drop", [0.3, 0.7])
    def test_repair_stays_exact_under_beep_drops(self, drop):
        s = random_hole_free(120, seed=23)
        nodes = sorted(s.nodes)
        injector = FaultInjector(drop_prob=drop, seed=99)
        dyn = DynamicSPF(s, [nodes[0]], nodes[-4:], faults=injector)
        script = generate_churn(
            s, "mixed", steps=6, batch_size=3, seed=7, protected=dyn.protected
        )
        stats = dyn.apply_script(script)
        ref = solve_spf(dyn.structure, [nodes[0]], nodes[-4:])
        assert dyn.forest.parent == ref.forest.parent
        # Everything is seeded, so the fault volume is deterministic:
        # beeps were lost, outcome changes were detected, and the
        # damaged labels were healed (that is what kept parents exact).
        assert injector.stats.lost > 0
        assert injector.stats.missed_hears > 0
        assert sum(st.corrected for st in stats) > 0

    def test_injector_armed_only_during_waves(self):
        s = random_hole_free(80, seed=29)
        nodes = sorted(s.nodes)
        injector = FaultInjector(drop_prob=1.0, seed=1)
        dyn = DynamicSPF(s, [nodes[0]], nodes[-3:], faults=injector)
        # The initial solve ran fault-free: nothing dropped yet.
        assert injector.stats.dropped == 0
        script = generate_churn(
            s, "growth", steps=2, batch_size=2, seed=2, protected=dyn.protected
        )
        stats = dyn.apply_script(script)
        assert dyn.engine.fault_injector is None  # disarmed after repairs
        # With every beep dropped, every wave-repaired label was healed.
        waves = sum(st.wave_rounds for st in stats)
        if waves:
            assert sum(st.corrected for st in stats) > 0
        ref = solve_spf(dyn.structure, [nodes[0]], nodes[-3:])
        assert dyn.forest.parent == ref.forest.parent
