"""Symmetry tests: transforms themselves, plus algorithm equivariance.

Rotating or translating the whole input must rotate/translate the
output forest and leave the *distances* and round counts untouched —
the strongest available smoke test against direction-convention bugs
in the portal machinery.
"""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.grid.coords import Node, grid_distance
from repro.grid.transforms import (
    reflect_x_axis,
    rotate60,
    transform_parent_map,
    transform_structure,
    translate,
)
from repro.sim.engine import CircuitEngine
from repro.spf.spt import shortest_path_tree
from repro.spf.forest import shortest_path_forest
from repro.verify import assert_valid_forest
from repro.workloads import hexagon, random_hole_free

coords = st.integers(min_value=-30, max_value=30)
nodes = st.builds(Node, coords, coords)


class TestTransformAlgebra:
    @given(nodes)
    def test_rotation_has_order_six(self, u):
        assert rotate60(6)(u) == u

    @given(nodes, nodes)
    def test_rotation_preserves_distance(self, u, v):
        r = rotate60(1)
        assert grid_distance(r(u), r(v)) == grid_distance(u, v)

    @given(nodes, nodes)
    def test_reflection_preserves_distance(self, u, v):
        m = reflect_x_axis()
        assert grid_distance(m(u), m(v)) == grid_distance(u, v)

    @given(nodes)
    def test_reflection_is_involution(self, u):
        m = reflect_x_axis()
        assert m(m(u)) == u

    @given(nodes, nodes)
    def test_rotation_preserves_adjacency(self, u, v):
        r = rotate60(2)
        assert u.is_adjacent(v) == r(u).is_adjacent(r(v))

    def test_transform_structure_preserves_size(self):
        s = hexagon(2)
        t = transform_structure(s, rotate60(1))
        assert len(t) == len(s)


class TestAlgorithmEquivariance:
    @pytest.mark.parametrize("steps", [1, 2, 3])
    def test_spt_rounds_invariant_under_rotation(self, steps):
        s = random_hole_free(80, seed=400)
        nodes_sorted = sorted(s.nodes)
        source, dest = nodes_sorted[0], nodes_sorted[-1]
        engine = CircuitEngine(s)
        base = shortest_path_tree(engine, s, source, [dest])
        base_rounds = engine.rounds.total

        r = rotate60(steps)
        rotated = transform_structure(s, r)
        engine2 = CircuitEngine(rotated)
        result = shortest_path_tree(engine2, rotated, r(source), [r(dest)])
        assert engine2.rounds.total == base_rounds
        # Distances are preserved (tree shape may differ by tie-breaks).
        assert len(result.path_from(r(dest))) == len(base.path_from(dest))

    def test_spt_invariant_under_translation(self):
        s = random_hole_free(70, seed=401)
        nodes_sorted = sorted(s.nodes)
        source, dest = nodes_sorted[0], nodes_sorted[-1]
        t = translate(17, -9)
        moved = transform_structure(s, t)
        a = shortest_path_tree(CircuitEngine(s), s, source, [dest])
        b = shortest_path_tree(CircuitEngine(moved), moved, t(source), [t(dest)])
        # Exact equivariance for translations (no tie-break asymmetry).
        assert transform_parent_map(a.parent, t) == b.parent

    def test_forest_valid_after_rotation(self):
        s = random_hole_free(70, seed=402)
        rng = random.Random(1)
        sources = rng.sample(sorted(s.nodes), 3)
        r = rotate60(1)
        rotated = transform_structure(s, r)
        rotated_sources = [r(u) for u in sources]
        forest = shortest_path_forest(CircuitEngine(rotated), rotated, rotated_sources)
        assert_valid_forest(
            rotated, rotated_sources, sorted(rotated.nodes), forest.parent
        )

    def test_forest_valid_after_reflection(self):
        s = random_hole_free(60, seed=403)
        rng = random.Random(2)
        sources = rng.sample(sorted(s.nodes), 3)
        m = reflect_x_axis()
        mirrored = transform_structure(s, m)
        mirrored_sources = [m(u) for u in sources]
        forest = shortest_path_forest(
            CircuitEngine(mirrored), mirrored, mirrored_sources
        )
        assert_valid_forest(
            mirrored, mirrored_sources, sorted(mirrored.nodes), forest.parent
        )
