"""Tests for the round tracing subsystem."""

from repro.grid.coords import Node
from repro.sim.engine import CircuitEngine
from repro.sim.trace import RoundTrace, attach_trace
from repro.spf.spt import shortest_path_tree
from repro.workloads import hexagon, line_structure


class TestTraceRecording:
    def test_records_every_round(self):
        s = line_structure(5)
        engine = CircuitEngine(s)
        trace = attach_trace(engine)
        layout = engine.global_layout()
        engine.run_round(layout, [(Node(0, 0), "global")])
        engine.run_round(layout, [])
        engine.charge_local_round(2)
        assert len(trace) == 4
        assert trace.beep_rounds() == 2
        assert trace.summary()["local_rounds"] == 2

    def test_trace_matches_round_counter(self):
        s = hexagon(2)
        engine = CircuitEngine(s)
        trace = attach_trace(engine)
        nodes = sorted(s.nodes)
        shortest_path_tree(engine, s, nodes[0], [nodes[-1]])
        assert len(trace) == engine.rounds.total

    def test_beep_counts(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        trace = attach_trace(engine)
        layout = engine.global_layout()
        engine.run_round(layout, [(Node(0, 0), "global"), (Node(1, 0), "global")])
        record = trace.records[0]
        assert record.beeping_sets == 2
        assert record.hearing_sets == 4  # everyone on the global circuit
        assert record.circuits == 1

    def test_silent_rounds_counted(self):
        s = line_structure(3)
        engine = CircuitEngine(s)
        trace = attach_trace(engine)
        layout = engine.global_layout()
        engine.run_round(layout, [])
        assert trace.silent_rounds() == 1

    def test_json_roundtrip(self):
        s = line_structure(3)
        engine = CircuitEngine(s)
        trace = attach_trace(engine)
        engine.run_round(engine.global_layout(), [(Node(0, 0), "global")])
        restored = RoundTrace.from_json(trace.to_json())
        assert restored.records == trace.records

    def test_max_circuits(self):
        s = line_structure(4)
        engine = CircuitEngine(s)
        trace = attach_trace(engine)
        layout = engine.new_layout()
        for u in s:
            for d in s.occupied_directions(u):
                layout.assign(u, f"p{d.name}", [(d, 0)])
        engine.run_round(layout, [])
        assert trace.max_circuits() == 3


class TestTraceOnAlgorithms:
    def test_spt_trace_shape(self):
        # The SPT algorithm alternates PASC beep rounds with O(1)
        # bookkeeping; the trace exposes that structure.
        s = hexagon(3)
        engine = CircuitEngine(s)
        trace = attach_trace(engine)
        nodes = sorted(s.nodes)
        shortest_path_tree(engine, s, nodes[0], nodes[-4:])
        summary = trace.summary()
        assert summary["beep_rounds"] > summary["local_rounds"]
        # PASC wires the whole tour into a handful of long circuits.
        assert summary["max_circuits"] >= 2
