"""Regression tests for the layout-reuse contract (derive/cache/listen).

Guards three things the refactor promised:

(a) freezing a layout twice never recomputes its components;
(b) ``run_pasc`` on a fixed structure performs exactly one from-scratch
    layout build per execution — every further iteration derives or
    cache-hits, never rebuilds — counted via the ``LAYOUT_STATS`` probe;
(c) round totals of the end-to-end algorithms are bit-identical to the
    seed implementation (this was a simulator-cost fix, not an algorithm
    change): SPSP/SSSP/SPT/forest/ETT-election on ``hexagon:3`` and
    ``lollipop:2:8``, with the totals pinned from the seed revision.
"""

from __future__ import annotations

import pytest

from repro.backend import numpy_or_none, use_backend
from repro.grid.coords import Node
from repro.ett.election import elect_first_marked
from repro.ett.technique import mark_one_outgoing_edge
from repro.ett.tour import build_euler_tour
from repro.pasc.chain import PascChainRun, chain_links_for_nodes
from repro.pasc.runner import run_pasc
from repro.pasc.tree import PascTreeRun
from repro.sim.circuits import LAYOUT_STATS, CircuitLayout, LayoutCache
from repro.sim.engine import CircuitEngine
from repro.spf.api import solve_spf
from repro.spf.forest import shortest_path_forest
from repro.spf.spt import shortest_path_tree
from repro.workloads import hexagon, line_structure
from repro.workloads.specs import build_structure

from tests.conftest import bfs_tree_adjacency


def line_nodes(n):
    return [Node(i, 0) for i in range(n)]


# ----------------------------------------------------------------------
# (a) freeze idempotence
# ----------------------------------------------------------------------


class TestFreezeIdempotence:
    def test_freezing_twice_does_not_recompute(self):
        engine = CircuitEngine(hexagon(2))
        LAYOUT_STATS.reset()
        layout = engine.new_layout()
        for node in engine.structure:
            pins = [(d, 0) for d in engine.structure.occupied_directions(node)]
            layout.assign(node, "g", pins)
        layout.freeze()
        assert LAYOUT_STATS.total_builds() == 1
        before = layout.component_map()
        layout.freeze()
        layout.freeze()
        assert LAYOUT_STATS.total_builds() == 1
        assert layout.component_map() is before

    def test_repeated_rounds_share_one_computation(self):
        engine = CircuitEngine(hexagon(2))
        LAYOUT_STATS.reset()
        layout = engine.global_layout(label="t")
        probe = (next(iter(engine.structure)), "t")
        for _ in range(10):
            engine.run_round(layout, [probe])
        assert LAYOUT_STATS.total_builds() == 1


# ----------------------------------------------------------------------
# derive / reassign correctness
# ----------------------------------------------------------------------


def _partition(layout: CircuitLayout):
    """Canonical view of the circuits (independent of index numbering)."""
    return {frozenset(circuit) for circuit in layout.circuits()}


class TestDerive:
    def test_derived_rewiring_matches_from_scratch(self):
        structure = line_structure(8)
        nodes = line_nodes(8)
        engine = CircuitEngine(structure)

        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        base = engine.new_layout()
        run.contribute_layout(base)
        base.freeze()

        # Flip some units and re-wire incrementally...
        run._active[2] = False
        run._active[5] = False
        run._flipped = [2, 5]
        derived = base.derive()
        run.rewire_layout(derived)
        derived.freeze()

        # ...and compare against a from-scratch build of the same state.
        fresh = engine.new_layout()
        run.contribute_layout(fresh)
        fresh.freeze()
        assert _partition(derived) == _partition(fresh)
        assert derived.partition_sets() == fresh.partition_sets()
        assert derived.wiring_fingerprint() == fresh.wiring_fingerprint()
        assert derived.wiring_fingerprint() != base.wiring_fingerprint()
        # Index maps agree as functions up to renumbering: same grouping.
        assert len(derived.circuits()) == len(fresh.circuits())

    def test_derive_without_changes_adopts_components(self):
        engine = CircuitEngine(hexagon(2))
        LAYOUT_STATS.reset()
        base = engine.global_layout(label="noop")
        derived = base.derive()
        derived.freeze()
        assert LAYOUT_STATS.noop_freezes == 1
        assert _partition(derived) == _partition(base)

    def test_base_layout_survives_derived_rewiring(self):
        structure = line_structure(4)
        nodes = line_nodes(4)
        engine = CircuitEngine(structure)
        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        base = engine.new_layout()
        run.contribute_layout(base)
        base.freeze()
        snapshot = _partition(base)

        run._active[1] = False
        run._flipped = [1]
        derived = base.derive()
        run.rewire_layout(derived)
        derived.freeze()
        assert _partition(base) == snapshot  # untouched by the derivation

    def test_duplicate_assign_is_idempotent_under_exchange(self):
        # Re-assigning a pin to its own set must not leave a duplicate
        # pin-list entry behind: exchange_pins removes exactly one entry,
        # and a stale leftover would feed a phantom edge to the derived
        # freeze's adjacency rebuild (merging circuits never wired).
        engine = CircuitEngine(line_structure(3))
        a, b = Node(0, 0), Node(1, 0)
        d = a.direction_to(b)
        layout = engine.new_layout()
        layout.assign(a, "a", [(d, 0)])
        layout.assign(a, "a", [(d, 0)])  # idempotent no-op
        layout.declare(a, "b")
        layout.assign(b, "x", [(b.direction_to(a), 0)])
        layout.freeze()
        derived = layout.derive()
        derived.exchange_pins(a, "a", "b", [(d, 0)])
        derived.freeze()

        fresh = engine.new_layout()
        fresh.declare(a, "a")
        fresh.assign(a, "b", [(d, 0)])
        fresh.assign(b, "x", [(b.direction_to(a), 0)])
        fresh.freeze()
        assert _partition(derived) == _partition(fresh)

    def test_released_set_disappears(self):
        engine = CircuitEngine(line_structure(3))
        layout = engine.new_layout()
        a, b = Node(0, 0), Node(1, 0)
        layout.assign(a, "x", [(a.direction_to(b), 0)])
        layout.assign(b, "x", [(b.direction_to(a), 0)])
        layout.freeze()
        derived = layout.derive()
        derived.release(b, "x")
        derived.freeze()
        assert (b, "x") not in derived.partition_sets()
        assert (b, "x") not in derived.component_map()
        assert (a, "x") in derived.component_map()


# ----------------------------------------------------------------------
# (b) one layout build per distinct wiring in run_pasc
# ----------------------------------------------------------------------


class TestPascLayoutReuse:
    def test_one_full_build_then_derivations(self):
        structure = line_structure(64)
        nodes = line_nodes(64)
        engine = CircuitEngine(structure)
        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        LAYOUT_STATS.reset()
        result = run_pasc(engine, [run])
        assert run.node_values() == {u: i for i, u in enumerate(nodes)}
        # Exactly two from-scratch builds: the runs' layout (iteration
        # 0) and the engine-cached global termination layout, built
        # once per engine.  Every other iteration has a distinct wiring
        # and gets exactly one *incremental* computation — never a
        # rebuild per iteration.
        assert LAYOUT_STATS.full_builds == 2
        assert LAYOUT_STATS.total_builds() == result.iterations + 1
        # The compile contract rides along: every component build lowers
        # to flat arrays exactly once, and every round of the PASC loop
        # executes on the integer fast path (no id-keyed dict rounds).
        assert LAYOUT_STATS.compiles == LAYOUT_STATS.total_builds()
        assert LAYOUT_STATS.indexed_rounds == 2 * result.iterations
        assert LAYOUT_STATS.mapped_rounds == 0

    def test_derived_layouts_keep_integer_ids_stable(self):
        structure = line_structure(16)
        nodes = line_nodes(16)
        engine = CircuitEngine(structure)
        run = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        base = engine.new_layout()
        run.contribute_layout(base)
        base.freeze()
        index = base.compiled().index
        run._active[3] = False
        run._flipped = [3]
        derived = base.derive()
        run.rewire_layout(derived)
        derived.freeze()
        # Same universe -> the very same index object: integer set-ids
        # resolved against the base stay valid for the whole chain.
        assert derived.compiled().index is index
        # ...but dropping a set forces a fresh index.
        shrunk = derived.derive()
        shrunk.release(nodes[0], "pasc:p")
        shrunk.freeze()
        assert shrunk.compiled().index is not index

    def test_repeated_execution_hits_the_layout_cache(self):
        structure = line_structure(32)
        nodes = line_nodes(32)
        engine = CircuitEngine(structure)
        first = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        run_pasc(engine, [first])
        second = PascChainRun([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        LAYOUT_STATS.reset()
        result = run_pasc(engine, [second])
        # The initial wiring cache-hits (only iteration 0 is cached, by
        # design — see runner docstring); iterations 1+ derive as usual,
        # so no from-scratch build happens at all.
        assert LAYOUT_STATS.full_builds == 0
        assert LAYOUT_STATS.total_builds() <= result.iterations - 1
        assert second.node_values() == {u: i for i, u in enumerate(nodes)}
        assert result.rounds == 2 * result.iterations

    def test_tree_runs_reuse_layouts_too(self):
        structure = hexagon(2)
        root = structure.westernmost()
        _adjacency, parent = bfs_tree_adjacency(structure, root)
        engine = CircuitEngine(structure)
        run = PascTreeRun(root, parent)
        LAYOUT_STATS.reset()
        run_pasc(engine, [run])
        # Runs' layout + the engine's global termination layout.
        assert LAYOUT_STATS.full_builds == 2
        # Depths must match the BFS tree depths.
        values = run.values()
        for child, par in parent.items():
            assert values[child] == values[par] + 1

    def test_runs_on_reserved_termination_channel_fail_fast(self):
        # The termination circuit executes on its own engine-cached
        # layout; a run wiring the reserved channel would silently
        # double-drive the same physical pins, so the runner rejects it.
        from repro.sim.errors import PinConfigurationError

        structure = line_structure(4)
        nodes = line_nodes(4)
        engine = CircuitEngine(structure)
        term_channel = engine.channels - 1
        run = PascChainRun(
            [(u, "") for u in nodes],
            chain_links_for_nodes(nodes, term_channel - 1, term_channel),
        )
        with pytest.raises(PinConfigurationError, match="reserved"):
            run_pasc(engine, [run])

    def test_inclusive_iteration_cap(self):
        structure = line_structure(4)
        nodes = line_nodes(4)
        engine = CircuitEngine(structure)

        class NeverDone(PascChainRun):
            def active_units(self):
                return [self.units[0]]

        run = NeverDone([(u, "") for u in nodes], chain_links_for_nodes(nodes))
        with pytest.raises(RuntimeError, match=r"4 amoebots"):
            run_pasc(engine, [run], max_iterations=5)
        # The cap is inclusive: exactly max_iterations iterations ran
        # (2 rounds each) before the guard tripped.
        assert engine.rounds.total == 10


# ----------------------------------------------------------------------
# engine cache and listen subset
# ----------------------------------------------------------------------


class TestEngineLayoutCache:
    def test_global_layout_is_cached(self):
        engine = CircuitEngine(hexagon(2))
        assert engine.global_layout(label="g") is engine.global_layout(label="g")
        assert engine.global_layout(label="g") is not engine.global_layout(label="h")

    def test_edge_subset_layout_cached_by_content(self):
        engine = CircuitEngine(hexagon(2))
        edges = [(Node(0, 0), Node(1, 0))]
        first = engine.edge_subset_layout(edges, label="e")
        second = engine.edge_subset_layout(list(edges), label="e")
        assert first is second

    def test_listen_subset_matches_full_result(self):
        engine = CircuitEngine(hexagon(2))
        layout = engine.global_layout(label="g")
        beeps = [(next(iter(engine.structure)), "g")]
        full = engine.run_round(layout, beeps)
        listen = sorted(full)[:3]
        subset = engine.run_round(layout, beeps, listen=listen)
        assert subset == {set_id: full[set_id] for set_id in listen}
        assert engine.run_round(layout, beeps, listen=()) == {}

    def test_cache_eviction_is_bounded(self):
        cache = LayoutCache(maxsize=2)
        engine = CircuitEngine(line_structure(3))
        for i in range(4):
            cache.put(i, engine.global_layout(label=f"l{i}"))
        assert len(cache) == 2
        assert cache.get(0) is None and cache.get(3) is not None

    def test_cache_stats_are_surfaced(self):
        LAYOUT_STATS.reset()
        cache = LayoutCache(maxsize=2)
        engine = CircuitEngine(line_structure(3))
        layouts = [engine.global_layout(label=f"s{i}") for i in range(3)]
        hits0, misses0 = LAYOUT_STATS.cache_hits, LAYOUT_STATS.cache_misses
        for i, layout in enumerate(layouts):
            cache.put(i, layout)
        assert cache.evictions == 1  # layout 0 fell out of the LRU
        assert LAYOUT_STATS.cache_evictions == 1
        assert cache.get(2) is not None
        assert cache.get(0) is None
        assert (cache.hits, cache.misses) == (1, 1)
        # The process-wide probe mirrors the per-instance counters
        # (every cache in the process ticks it, hence the deltas).
        assert LAYOUT_STATS.cache_hits - hits0 == 1
        assert LAYOUT_STATS.cache_misses - misses0 == 1

    def test_scoped_cache_separates_structures(self):
        backing = LayoutCache(maxsize=8)
        engine = CircuitEngine(line_structure(3))
        scope_a = backing.scoped("a")
        scope_b = backing.scoped("b")
        layout = engine.global_layout(label="shared")
        scope_a.put("k", layout)
        assert scope_a.get("k") is layout
        assert scope_b.get("k") is None
        assert len(backing) == 1


# ----------------------------------------------------------------------
# (c) round totals bit-identical to seed
# ----------------------------------------------------------------------

# Captured from the seed revision (commit 2191028) before the
# layout-reuse refactor; these totals must never drift.
SEED_ROUNDS = {
    "hexagon:3": {"spsp": 24, "sssp": 40, "spt": 40, "forest": 54, "election": 1},
    "lollipop:2:8": {"spsp": 24, "sssp": 42, "spt": 42, "forest": 219, "election": 1},
}
SEED_WINNERS = {"hexagon:3": Node(-2, 0), "lollipop:2:8": Node(-1, 1)}


@pytest.mark.parametrize("spec", sorted(SEED_ROUNDS))
class TestRoundTotalsMatchSeed:
    @pytest.fixture(
        autouse=True,
        params=[
            "python",
            pytest.param("numpy", marks=pytest.mark.skipif(
                numpy_or_none() is None, reason="numpy not installed"
            )),
        ],
    )
    def backend(self, request):
        # The seed totals are backend-invariant by construction: the
        # numpy lowering must reproduce them bit for bit, so the whole
        # class runs once per backend.
        with use_backend(request.param):
            yield request.param

    def test_spsp_and_sssp(self, spec):
        structure = build_structure(spec)
        nodes = sorted(structure.nodes)
        src, dst = nodes[0], nodes[-1]
        engine = CircuitEngine(structure)
        spsp = solve_spf(structure, [src], [dst], engine=engine)
        assert spsp.rounds == SEED_ROUNDS[spec]["spsp"]
        engine = CircuitEngine(structure)
        sssp = solve_spf(structure, [src], list(structure.nodes), engine=engine)
        assert sssp.rounds == SEED_ROUNDS[spec]["sssp"]

    def test_spt(self, spec):
        structure = build_structure(spec)
        nodes = sorted(structure.nodes)
        engine = CircuitEngine(structure)
        shortest_path_tree(engine, structure, nodes[0], set(nodes))
        assert engine.rounds.total == SEED_ROUNDS[spec]["spt"]

    def test_forest(self, spec):
        structure = build_structure(spec)
        nodes = sorted(structure.nodes)
        sources = [nodes[0], nodes[-1], nodes[len(nodes) // 2]]
        engine = CircuitEngine(structure)
        shortest_path_forest(engine, structure, sources)
        assert engine.rounds.total == SEED_ROUNDS[spec]["forest"]

    def test_ett_election(self, spec):
        structure = build_structure(spec)
        nodes = sorted(structure.nodes)
        root = structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(structure, root)
        tour = build_euler_tour(root, adjacency)
        engine = CircuitEngine(structure)
        marked = mark_one_outgoing_edge(tour, [nodes[2], nodes[5]])
        winner = elect_first_marked(engine, tour, marked)
        assert engine.rounds.total == SEED_ROUNDS[spec]["election"]
        assert winner == SEED_WINNERS[spec]

    def test_solves_ride_the_grid_index_build_path(self, spec):
        # The seed-identical round totals above must be produced by the
        # int-indexed build path: the structure's GridIndex is built
        # (once — substructures carry their own), layouts keep integer
        # pin tables, and every round executes on the integer fast path.
        from repro.grid.compiled import GRID_STATS

        structure = build_structure(spec)
        nodes = sorted(structure.nodes)
        engine = CircuitEngine(structure)
        GRID_STATS.reset()
        LAYOUT_STATS.reset()
        solution = solve_spf(structure, [nodes[0]], list(structure.nodes), engine=engine)
        assert solution.rounds == SEED_ROUNDS[spec]["sssp"]
        assert structure._grid_index is not None
        assert GRID_STATS.full_builds >= 1
        assert GRID_STATS.derives == 0  # no edits, so no derived indexes
        assert LAYOUT_STATS.mapped_rounds == 0  # all rounds stayed indexed


class TestLayoutStatsChainConsistency:
    """LAYOUT_STATS invariants across long derive()/release() chains.

    The counters are the probe CI uses to catch per-round rebuilds, so
    their algebra must stay consistent no matter how long a derive
    chain runs or how the universe changes along it:

    * every freeze is counted exactly once, as full, incremental, or
      no-op;
    * ``compiles`` equals the non-noop freezes (noop freezes adopt the
      base arrays without compiling);
    * derive chains never count as from-scratch builds, even when
      ``release`` shrinks the partition-set universe (the fallback
      relower is still an incremental build).
    """

    def _snapshot(self):
        return (
            LAYOUT_STATS.full_builds,
            LAYOUT_STATS.incremental_builds,
            LAYOUT_STATS.noop_freezes,
            LAYOUT_STATS.compiles,
        )

    def test_long_rewire_chain_counts_one_incremental_per_freeze(self):
        structure = hexagon(3)
        engine = CircuitEngine(structure)
        nodes = sorted(structure.nodes)
        layout = engine.global_layout("chain")
        LAYOUT_STATS.reset()
        current = layout
        hops = 12
        for i in range(hops):
            clone = current.derive()
            node = nodes[i % len(nodes)]
            pins = [(d, 1) for d in structure.occupied_directions(node)]
            clone.reassign(node, "chain", pins if i % 2 == 0 else [])
            clone.freeze()
            current = clone
        assert LAYOUT_STATS.full_builds == 0
        assert LAYOUT_STATS.incremental_builds == hops
        assert LAYOUT_STATS.noop_freezes == 0
        assert LAYOUT_STATS.compiles == hops

    def test_noop_freezes_adopt_without_compiling(self):
        structure = hexagon(2)
        engine = CircuitEngine(structure)
        layout = engine.global_layout("noop")
        LAYOUT_STATS.reset()
        current = layout
        for _ in range(5):
            clone = current.derive()
            clone.freeze()  # no re-wiring at all
            current = clone
        assert LAYOUT_STATS.noop_freezes == 5
        assert LAYOUT_STATS.compiles == 0
        assert LAYOUT_STATS.total_builds() == 0

    def test_release_chain_shrinking_universe_stays_incremental(self):
        structure = hexagon(2)
        engine = CircuitEngine(structure)
        nodes = sorted(structure.nodes)
        layout = engine.new_layout()
        for u in structure:
            pins = [(d, 0) for d in structure.occupied_directions(u)]
            layout.assign(u, "net", pins)
        layout.freeze()
        LAYOUT_STATS.reset()
        current = layout
        released = 0
        for u in nodes[: len(nodes) // 2]:
            clone = current.derive()
            clone.release(u, "net")
            clone.freeze()
            released += 1
            current = clone
        # Universe changes force the relower fallback, but a derive is
        # never miscounted as a from-scratch build.
        assert LAYOUT_STATS.full_builds == 0
        assert LAYOUT_STATS.incremental_builds == released
        assert LAYOUT_STATS.compiles == released
        assert len(current.partition_sets()) == len(nodes) - released

    def test_mixed_chain_totals_add_up(self):
        structure = hexagon(2)
        engine = CircuitEngine(structure)
        nodes = sorted(structure.nodes)
        layout = engine.global_layout("mix")
        LAYOUT_STATS.reset()
        current = layout
        freezes = 0
        for i, u in enumerate(nodes[:9]):
            clone = current.derive()
            if i % 3 == 0:
                pass  # noop freeze
            elif i % 3 == 1:
                clone.reassign(u, "mix", [(structure.occupied_directions(u)[0], 2)])
            else:
                clone.release(u, "mix")
                clone.declare(u, "mix")  # re-declared empty: same universe
            clone.freeze()
            freezes += 1
            current = clone
        assert (
            LAYOUT_STATS.total_builds() + LAYOUT_STATS.noop_freezes == freezes
        )
        assert LAYOUT_STATS.compiles == LAYOUT_STATS.total_builds()
        assert LAYOUT_STATS.full_builds == 0
