"""Tests for portals, portal graphs, implicit portal trees (§2.3, §3.5)."""

import random

import pytest

from repro.grid.coords import Node
from repro.grid.directions import Axis
from repro.grid.oracle import bfs_distances
from repro.portals.portals import PortalSystem, portal_distance_identity
from repro.workloads import (
    comb,
    hexagon,
    line_structure,
    parallelogram,
    random_hole_free,
    staircase,
    triangle,
)

ALL_SHAPES = [
    hexagon(3),
    parallelogram(8, 4),
    triangle(7),
    comb(4, 4),
    staircase(4, 3),
    random_hole_free(120, seed=5),
    random_hole_free(90, seed=6, compactness=0.05),
]


class TestPortalPartition:
    @pytest.mark.parametrize("axis", list(Axis))
    def test_portals_partition_the_structure(self, axis):
        for s in ALL_SHAPES:
            system = PortalSystem(s, axis)
            seen = set()
            for portal in system.portals:
                for u in portal.nodes:
                    assert u not in seen
                    seen.add(u)
            assert seen == set(s.nodes)

    @pytest.mark.parametrize("axis", list(Axis))
    def test_portal_nodes_contiguous_on_line(self, axis):
        s = hexagon(3)
        system = PortalSystem(s, axis)
        pos = axis.directions[0]
        for portal in system.portals:
            for u, v in zip(portal.nodes, portal.nodes[1:]):
                assert u.neighbor(pos) == v

    def test_portal_of_consistency(self):
        s = parallelogram(6, 3)
        system = PortalSystem(s, Axis.X)
        for portal in system.portals:
            for u in portal.nodes:
                assert system.portal_of[u] is portal

    def test_representative_is_first_node(self):
        s = hexagon(2)
        for axis in Axis:
            system = PortalSystem(s, axis)
            for portal in system.portals:
                assert portal.representative == portal.nodes[0]

    def test_x_portals_are_rows(self):
        s = parallelogram(5, 3)
        system = PortalSystem(s, Axis.X)
        assert system.portal_count() == 3
        for portal in system.portals:
            assert len(portal) == 5


class TestPortalGraphTree:
    @pytest.mark.parametrize("axis", list(Axis))
    def test_lemma9_portal_graph_is_tree(self, axis):
        for s in ALL_SHAPES:
            assert PortalSystem(s, axis).is_portal_graph_tree()

    def test_portal_graph_of_holey_structure_has_cycle(self):
        from repro.grid.structure import AmoebotStructure

        ring = AmoebotStructure(
            [n for n in hexagon(2).nodes if n not in hexagon(0).nodes],
            require_hole_free=False,
        )
        with pytest.raises(AssertionError):
            PortalSystem(ring, Axis.X)

    def test_adjacency_symmetric(self):
        s = random_hole_free(80, seed=1)
        for axis in Axis:
            system = PortalSystem(s, axis)
            for p, neighbors in system.portal_adjacency.items():
                for q in neighbors:
                    assert p in system.portal_adjacency[q]


class TestImplicitPortalTree:
    @pytest.mark.parametrize("axis", list(Axis))
    def test_spanning_tree(self, axis):
        for s in ALL_SHAPES:
            system = PortalSystem(s, axis)
            edge_count = (
                sum(len(v) for v in system.implicit_adjacency.values()) // 2
            )
            assert edge_count == len(s) - 1
            assert set(system.implicit_adjacency) == set(s.nodes)

    @pytest.mark.parametrize("axis", list(Axis))
    def test_contains_all_axis_parallel_edges(self, axis):
        s = hexagon(3)
        system = PortalSystem(s, axis)
        pos = axis.directions[0]
        for u in s:
            v = u.neighbor(pos)
            if v in s:
                assert v in system.implicit_adjacency[u]

    def test_one_connector_per_adjacent_portal_pair(self):
        for s in ALL_SHAPES:
            for axis in Axis:
                system = PortalSystem(s, axis)
                for p1, neighbors in system.portal_adjacency.items():
                    for p2 in neighbors:
                        u, v = system.connector[(p1, p2)]
                        assert u in p1.nodes and v in p2.nodes
                        assert u.is_adjacent(v)

    def test_tree_membership_is_locally_decidable(self):
        s = random_hole_free(100, seed=8)
        for axis in Axis:
            system = PortalSystem(s, axis)
            for u in s:
                from_rule = {u.neighbor(d) for d in system.tree_directions(u)}
                from_tree = set(system.implicit_adjacency[u])
                # The local rule may miss an edge selected by the *other*
                # endpoint, but must never add one.
                assert from_rule <= from_tree


class TestLemma11:
    @pytest.mark.parametrize("shape_index", range(len(ALL_SHAPES)))
    def test_distance_identity(self, shape_index):
        s = ALL_SHAPES[shape_index]
        systems = {axis: PortalSystem(s, axis) for axis in Axis}
        rng = random.Random(shape_index)
        nodes = sorted(s.nodes)
        for _ in range(12):
            u, v = rng.choice(nodes), rng.choice(nodes)
            d = bfs_distances(s, [u])[v]
            assert portal_distance_identity(s, systems, u, v, d)

    def test_identity_on_single_line(self):
        s = line_structure(10)
        systems = {axis: PortalSystem(s, axis) for axis in Axis}
        u, v = Node(0, 0), Node(9, 0)
        # dist_x = 0 (same portal); dist_y = dist_z = 9.
        assert portal_distance_identity(s, systems, u, v, 9)


class TestPortalGraphQueries:
    def test_bfs_distances_on_portal_graph(self):
        s = parallelogram(4, 4)
        system = PortalSystem(s, Axis.X)
        bottom = system.portal_of[Node(0, 0)]
        distances = system.portal_graph_distances(bottom)
        assert distances[system.portal_of[Node(0, 3)]] == 3

    def test_parent_relation_rooted(self):
        s = parallelogram(4, 4)
        system = PortalSystem(s, Axis.X)
        root = system.portal_of[Node(0, 0)]
        parent = system.parent_relation(root)
        assert parent[root] is None
        assert sum(1 for v in parent.values() if v is None) == 1

    def test_portals_containing(self):
        s = parallelogram(4, 2)
        system = PortalSystem(s, Axis.X)
        found = system.portals_containing([Node(0, 0), Node(3, 0), Node(1, 1)])
        assert len(found) == 2
