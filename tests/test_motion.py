"""Tests for token routing along shortest path forests."""

import pytest

from repro.grid.coords import Node
from repro.motion import RoutingPlan, route_tokens
from repro.reference import ref_shortest_path_forest
from repro.sim.engine import CircuitEngine
from repro.spf.types import Forest
from repro.workloads import hexagon, random_hole_free, spread_nodes


def chain_forest(n):
    nodes = [Node(i, 0) for i in range(n)]
    parent = {nodes[i]: nodes[i - 1] for i in range(1, n)}
    return Forest({nodes[0]}, parent, set(nodes)), nodes


class TestSingleToken:
    def test_token_reaches_source(self):
        forest, nodes = chain_forest(6)
        stats = route_tokens(RoutingPlan(forest, [nodes[5]]))
        assert stats.token_paths[0][-1] == nodes[0]
        assert stats.steps == 5
        assert stats.total_moves == 5

    def test_token_already_at_source(self):
        forest, nodes = chain_forest(3)
        stats = route_tokens(RoutingPlan(forest, [nodes[0]]))
        assert stats.steps == 0
        assert stats.total_moves == 0

    def test_origin_outside_forest_rejected(self):
        forest, _nodes = chain_forest(3)
        with pytest.raises(ValueError):
            RoutingPlan(forest, [Node(9, 9)])


class TestConvoys:
    def test_chain_of_tokens_moves_in_lockstep(self):
        forest, nodes = chain_forest(6)
        # Tokens on every non-source node: a full convoy.
        origins = nodes[1:]
        stats = route_tokens(RoutingPlan(forest, origins))
        # The head is absorbed each step; the convoy drains one per step
        # plus pipeline: makespan is depth of the farthest token.
        assert stats.steps == 5
        assert stats.total_moves == sum(range(1, 6))

    def test_merging_branches_respect_occupancy(self):
        s = hexagon(2)
        sources = [sorted(s.nodes)[0]]
        forest = ref_shortest_path_forest(s, sources)
        origins = [u for u in sorted(s.nodes) if forest.depth_of(u) >= 2]
        stats = route_tokens(RoutingPlan(forest, origins))
        for t, path in stats.token_paths.items():
            assert path[-1] in forest.sources
        # No path may teleport: consecutive entries adjacent.
        for path in stats.token_paths.values():
            for a, b in zip(path, path[1:]):
                assert a.is_adjacent(b)

    def test_congestion_overhead_bounded(self):
        s = random_hole_free(80, seed=301)
        sources = spread_nodes(s, 3)
        forest = ref_shortest_path_forest(s, sources)
        origins = [u for u in sorted(s.nodes) if u not in forest.sources][:20]
        stats = route_tokens(RoutingPlan(forest, origins))
        assert stats.congestion_overhead >= 1.0
        assert stats.steps <= stats.lower_bound + len(origins)


class TestEndToEnd:
    def test_route_over_strict_forest(self):
        from repro.spf.forest import shortest_path_forest

        s = random_hole_free(70, seed=302)
        sources = spread_nodes(s, 2)
        forest = shortest_path_forest(CircuitEngine(s), s, sources)
        origins = sorted(s.nodes)[-6:]
        stats = route_tokens(RoutingPlan(forest, origins))
        for t, origin in enumerate(origins):
            assert stats.token_paths[t][0] == origin
            assert stats.token_paths[t][-1] in forest.sources
