"""Tests for token routing along shortest path forests."""

import pytest

from repro.grid.coords import Node
from repro.motion import RoutingPlan, route_tokens
from repro.reference import ref_shortest_path_forest
from repro.sim.engine import CircuitEngine
from repro.spf.types import Forest
from repro.workloads import hexagon, random_hole_free, spread_nodes


def chain_forest(n):
    nodes = [Node(i, 0) for i in range(n)]
    parent = {nodes[i]: nodes[i - 1] for i in range(1, n)}
    return Forest({nodes[0]}, parent, set(nodes)), nodes


class TestSingleToken:
    def test_token_reaches_source(self):
        forest, nodes = chain_forest(6)
        stats = route_tokens(RoutingPlan(forest, [nodes[5]]))
        assert stats.token_paths[0][-1] == nodes[0]
        assert stats.steps == 5
        assert stats.total_moves == 5

    def test_token_already_at_source(self):
        forest, nodes = chain_forest(3)
        stats = route_tokens(RoutingPlan(forest, [nodes[0]]))
        assert stats.steps == 0
        assert stats.total_moves == 0

    def test_origin_outside_forest_rejected(self):
        forest, _nodes = chain_forest(3)
        with pytest.raises(ValueError):
            RoutingPlan(forest, [Node(9, 9)])


class TestConvoys:
    def test_chain_of_tokens_moves_in_lockstep(self):
        forest, nodes = chain_forest(6)
        # Tokens on every non-source node: a full convoy.
        origins = nodes[1:]
        stats = route_tokens(RoutingPlan(forest, origins))
        # The head is absorbed each step; the convoy drains one per step
        # plus pipeline: makespan is depth of the farthest token.
        assert stats.steps == 5
        assert stats.total_moves == sum(range(1, 6))

    def test_merging_branches_respect_occupancy(self):
        s = hexagon(2)
        sources = [sorted(s.nodes)[0]]
        forest = ref_shortest_path_forest(s, sources)
        origins = [u for u in sorted(s.nodes) if forest.depth_of(u) >= 2]
        stats = route_tokens(RoutingPlan(forest, origins))
        for t, path in stats.token_paths.items():
            assert path[-1] in forest.sources
        # No path may teleport: consecutive entries adjacent.
        for path in stats.token_paths.values():
            for a, b in zip(path, path[1:]):
                assert a.is_adjacent(b)

    def test_congestion_overhead_bounded(self):
        s = random_hole_free(80, seed=301)
        sources = spread_nodes(s, 3)
        forest = ref_shortest_path_forest(s, sources)
        origins = [u for u in sorted(s.nodes) if u not in forest.sources][:20]
        stats = route_tokens(RoutingPlan(forest, origins))
        assert stats.congestion_overhead >= 1.0
        assert stats.steps <= stats.lower_bound + len(origins)


class TestConvoyTieBreaks:
    @staticmethod
    def _junction_forest():
        # Y-shaped forest: two branches merge one hop before the source.
        root = Node(0, 0)
        junction = Node(1, 0)
        a, b = Node(2, 0), Node(1, 1)  # both point at the junction
        forest = Forest(
            {root},
            {junction: root, a: junction, b: junction},
            {root, junction, a, b},
        )
        return forest, root, junction, a, b

    def test_contested_cell_serializes_exactly_one_waits(self):
        forest, root, junction, a, b = self._junction_forest()
        stats = route_tokens(RoutingPlan(forest, [a, b]))
        # The junction admits one token per step: the loser waits exactly
        # one step (steps = lower bound + 1), and neither token ever
        # makes a spurious move (paths are exactly origin->junction->root).
        assert stats.lower_bound == 2
        assert stats.steps == 3
        assert stats.total_moves == 4
        assert stats.token_paths[0] == [a, junction, root]
        assert stats.token_paths[1] == [b, junction, root]
        assert stats.congestion_overhead == pytest.approx(1.5)

    def test_tie_break_is_deterministic_under_replay(self):
        forest, _root, _junction, a, b = self._junction_forest()
        first = route_tokens(RoutingPlan(forest, [a, b]))
        second = route_tokens(RoutingPlan(forest, [a, b]))
        assert first.token_paths == second.token_paths
        assert first.steps == second.steps
        # Swapping token ids swaps which path belongs to which token —
        # the resolution keys on the id, not on the origin cell.
        swapped = route_tokens(RoutingPlan(forest, [b, a]))
        assert swapped.token_paths[0][0] == b
        assert swapped.token_paths[1][0] == a
        assert swapped.steps == first.steps

    def test_blocked_token_keeps_position_in_path(self):
        forest, nodes = chain_forest(4)
        # A stalled token ahead: token 0 at depth 1 parks immediately
        # after one step; token 1 behind must wait exactly when blocked.
        stats = route_tokens(RoutingPlan(forest, [nodes[1], nodes[2]]))
        assert stats.token_paths[0] == [nodes[1], nodes[0]]
        # Token 1 advances in lockstep (convoy): never waits here.
        assert stats.token_paths[1] == [nodes[2], nodes[1], nodes[0]]

    def test_convoy_through_source_absorption(self):
        # Tokens already at the source are absorbed at step 0 and leave
        # the cell free for the convoy behind them.
        forest, nodes = chain_forest(3)
        stats = route_tokens(RoutingPlan(forest, [nodes[0], nodes[1], nodes[2]]))
        assert stats.steps == 2
        assert stats.total_moves == 3


class TestMidFlightForestSwap:
    def test_on_step_swap_rescues_stranded_tokens(self):
        forest, nodes = chain_forest(6)
        # After step 1, swap to a forest truncated at depth 2: tokens
        # beyond it are stranded and must be re-seated.
        short = Forest(
            {nodes[0]},
            {nodes[1]: nodes[0], nodes[2]: nodes[1]},
            {nodes[0], nodes[1], nodes[2]},
        )
        swaps = {1: short}
        stats = route_tokens(
            RoutingPlan(forest, [nodes[5]]),
            on_step=lambda step: swaps.pop(step, None),
        )
        assert stats.rescued == 1
        assert stats.token_paths[0][-1] == nodes[0]

    def test_on_step_none_keeps_forest(self):
        forest, nodes = chain_forest(4)
        calls = []
        stats = route_tokens(
            RoutingPlan(forest, [nodes[3]]),
            on_step=lambda step: calls.append(step),
        )
        assert stats.rescued == 0
        assert calls == list(range(1, stats.steps + 1))


class TestEndToEnd:
    def test_route_over_strict_forest(self):
        from repro.spf.forest import shortest_path_forest

        s = random_hole_free(70, seed=302)
        sources = spread_nodes(s, 2)
        forest = shortest_path_forest(CircuitEngine(s), s, sources)
        origins = sorted(s.nodes)[-6:]
        stats = route_tokens(RoutingPlan(forest, origins))
        for t, origin in enumerate(origins):
            assert stats.token_paths[t][0] == origin
            assert stats.token_paths[t][-1] in forest.sources
