"""Chaos suite: the resilience layer under injected faults.

Uses the injectors from :mod:`tests.chaos` to prove the guarantees the
resilience layer makes:

* a campaign survives worker processes dying mid-trial — transient
  crashes are retried on fresh pools, only a trial that keeps killing
  its worker is quarantined (as a structured store record, never an
  escaped ``BrokenProcessPool``);
* the daemon keeps serving warm cache hits while shedding cold work at
  full queue, times out jobs past their deadline (freeing the worker),
  and treats a flaky result store as degraded caching, not failure;
* a client streaming from a daemon that dies mid-stream gets a typed
  :class:`~repro.service.TransportError`, not a raw socket exception.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.api import Session, SolveRequest
from repro.experiments import CampaignRunner, ResultStore
from repro.experiments.runner import QUARANTINE_RECORD
from repro.experiments.spec import CampaignSpec, ScenarioSpec
from repro.resilience import RetryPolicy
from repro.service import (
    JobSpec,
    ServiceClient,
    ServiceOverloaded,
    SolverService,
    TransportError,
)

from tests.chaos import (
    CHAOS_DIR_ENV,
    FlakyStore,
    GatedSession,
    arm_crash_once,
    arm_poison,
    chaos_crash_trial,
)

#: Fast retries so crash-recovery tests don't sleep their way to minutes.
FAST_RETRY = RetryPolicy(attempts=3, base_delay_s=0.01, max_delay_s=0.05)


def drill_campaign(n: int, name: str = "chaos") -> CampaignSpec:
    """``n`` small, distinct trials (one per seed)."""
    return CampaignSpec(
        name=f"{name}-campaign",
        scenarios=(
            ScenarioSpec(
                name=name,
                shape="random:30:1",
                ks=(1,),
                ls=(1,),
                seeds=tuple(range(n)),
            ),
        ),
    )


class TestWorkerCrashRecovery:
    def test_fifty_trials_with_three_poison_workers(self, tmp_path, monkeypatch):
        """The acceptance drill: 50 trials, 3 trials that always kill
        their worker — >= 47 results, 3 structured quarantine records,
        and no BrokenProcessPool escaping the runner."""
        campaign = drill_campaign(50)
        trials = campaign.trials()
        poison = trials[7], trials[23], trials[41]
        for trial in poison:
            arm_poison(tmp_path, trial)
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        store = ResultStore(tmp_path / "results.jsonl")
        runner = CampaignRunner(
            store=store, workers=2, retry=FAST_RETRY, trial_fn=chaos_crash_trial
        )
        report = runner.run(campaign, resume=False)

        assert len(report.results) >= 47
        assert len(report.quarantined) == 3
        assert {r["key"] for r in report.quarantined} == {
            t.key() for t in poison
        }
        for record in report.quarantined:
            assert record["record"] == QUARANTINE_RECORD
            assert record["attempts"] == FAST_RETRY.attempts
            assert "BrokenProcessPool" in record["error"]
            # ...and it was persisted, not just reported.
            assert store.get(record["key"])["record"] == QUARANTINE_RECORD
        assert report.total == 50

    def test_transient_crashes_recover_everything(self, tmp_path, monkeypatch):
        campaign = drill_campaign(6)
        trials = campaign.trials()
        for trial in trials[1:4]:
            arm_crash_once(tmp_path, trial)
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        runner = CampaignRunner(
            store=ResultStore(tmp_path / "results.jsonl"),
            workers=2,
            retry=FAST_RETRY,
            trial_fn=chaos_crash_trial,
        )
        report = runner.run(campaign, resume=False)
        assert len(report.results) == 6
        assert report.quarantined == []
        assert report.retries >= 3
        assert "retries" in report.summary()

    def test_inline_runner_quarantines_raising_trial(self, tmp_path):
        """workers=1 (no processes): in-worker exceptions follow the
        same retry-then-quarantine path."""
        campaign = drill_campaign(3)
        bad_key = campaign.trials()[1].key()
        calls: dict = {}

        def flaky_trial(trial):
            calls[trial.key()] = calls.get(trial.key(), 0) + 1
            if trial.key() == bad_key:
                raise ValueError("injected trial fault")
            from repro.experiments.runner import execute_trial

            return execute_trial(trial)

        runner = CampaignRunner(
            store=ResultStore(tmp_path / "results.jsonl"),
            workers=1,
            retry=FAST_RETRY,
            trial_fn=flaky_trial,
        )
        report = runner.run(campaign, resume=False)
        assert len(report.results) == 2
        assert [r["error"] for r in report.quarantined] == [
            "ValueError: injected trial fault"
        ]
        assert calls[bad_key] == FAST_RETRY.attempts

    def test_quarantine_record_does_not_poison_resume(self, tmp_path, monkeypatch):
        """A later run re-attempts a quarantined trial instead of
        serving the failure record as a cached result."""
        campaign = drill_campaign(3)
        poison = campaign.trials()[1]
        arm_poison(tmp_path, poison)
        monkeypatch.setenv(CHAOS_DIR_ENV, str(tmp_path))
        store = ResultStore(tmp_path / "results.jsonl")
        first = CampaignRunner(
            store=store, workers=2, retry=FAST_RETRY, trial_fn=chaos_crash_trial
        ).run(campaign, resume=False)
        assert len(first.quarantined) == 1

        # The fault is fixed (marker removed): resume recomputes exactly
        # the quarantined trial and serves the other two from cache.
        (tmp_path / f"poison-{poison.key()}").unlink()
        second = CampaignRunner(
            store=store, workers=2, retry=FAST_RETRY, trial_fn=chaos_crash_trial
        ).run(campaign, resume=True)
        assert len(second.results) == 3
        assert second.quarantined == []
        assert second.cache_hits == 2
        assert second.executed == 1


class TestDaemonUnderChaos:
    def test_flaky_store_degrades_caching_not_jobs(self):
        store = FlakyStore(fail_every=2)
        service = SolverService(session=Session(store=store), workers=1)
        jobs = [
            service.submit(
                JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=s))
            )
            for s in range(3)
        ]
        states = [service.wait(j.id, timeout=60).state for j in jobs]
        assert states == ["done", "done", "done"]
        assert service.session.stats.store_failures >= 1
        assert store.injected_failures >= 1
        service.shutdown()

    def test_deadline_times_out_job_and_frees_worker(self):
        gated = GatedSession(Session())
        service = SolverService(session=gated, workers=1)
        doomed = service.submit(
            JobSpec(
                request=SolveRequest(shape="hexagon:3", l=2, seed=1),
                deadline_s=0.1,
            )
        )
        assert gated.entered.wait(timeout=10)
        follower = service.submit(
            JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=2))
        )
        timed_out = service.wait(doomed.id, timeout=30)
        assert timed_out.state == "timeout"
        assert timed_out.result["record"] == "timeout"
        assert timed_out.result["deadline_s"] == 0.1
        assert "partial" in timed_out.result
        events = [e["event"] for e in timed_out.events(timeout=0)]
        assert "timeout" in events
        gated.release()
        # The worker survived the timeout and still drains the queue.
        assert service.wait(follower.id, timeout=60).state == "done"
        assert service._timeouts_total.value() == 1
        service.shutdown()

    def test_deadline_expiring_in_queue_never_occupies_worker(self):
        gated = GatedSession(Session())
        service = SolverService(session=gated, workers=1)
        blocker = service.submit(
            JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=1))
        )
        assert gated.entered.wait(timeout=10)
        stale = service.submit(
            JobSpec(
                request=SolveRequest(shape="hexagon:3", l=2, seed=2),
                deadline_s=0.05,
            )
        )
        time.sleep(0.1)  # expire while queued behind the blocked worker
        gated.release()
        assert service.wait(stale.id, timeout=30).state == "timeout"
        assert stale.result["partial"] == {}
        assert service.wait(blocker.id, timeout=60).state == "done"
        service.shutdown()

    def test_full_queue_sheds_cold_serves_warm(self):
        store = ResultStore()
        warm_request = SolveRequest(shape="hexagon:3", l=3, seed=9)
        Session(store=store).run(warm_request)  # pre-warm one record

        gated = GatedSession(Session(store=store))
        service = SolverService(session=gated, workers=1, max_queue=1)
        running = service.submit(
            JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=1))
        )
        assert gated.entered.wait(timeout=10)
        queued = service.submit(
            JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=2))
        )
        assert service.health()["status"] == "overloaded"
        assert service.health()["ok"] is False

        # Cold work is shed with a retry hint and a terminal job...
        with pytest.raises(ServiceOverloaded) as err:
            service.submit(
                JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=3))
            )
        assert err.value.retry_after_s >= 1
        assert err.value.job.state == "shed"
        assert service._sheds_total.value() == 1
        # ...but a warm hit is still served inline, instantly.
        warm = service.submit(JobSpec(request=warm_request))
        assert warm.state == "done"
        assert warm.result["cached"] is True
        # fresh=True insists on recomputation, so at full queue it sheds.
        with pytest.raises(ServiceOverloaded):
            service.submit(JobSpec(request=warm_request, fresh=True))

        gated.release()
        assert service.wait(running.id, timeout=60).state == "done"
        assert service.wait(queued.id, timeout=60).state == "done"
        assert service.health()["status"] == "ok"
        terminal = {"done", "failed", "timeout", "shed"}
        assert all(j["state"] in terminal for j in service.jobs())
        service.shutdown()

    def test_queue_position_reported_for_queued_jobs(self):
        gated = GatedSession(Session())
        service = SolverService(session=gated, workers=1, max_queue=4)
        service.submit(
            JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=1))
        )
        assert gated.entered.wait(timeout=10)
        waiting = [
            service.submit(
                JobSpec(request=SolveRequest(shape="hexagon:3", l=2, seed=s))
            )
            for s in (2, 3)
        ]
        assert service.queue_position(waiting[0].id) == 0
        assert service.queue_position(waiting[1].id) == 1
        with pytest.raises(KeyError):
            service.queue_position("no-such-job")
        gated.release()
        for job in waiting:
            service.wait(job.id, timeout=60)
        assert service.queue_position(waiting[0].id) is None
        service.shutdown()


class _FakeStreamDaemon:
    """One-connection HTTP server that dies mid-stream, by script.

    Sends real response headers plus ``lines``, then either stalls
    (``stall_s``) or closes the socket — exactly what a daemon crash
    looks like to a streaming client.
    """

    def __init__(self, lines, stall_s: float = 0.0):
        self.lines = lines
        self.stall_s = stall_s
        self._server = socket.create_server(("127.0.0.1", 0))
        self.port = self._server.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        conn, _addr = self._server.accept()
        with conn:
            conn.recv(65536)  # the request; content is irrelevant
            head = b"HTTP/1.1 200 OK\r\nContent-Type: application/x-ndjson\r\n\r\n"
            conn.sendall(head + b"".join(self.lines))
            if self.stall_s:
                time.sleep(self.stall_s)

    def close(self) -> None:
        self._server.close()
        self._thread.join(timeout=5)


class TestStreamFailureTyping:
    def test_daemon_death_mid_stream_is_typed(self):
        fake = _FakeStreamDaemon(
            [b'{"event": "queued"}\n', b'{"event": "running"}\n']
        )
        client = ServiceClient("127.0.0.1", fake.port, timeout=5)
        events = []
        with pytest.raises(TransportError, match="without the terminal"):
            for event in client.stream("j-1"):
                events.append(event)
        assert [e["event"] for e in events] == ["queued", "running"]
        fake.close()

    def test_stream_idle_timeout_is_typed(self):
        fake = _FakeStreamDaemon([b'{"event": "queued"}\n'], stall_s=2.0)
        client = ServiceClient(
            "127.0.0.1", fake.port, connect_timeout=5, read_timeout=0.2
        )
        with pytest.raises(TransportError, match="idle"):
            list(client.stream("j-1"))
        fake.close()

    def test_dead_daemon_connect_is_typed(self):
        sock = socket.create_server(("127.0.0.1", 0))
        port = sock.getsockname()[1]
        sock.close()  # nothing listens here any more
        client = ServiceClient("127.0.0.1", port, timeout=1)
        with pytest.raises(TransportError):
            list(client.stream("j-1"))
        with pytest.raises(TransportError):
            client.health()
