"""Tests for round accounting and result tables."""

import pytest

from repro.metrics.records import ExperimentRecord, ResultTable, growth_ratio, log_fit_slope
from repro.metrics.rounds import RoundCounter


class TestRoundCounter:
    def test_starts_at_zero(self):
        assert RoundCounter().total == 0

    def test_tick(self):
        c = RoundCounter()
        c.tick()
        c.tick(4)
        assert c.total == 5

    def test_negative_tick_rejected(self):
        with pytest.raises(ValueError):
            RoundCounter().tick(-1)

    def test_sections_attribute_rounds(self):
        c = RoundCounter()
        with c.section("alpha"):
            c.tick(3)
        c.tick(2)
        assert c.section_total("alpha") == 3
        assert c.total == 5

    def test_nested_sections_inclusive(self):
        c = RoundCounter()
        with c.section("outer"):
            c.tick(1)
            with c.section("inner"):
                c.tick(2)
        assert c.section_total("inner") == 2
        assert c.section_total("outer") == 3

    def test_breakdown(self):
        c = RoundCounter()
        with c.section("a"):
            c.tick(2)
        assert c.breakdown() == {"a": 2}

    def test_reset(self):
        c = RoundCounter()
        with c.section("a"):
            c.tick(2)
        c.reset()
        assert c.total == 0
        assert c.breakdown() == {}


class TestParallelGroup:
    def test_charges_maximum_branch(self):
        c = RoundCounter()
        with c.parallel() as group:
            with group.branch():
                c.tick(7)
            with group.branch():
                c.tick(3)
        assert c.total == 7

    def test_empty_group_costs_nothing(self):
        c = RoundCounter()
        with c.parallel():
            pass
        assert c.total == 0

    def test_nested_parallel_groups(self):
        c = RoundCounter()
        with c.parallel() as outer:
            with outer.branch():
                with c.parallel() as inner:
                    with inner.branch():
                        c.tick(2)
                    with inner.branch():
                        c.tick(5)
                c.tick(1)  # sequential tail inside the branch
            with outer.branch():
                c.tick(4)
        assert c.total == 6  # max(5 + 1, 4)

    def test_branch_outside_group_rejected(self):
        c = RoundCounter()
        group = c.parallel()
        with pytest.raises(RuntimeError):
            with group.branch():
                pass

    def test_surrounding_ticks_unaffected(self):
        c = RoundCounter()
        c.tick(1)
        with c.parallel() as group:
            with group.branch():
                c.tick(2)
        c.tick(1)
        assert c.total == 4


class TestResultTable:
    def test_render_contains_rows(self):
        t = ResultTable("demo", ["n", "rounds"])
        t.add(10, 42)
        t.add(100, 54)
        out = t.render()
        assert "demo" in out
        assert "42" in out and "54" in out

    def test_wrong_arity_rejected(self):
        t = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add(1)

    def test_float_formatting(self):
        t = ResultTable("demo", ["v"])
        t.add(1.23456)
        assert "1.235" in t.render()


class TestFits:
    def test_log_fit_recovers_slope(self):
        xs = [2**i for i in range(1, 10)]
        ys = [3.0 * i + 1 for i in range(1, 10)]  # y = 3 log2 x + 1
        slope = log_fit_slope(xs, ys)
        assert slope == pytest.approx(3.0)

    def test_log_fit_flat_series(self):
        xs = [10, 100, 1000]
        ys = [7, 7, 7]
        assert log_fit_slope(xs, ys) == pytest.approx(0.0)

    def test_log_fit_underdetermined(self):
        assert log_fit_slope([4], [2]) is None
        assert log_fit_slope([4, 4], [2, 3]) is None

    def test_growth_ratio(self):
        assert growth_ratio([1, 2], [10.0, 30.0]) == pytest.approx(3.0)
        assert growth_ratio([], []) is None

    def test_experiment_record_row(self):
        rec = ExperimentRecord("T1", {"n": 10}, 42, {"iters": 3})
        row = rec.row()
        assert row["experiment"] == "T1"
        assert row["n"] == 10
        assert row["rounds"] == 42
        assert row["iters"] == 3
