"""Tests for the dynamics subsystem: edits, repair, and churn integration.

The centerpiece is the acceptance property: for every generated edit
script, incremental repair yields a forest **identical** (same parent
pointers) to a from-scratch ``solve_spf`` on the edited structure —
checked batch by batch on randomized instances.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dynamics import (
    CHURN_KINDS,
    DynamicSPF,
    EditBatch,
    EditError,
    EditScript,
    StructureEditor,
    canonical_forest,
    generate_churn,
    route_under_churn,
    update_distances,
)
from repro.grid.coords import Node
from repro.grid.holes import has_holes
from repro.grid.oracle import bfs_distances
from repro.grid.structure import AmoebotStructure
from repro.sim.circuits import LAYOUT_STATS
from repro.spf.api import solve_spf
from repro.verify.forest_checker import assert_valid_forest
from repro.workloads import hexagon, random_hole_free, spread_nodes


def _is_connected(nodes):
    nodes = set(nodes)
    start = next(iter(nodes))
    seen = {start}
    stack = [start]
    while stack:
        u = stack.pop()
        for v in u.neighbors():
            if v in nodes and v not in seen:
                seen.add(v)
                stack.append(v)
    return len(seen) == len(nodes)


# ----------------------------------------------------------------------
# edit batches and the incremental validator
# ----------------------------------------------------------------------


class TestEditBatch:
    def test_overlap_rejected(self):
        with pytest.raises(EditError):
            EditBatch(remove=(Node(0, 0),), add=(Node(0, 0),))

    def test_duplicates_rejected(self):
        with pytest.raises(EditError):
            EditBatch(add=(Node(0, 0), Node(0, 0)))

    def test_script_round_trip(self):
        script = EditScript(
            batches=(
                EditBatch(add=(Node(2, 0),)),
                EditBatch(remove=(Node(0, 1),), add=(Node(3, 0),)),
            ),
            kind="manual",
            seed=7,
        )
        again = EditScript.from_dict(script.to_dict())
        assert again == script
        assert again.total_ops == 3


class TestStructureEditor:
    def test_protected_nodes_not_removable(self):
        s = hexagon(2)
        u = sorted(s.nodes)[0]
        editor = StructureEditor(s, protected=[u])
        assert editor.check_remove(u) is not None
        with pytest.raises(EditError):
            editor.remove(u)

    def test_interior_removal_rejected_as_hole(self):
        s = hexagon(2)
        center = Node(0, 0)
        assert all(v in s for v in center.neighbors())
        editor = StructureEditor(s)
        reason = editor.check_remove(center)
        assert reason is not None and "hole" in reason

    def test_addition_closing_a_ring_rejected(self):
        # A hexagonal ring minus one cell: adding the missing cell back
        # would enclose the center as a hole.
        ring = list(Node(0, 0).neighbors())
        gap = ring[-1]
        s = AmoebotStructure(ring[:-1], require_hole_free=True)
        editor = StructureEditor(s)
        reason = editor.check_add(gap)
        assert reason is not None and "hole" in reason

    def test_batch_atomicity_on_failure(self):
        s = hexagon(2)
        editor = StructureEditor(s)
        before = editor.nodes
        bad = EditBatch(remove=(Node(0, 0),))  # interior: creates a hole
        with pytest.raises(EditError):
            editor.apply(bad)
        assert editor.nodes == before

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=12, deadline=None)
    def test_incremental_validator_matches_full_rescan(self, seed):
        """Accepted ops keep the invariants; rejected ops would break them.

        The single most load-bearing claim of ``edits.py``: the O(1)
        neighborhood criteria are *exact* for hole-free structures.
        """
        rng = random.Random(seed)
        s = random_hole_free(rng.randint(15, 60), seed=seed)
        editor = StructureEditor(s)
        for _ in range(25):
            nodes = sorted(editor.nodes)
            if rng.random() < 0.5:
                u = rng.choice(nodes)
                ok = editor.check_remove(u) is None
                candidate = set(nodes) - {u}
                truly_ok = (
                    len(candidate) >= 1
                    and _is_connected(candidate)
                    and not has_holes(candidate)
                )
                assert ok == truly_ok, (u, "remove")
                if ok:
                    editor.remove(u)
            else:
                anchor = rng.choice(nodes)
                empties = [v for v in anchor.neighbors() if v not in editor]
                if not empties:
                    continue
                u = rng.choice(empties)
                ok = editor.check_add(u) is None
                candidate = set(nodes) | {u}
                truly_ok = _is_connected(candidate) and not has_holes(candidate)
                assert ok == truly_ok, (u, "add")
                if ok:
                    editor.add(u)
        # And the final state still survives the strict constructor.
        AmoebotStructure(editor.nodes)


class TestChurnGenerators:
    @pytest.mark.parametrize("kind", CHURN_KINDS)
    def test_generated_scripts_apply_cleanly(self, kind):
        s = random_hole_free(80, seed=17)
        protected = set(spread_nodes(s, 2))
        script = generate_churn(
            s, kind, steps=5, batch_size=3, seed=3, protected=protected
        )
        editor = StructureEditor(s, protected=protected)
        editor.apply_script(script)
        assert protected <= editor.nodes
        AmoebotStructure(editor.nodes)  # strict re-validation

    def test_deterministic_per_seed(self):
        s = random_hole_free(60, seed=21)
        a = generate_churn(s, "mixed", steps=4, batch_size=2, seed=9)
        b = generate_churn(s, "mixed", steps=4, batch_size=2, seed=9)
        c = generate_churn(s, "mixed", steps=4, batch_size=2, seed=10)
        assert a == b
        assert a != c

    def test_unknown_kind_rejected(self):
        with pytest.raises(EditError):
            generate_churn(hexagon(2), "melt", steps=1)


# ----------------------------------------------------------------------
# incremental distances
# ----------------------------------------------------------------------


class TestUpdateDistances:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=12, deadline=None)
    def test_matches_fresh_bfs(self, seed):
        rng = random.Random(seed)
        s = random_hole_free(rng.randint(20, 70), seed=seed)
        sources = frozenset(spread_nodes(s, rng.randint(1, 3)))
        dist = bfs_distances(s, sources)
        editor = StructureEditor(s, protected=sources)
        script = generate_churn(
            s, "mixed", steps=4, batch_size=3, seed=seed, protected=sources
        )
        for batch in script:
            editor.apply(batch)
            new_structure = editor.structure()
            region, changed, layers = update_distances(
                dist, new_structure, sources, batch.add, batch.remove
            )
            assert dist == bfs_distances(new_structure, sources)
            assert changed <= region
            assert set(batch.add) <= region
            assert layers >= 0


# ----------------------------------------------------------------------
# the acceptance property: repair == from-scratch solve
# ----------------------------------------------------------------------


class TestRepairEquivalence:
    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_k1_repair_identical_to_solve_spf(self, seed):
        """For every generated edit script, incremental repair yields a
        forest identical (same parent pointers) to a from-scratch
        ``solve_spf`` on the edited structure."""
        rng = random.Random(seed)
        s = random_hole_free(rng.randint(25, 80), seed=seed)
        nodes = sorted(s.nodes)
        source = rng.choice(nodes)
        dests = rng.sample([u for u in nodes if u != source],
                           min(4, len(nodes) - 1))
        dyn = DynamicSPF(s, [source], dests)
        kind = rng.choice(CHURN_KINDS)
        script = generate_churn(
            s, kind, steps=4, batch_size=3, seed=seed, protected=dyn.protected
        )
        for batch in script:
            dyn.apply(batch)
            ref = solve_spf(dyn.structure, [source], dests)
            assert dyn.forest.parent == ref.forest.parent
            assert dyn.forest.members == ref.forest.members

    @given(st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=6, deadline=None)
    def test_multi_source_repair_is_canonical_and_valid(self, seed):
        rng = random.Random(seed)
        s = random_hole_free(rng.randint(30, 70), seed=seed + 1)
        sources = spread_nodes(s, rng.randint(2, 4))
        dyn = DynamicSPF(s, sources)  # SSSP: every node a destination
        script = generate_churn(
            s, "mixed", steps=3, batch_size=3, seed=seed, protected=dyn.protected
        )
        for batch in script:
            dyn.apply(batch)
            want = canonical_forest(dyn.structure, sources)
            assert dyn.forest.parent == want.parent
            assert_valid_forest(
                dyn.structure, sources, dyn.structure.nodes, dyn.forest.parent
            )

    def test_removing_a_source_is_rejected(self):
        s = hexagon(3)
        source = sorted(s.nodes)[0]
        dyn = DynamicSPF(s, [source])
        before = dyn.structure
        with pytest.raises(EditError):
            dyn.apply(EditBatch(remove=(source,)))
        assert dyn.structure is before


class TestRepairCost:
    def test_localized_repair_cheaper_than_resolve(self):
        s = random_hole_free(200, seed=11)
        nodes = sorted(s.nodes)
        dyn = DynamicSPF(s, [nodes[0]], nodes[-5:])
        script = generate_churn(
            s, "growth", steps=5, batch_size=4, seed=1, protected=dyn.protected
        )
        for batch in script:
            stats = dyn.apply(batch)
            ref = solve_spf(dyn.structure, [nodes[0]], nodes[-5:])
            assert stats.mode == "patch"
            assert stats.rounds < ref.rounds

    def test_threshold_forces_full_resolve(self):
        s = random_hole_free(60, seed=5)
        nodes = sorted(s.nodes)
        dyn = DynamicSPF(s, [nodes[0]], nodes[-3:], threshold=0.001)
        script = generate_churn(
            s, "growth", steps=1, batch_size=3, seed=2, protected=dyn.protected
        )
        stats = dyn.apply(script.batches[0])
        assert stats.mode == "full"
        ref = solve_spf(dyn.structure, [nodes[0]], nodes[-3:])
        assert dyn.forest.parent == ref.forest.parent

    def test_patch_repairs_reuse_layouts_via_derive(self):
        """LAYOUT_STATS must show derive hits, not rebuilds."""
        s = random_hole_free(150, seed=8)
        nodes = sorted(s.nodes)
        dyn = DynamicSPF(s, [nodes[0]], nodes[-4:])
        script = generate_churn(
            s, "mixed", steps=6, batch_size=2, seed=4, protected=dyn.protected
        )
        LAYOUT_STATS.reset()
        stats = dyn.apply_script(script)
        assert all(st_.mode == "patch" for st_ in stats)
        assert LAYOUT_STATS.full_builds == 0
        assert LAYOUT_STATS.incremental_builds >= len(stats)

    def test_rounds_are_charged_to_the_engine(self):
        s = random_hole_free(100, seed=6)
        nodes = sorted(s.nodes)
        dyn = DynamicSPF(s, [nodes[0]], nodes[-3:])
        before = dyn.engine.rounds.total
        script = generate_churn(
            s, "growth", steps=2, batch_size=2, seed=3, protected=dyn.protected
        )
        stats = dyn.apply_script(script)
        assert dyn.engine.rounds.total - before == sum(st_.rounds for st_ in stats)
        assert all(st_.rounds >= 2 for st_ in stats)


# ----------------------------------------------------------------------
# routing over a forest being repaired mid-flight
# ----------------------------------------------------------------------


class TestRouteUnderChurn:
    def test_tokens_drain_while_structure_churns(self):
        s = random_hole_free(120, seed=31)
        nodes = sorted(s.nodes)
        source, dests = nodes[0], nodes[-6:]
        dyn = DynamicSPF(s, [source], dests)
        script = generate_churn(
            s, "mixed", steps=6, batch_size=2, seed=13, protected=dyn.protected
        )
        stats, applied = route_under_churn(dyn, dests, script, edit_every=1)
        assert applied >= 1
        for path in stats.token_paths.values():
            assert path[-1] == source
        # Paths may teleport only at rescue points; every token still
        # starts at its origin.
        for t, origin in enumerate(dests):
            assert stats.token_paths[t][0] == origin

    def test_canonical_forest_matches_reference_depths(self):
        s = random_hole_free(90, seed=44)
        sources = spread_nodes(s, 3)
        forest = canonical_forest(s, sources)
        dist = bfs_distances(s, sources)
        for u in s:
            assert forest.depth_of(u) == dist[u]
