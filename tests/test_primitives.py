"""Tests for the tree primitives of Section 3 (root&prune, election,
centroids, centroid decomposition)."""

import math

import pytest

from repro.ett.tour import build_euler_tour
from repro.grid.coords import Node
from repro.primitives import (
    brute_force_q_centroids,
    centroid_decomposition,
    elect,
    q_centroids,
    root_and_prune,
)
from repro.primitives.root_prune import RootPruneOp
from repro.sim.engine import CircuitEngine
from repro.workloads import line_structure, random_hole_free
from tests.conftest import bfs_tree_adjacency, random_subset


def oracle_vq(adjacency, parent, root, q):
    children = {}
    for c, p in parent.items():
        children.setdefault(p, []).append(c)

    def subtree(u):
        out = {u}
        for c in children.get(u, []):
            out |= subtree(c)
        return out

    return {u for u in adjacency if subtree(u) & q}


class TestRootAndPrune:
    def test_matches_oracle(self, random_structure):
        root = random_structure.westernmost()
        adjacency, parent = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 10, seed=1)
        engine = CircuitEngine(random_structure)
        result = root_and_prune(engine, root, adjacency, q)
        assert result.in_vq == oracle_vq(adjacency, parent, root, q)
        for u in result.in_vq - {root}:
            assert result.parent[u] == parent[u]

    def test_q_size_read_by_root(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 7, seed=2)
        engine = CircuitEngine(random_structure)
        assert root_and_prune(engine, root, adjacency, q).q_size == 7

    def test_empty_q_prunes_everything(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        engine = CircuitEngine(small_hexagon)
        result = root_and_prune(engine, root, adjacency, [])
        assert result.in_vq == set()
        assert result.q_size == 0

    def test_q_only_root(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        engine = CircuitEngine(small_hexagon)
        result = root_and_prune(engine, root, adjacency, [root])
        assert result.in_vq == {root}

    def test_augmentation_bound(self, random_structure):
        # Corollary 29: |A_Q| <= |Q| - 1.
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        for seed in range(4):
            q = random_subset(random_structure, 8, seed=seed)
            engine = CircuitEngine(random_structure)
            result = root_and_prune(engine, root, adjacency, q)
            assert len(result.augmentation) <= len(q) - 1

    def test_degrees_match_pruned_tree(self, random_structure):
        root = random_structure.westernmost()
        adjacency, parent = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 9, seed=5)
        engine = CircuitEngine(random_structure)
        result = root_and_prune(engine, root, adjacency, q)
        vq = result.in_vq
        for u in vq:
            expected = sum(
                1
                for v in adjacency[u]
                if v in vq and (parent.get(u) == v or parent.get(v) == u)
            )
            assert result.degree_q[u] == expected

    def test_rounds_logarithmic_in_q(self):
        s = random_hole_free(250, seed=11)
        root = s.westernmost()
        adjacency, _ = bfs_tree_adjacency(s, root)
        engine = CircuitEngine(s)
        q = random_subset(s, 4, seed=0)
        root_and_prune(engine, root, adjacency, q, section="rp4")
        small = engine.rounds.section_total("rp4")
        assert small <= 2 * (math.ceil(math.log2(4 * 6)) + 2)

    def test_q_outside_tree_rejected(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        tour = build_euler_tour(root, adjacency)
        with pytest.raises(ValueError):
            RootPruneOp(tour, [Node(99, 99)])

    def test_children_helper(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        engine = CircuitEngine(small_hexagon)
        result = root_and_prune(engine, root, adjacency, sorted(small_hexagon.nodes))
        children = result.children()
        assert sum(len(c) for c in children.values()) == len(result.parent)


class TestElect:
    def test_elected_in_q(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 5, seed=3)
        engine = CircuitEngine(random_structure)
        assert elect(engine, root, adjacency, q) in q

    def test_single_node_tree(self):
        s = line_structure(1)
        engine = CircuitEngine(s)
        assert elect(engine, Node(0, 0), {Node(0, 0): []}, [Node(0, 0)]) == Node(0, 0)

    def test_empty_q_rejected(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        with pytest.raises(ValueError):
            elect(CircuitEngine(small_hexagon), root, adjacency, [])

    def test_candidate_outside_tree_rejected(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        with pytest.raises(ValueError):
            elect(CircuitEngine(small_hexagon), root, adjacency, [Node(50, 50)])


class TestQCentroids:
    @pytest.mark.parametrize("seed", range(6))
    def test_matches_brute_force(self, random_structure, seed):
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 8, seed=seed)
        engine = CircuitEngine(random_structure)
        assert q_centroids(engine, root, adjacency, q) == brute_force_q_centroids(
            adjacency, q
        )

    def test_line_centroid_is_median(self):
        s = line_structure(9)
        nodes = sorted(s.nodes)
        from repro.ett.tour import adjacency_from_edges

        adjacency = adjacency_from_edges(list(zip(nodes, nodes[1:])))
        engine = CircuitEngine(s)
        result = q_centroids(engine, nodes[0], adjacency, nodes)
        assert result == {nodes[4]}

    def test_two_adjacent_centroids_possible(self):
        s = line_structure(4)
        nodes = sorted(s.nodes)
        from repro.ett.tour import adjacency_from_edges

        adjacency = adjacency_from_edges(list(zip(nodes, nodes[1:])))
        engine = CircuitEngine(s)
        result = q_centroids(engine, nodes[0], adjacency, nodes)
        assert result == {nodes[1], nodes[2]}

    def test_centroid_can_be_empty_without_augmentation(self):
        # A star with Q = the three leaves has no Q-centroid: removing
        # any leaf leaves the other two (> 3/2) in one component.
        center = Node(0, 0)
        from repro.grid.directions import Direction
        from repro.grid.structure import AmoebotStructure
        from repro.ett.tour import adjacency_from_edges

        leaves = [
            center.neighbor(Direction.E),
            center.neighbor(Direction.NW),
            center.neighbor(Direction.SW),
        ]
        s = AmoebotStructure([center] + leaves)
        adjacency = adjacency_from_edges([(center, leaf) for leaf in leaves])
        engine = CircuitEngine(s)
        assert q_centroids(engine, center, adjacency, leaves) == set()
        # The augmentation (the center, degree 3) restores existence.
        assert q_centroids(engine, center, adjacency, leaves + [center]) == {center}


class TestCentroidDecomposition:
    def test_members_are_exactly_q_prime(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 10, seed=7)
        engine = CircuitEngine(random_structure)
        rp = root_and_prune(engine, root, adjacency, q)
        q_prime = q | rp.augmentation
        tree = centroid_decomposition(engine, root, adjacency, q_prime)
        assert tree.members() == q_prime

    def test_height_logarithmic(self, random_structure):
        # Lemma 30: height O(log |Q'|).
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        for seed in range(3):
            q = random_subset(random_structure, 12, seed=seed)
            engine = CircuitEngine(random_structure)
            rp = root_and_prune(engine, root, adjacency, q)
            q_prime = q | rp.augmentation
            tree = centroid_decomposition(engine, root, adjacency, q_prime)
            assert tree.height <= math.ceil(math.log2(len(q_prime))) + 1

    def test_parent_depths_increase(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 9, seed=9)
        engine = CircuitEngine(random_structure)
        rp = root_and_prune(engine, root, adjacency, q)
        q_prime = q | rp.augmentation
        tree = centroid_decomposition(engine, root, adjacency, q_prime)
        for node, parent in tree.parent.items():
            if parent is not None:
                assert tree.depth_of(parent) == tree.depth_of(node) - 1

    def test_same_depth_nodes_in_disjoint_subtrees(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 11, seed=4)
        engine = CircuitEngine(random_structure)
        rp = root_and_prune(engine, root, adjacency, q)
        q_prime = q | rp.augmentation
        tree = centroid_decomposition(engine, root, adjacency, q_prime)
        for level in tree.levels:
            for i, a in enumerate(level):
                for b in level[i + 1 :]:
                    assert not (tree.subtree_nodes[a] & tree.subtree_nodes[b])

    def test_deterministic(self, random_structure):
        root = random_structure.westernmost()
        adjacency, _ = bfs_tree_adjacency(random_structure, root)
        q = random_subset(random_structure, 8, seed=2)
        engine = CircuitEngine(random_structure)
        rp = root_and_prune(engine, root, adjacency, q)
        q_prime = q | rp.augmentation
        first = centroid_decomposition(engine, root, adjacency, q_prime)
        second = centroid_decomposition(engine, root, adjacency, q_prime)
        assert first.levels == second.levels
        assert first.parent == second.parent

    def test_empty_q_prime_rejected(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        with pytest.raises(ValueError):
            centroid_decomposition(CircuitEngine(small_hexagon), root, adjacency, set())

    def test_singleton_q_prime(self, small_hexagon):
        root = small_hexagon.westernmost()
        adjacency, _ = bfs_tree_adjacency(small_hexagon, root)
        engine = CircuitEngine(small_hexagon)
        target = sorted(small_hexagon.nodes)[-1]
        tree = centroid_decomposition(engine, root, adjacency, {target})
        assert tree.levels == [[target]]
