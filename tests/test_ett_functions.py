"""Tests for the classic ETT tree functions (§3.1 / Tarjan-Vishkin)."""

import pytest

from repro.ett.functions import (
    descendant_counts,
    node_levels,
    postorder_numbers,
    preorder_numbers,
)
from repro.ett.tour import build_euler_tour
from repro.grid.coords import Node
from repro.sim.engine import CircuitEngine
from repro.workloads import line_structure, random_hole_free
from tests.conftest import bfs_tree_adjacency


def tour_for(structure):
    root = structure.westernmost()
    adjacency, parent = bfs_tree_adjacency(structure, root)
    return build_euler_tour(root, adjacency), parent


def reference_orders(tour):
    """Pre/postorder by explicit DFS in rotation order."""
    children = {}
    seen = {tour.root}
    for u, v in tour.edges:
        if v not in seen:
            seen.add(v)
            children.setdefault(u, []).append(v)
    pre, post = {}, {}

    def dfs(u):
        pre[u] = len(pre)
        for c in children.get(u, []):
            dfs(c)
        post[u] = len(post)

    import sys

    sys.setrecursionlimit(10000)
    dfs(tour.root)
    return pre, post


class TestDescendantCounts:
    @pytest.mark.parametrize("seed", range(3))
    def test_matches_reference(self, seed):
        s = random_hole_free(70, seed=200 + seed)
        tour, parent = tour_for(s)
        engine = CircuitEngine(s)
        counts = descendant_counts(engine, tour)
        # Reference by bottom-up accumulation.
        expected = {u: 1 for u in s.nodes}
        for u in sorted(parent, key=lambda x: -_depth(parent, x)):
            expected[parent[u]] += expected[u]
        assert counts == expected

    def test_root_counts_everything(self):
        s = random_hole_free(50, seed=210)
        tour, _ = tour_for(s)
        counts = descendant_counts(CircuitEngine(s), tour)
        assert counts[tour.root] == len(s)

    def test_single_node(self):
        s = line_structure(1)
        tour = build_euler_tour(Node(0, 0), {Node(0, 0): []})
        assert descendant_counts(CircuitEngine(s), tour) == {Node(0, 0): 1}


class TestOrderNumbers:
    @pytest.mark.parametrize("seed", range(3))
    def test_preorder_matches_dfs(self, seed):
        s = random_hole_free(60, seed=220 + seed)
        tour, _ = tour_for(s)
        engine = CircuitEngine(s)
        pre = preorder_numbers(engine, tour)
        expected, _post = reference_orders(tour)
        assert pre == expected

    @pytest.mark.parametrize("seed", range(3))
    def test_postorder_matches_dfs(self, seed):
        s = random_hole_free(60, seed=230 + seed)
        tour, _ = tour_for(s)
        engine = CircuitEngine(s)
        post = postorder_numbers(engine, tour)
        _pre, expected = reference_orders(tour)
        assert post == expected

    def test_preorder_is_a_permutation(self):
        s = random_hole_free(40, seed=240)
        tour, _ = tour_for(s)
        pre = preorder_numbers(CircuitEngine(s), tour)
        assert sorted(pre.values()) == list(range(len(s)))

    def test_root_extremes(self):
        s = random_hole_free(40, seed=241)
        tour, _ = tour_for(s)
        engine = CircuitEngine(s)
        assert preorder_numbers(engine, tour)[tour.root] == 0
        assert postorder_numbers(engine, tour)[tour.root] == len(s) - 1

    def test_single_node_orders(self):
        tour = build_euler_tour(Node(0, 0), {Node(0, 0): []})
        s = line_structure(1)
        assert preorder_numbers(CircuitEngine(s), tour) == {Node(0, 0): 0}
        assert postorder_numbers(CircuitEngine(s), tour) == {Node(0, 0): 0}


class TestLevels:
    def test_levels_match_bfs_depth(self):
        s = random_hole_free(60, seed=250)
        tour, parent = tour_for(s)
        levels = node_levels(CircuitEngine(s), tour)
        for u in s.nodes:
            assert levels[u] == _depth(parent, u)


def _depth(parent, u):
    d = 0
    while u in parent:
        u = parent[u]
        d += 1
    return d
