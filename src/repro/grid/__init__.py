"""Triangular grid substrate for the geometric amoebot model.

The infinite regular triangular grid :math:`G_\\Delta` is represented with
axial coordinates ``(x, y)``: every node has six neighbors reached by the
offsets in :data:`repro.grid.directions.DIRECTION_OFFSETS`.  Edges are
parallel to one of three axes (X, Y, Z), which is the foundation of the
portal-graph machinery of the paper (Section 2.3).

Public surface:

* :class:`~repro.grid.coords.Node` — a grid node (hashable, ordered).
* :class:`~repro.grid.directions.Direction` — the six edge directions.
* :class:`~repro.grid.directions.Axis` — the three edge axes.
* :class:`~repro.grid.structure.AmoebotStructure` — a finite connected
  hole-free set of occupied nodes with adjacency queries.
* :class:`~repro.grid.compiled.GridIndex` — dense integer node ids plus
  flat neighbor/degree/boundary arrays (the integer substrate layout
  and portal construction run on).
* :func:`~repro.grid.holes.has_holes` — hole detection.
* :func:`~repro.grid.oracle.bfs_distances` — centralized shortest-path
  oracle used only for verification.
"""

from repro.grid.coords import Node, grid_distance
from repro.grid.directions import (
    Axis,
    Direction,
    DIRECTION_OFFSETS,
    AXIS_DIRECTIONS,
    opposite,
    counterclockwise,
    clockwise,
)
from repro.grid.structure import AmoebotStructure
from repro.grid.compiled import GRID_STATS, GridIndex
from repro.grid.holes import has_holes, find_holes
from repro.grid.oracle import bfs_distances, bfs_tree, eccentricity, structure_diameter

__all__ = [
    "Node",
    "grid_distance",
    "Axis",
    "Direction",
    "DIRECTION_OFFSETS",
    "AXIS_DIRECTIONS",
    "opposite",
    "counterclockwise",
    "clockwise",
    "AmoebotStructure",
    "GridIndex",
    "GRID_STATS",
    "has_holes",
    "find_holes",
    "bfs_distances",
    "bfs_tree",
    "eccentricity",
    "structure_diameter",
]
