"""Grid symmetries: translations, rotations, reflections of structures.

The triangular grid has a 12-element point symmetry group (6 rotations
x optional reflection).  Because all amoebots share one compass, the
paper's algorithms commute with these symmetries: transforming the
input transforms the output and leaves round counts unchanged.  The
test suite uses these maps to check that equivariance (a strong smoke
test against direction-convention bugs).
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure

NodeMap = Callable[[Node], Node]


def translate(dx: int, dy: int) -> NodeMap:
    """Translation by an axial offset."""

    def apply(node: Node) -> Node:
        return Node(node.x + dx, node.y + dy)

    return apply


def rotate60(steps: int = 1) -> NodeMap:
    """Rotation by ``steps`` sixth-turns counterclockwise about the origin.

    One ccw sixth-turn maps the axial basis as ``E -> NE`` and
    ``NE -> NW``, i.e. ``(x, y) -> (-y, x + y)``.
    """

    def once(node: Node) -> Node:
        return Node(-node.y, node.x + node.y)

    def apply(node: Node) -> Node:
        result = node
        for _ in range(steps % 6):
            result = once(result)
        return result

    return apply


def reflect_x_axis() -> NodeMap:
    """Reflection across the x-axis (flips chirality).

    Cartesian ``(x + y/2, y√3/2) -> (x + y/2, -y√3/2)`` corresponds to
    ``(x, y) -> (x + y, -y)`` in axial coordinates.
    """

    def apply(node: Node) -> Node:
        return Node(node.x + node.y, -node.y)

    return apply


def transform_structure(
    structure: AmoebotStructure, node_map: NodeMap
) -> AmoebotStructure:
    """Apply a symmetry to every node of a structure."""
    return AmoebotStructure(node_map(u) for u in structure.nodes)


def transform_parent_map(
    parent: Dict[Node, Node], node_map: NodeMap
) -> Dict[Node, Node]:
    """Apply a symmetry to a forest's parent pointers."""
    return {node_map(u): node_map(p) for u, p in parent.items()}
