"""Directions and axes of the triangular grid.

We use axial coordinates: node ``(x, y)`` lies at Cartesian position
``(x + y/2, y * sqrt(3)/2)``.  The six unit directions, in counterclockwise
order starting from East, are::

    E  = ( 1,  0)      NE = ( 0,  1)      NW = (-1,  1)
    W  = (-1,  0)      SW = ( 0, -1)      SE = ( 1, -1)

Every edge of the grid is parallel to exactly one of three axes:

* :attr:`Axis.X` — the E/W axis,
* :attr:`Axis.Y` — the NE/SW axis,
* :attr:`Axis.Z` — the NW/SE axis.

This matches Figure 2e of the paper (x horizontal, y and z the two
diagonals).  All amoebots share this labeling because the model assumes a
common compass orientation and chirality (Section 1.1).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Tuple


class Direction(enum.IntEnum):
    """The six edge directions of the triangular grid, counterclockwise."""

    E = 0
    NE = 1
    NW = 2
    W = 3
    SW = 4
    SE = 5

    @property
    def offset(self) -> Tuple[int, int]:
        """Axial coordinate offset of one step in this direction."""
        return DIRECTION_OFFSETS[self]

    @property
    def axis(self) -> "Axis":
        """The axis this direction is parallel to."""
        return _DIRECTION_AXIS[self]


class Axis(enum.IntEnum):
    """The three edge axes of the triangular grid (Figure 2e)."""

    X = 0
    Y = 1
    Z = 2

    @property
    def directions(self) -> Tuple[Direction, Direction]:
        """The two directions parallel to this axis (positive first)."""
        return AXIS_DIRECTIONS[self]

    @property
    def others(self) -> Tuple["Axis", "Axis"]:
        """The two other axes."""
        return tuple(a for a in Axis if a is not self)  # type: ignore[return-value]


DIRECTION_OFFSETS: Dict[Direction, Tuple[int, int]] = {
    Direction.E: (1, 0),
    Direction.NE: (0, 1),
    Direction.NW: (-1, 1),
    Direction.W: (-1, 0),
    Direction.SW: (0, -1),
    Direction.SE: (1, -1),
}

AXIS_DIRECTIONS: Dict[Axis, Tuple[Direction, Direction]] = {
    Axis.X: (Direction.E, Direction.W),
    Axis.Y: (Direction.NE, Direction.SW),
    Axis.Z: (Direction.NW, Direction.SE),
}

_DIRECTION_AXIS: Dict[Direction, Axis] = {
    Direction.E: Axis.X,
    Direction.W: Axis.X,
    Direction.NE: Axis.Y,
    Direction.SW: Axis.Y,
    Direction.NW: Axis.Z,
    Direction.SE: Axis.Z,
}

_OFFSET_DIRECTION: Dict[Tuple[int, int], Direction] = {
    off: d for d, off in DIRECTION_OFFSETS.items()
}


#: Rotation tables: enum construction (``Direction(i)``) is surprisingly
#: expensive and these helpers sit on the simulator's hottest paths.
_ROTATED: List[Direction] = [Direction(i % 6) for i in range(12)]

#: ``OPPOSITE_VALUES[d]`` is the *value* of the direction opposite to
#: value ``d`` — the int-space twin of :func:`opposite` for the flat
#: grid-index/layout loops that avoid enum construction entirely.
OPPOSITE_VALUES: Tuple[int, ...] = (3, 4, 5, 0, 1, 2)


def opposite(direction: Direction) -> Direction:
    """Return the direction pointing the opposite way."""
    return _ROTATED[direction + 3]


def counterclockwise(direction: Direction, steps: int = 1) -> Direction:
    """Rotate a direction counterclockwise by ``steps`` sixths of a turn."""
    return _ROTATED[(direction + steps) % 6]


def clockwise(direction: Direction, steps: int = 1) -> Direction:
    """Rotate a direction clockwise by ``steps`` sixths of a turn."""
    return _ROTATED[(direction - steps) % 6]


def direction_between(src: Tuple[int, int], dst: Tuple[int, int]) -> Direction:
    """Direction of the grid edge from ``src`` to an adjacent ``dst``.

    Raises :class:`ValueError` if the nodes are not adjacent.
    """
    delta = (dst[0] - src[0], dst[1] - src[1])
    try:
        return _OFFSET_DIRECTION[delta]
    except KeyError:
        raise ValueError(f"nodes {src} and {dst} are not adjacent") from None


_CCW_ORDERS: Dict[Direction, Tuple[Direction, ...]] = {
    d: tuple(_ROTATED[(d + i) % 6] for i in range(6)) for d in Direction
}


def all_directions_ccw(start: Direction = Direction.E) -> List[Direction]:
    """All six directions in counterclockwise order starting at ``start``."""
    return list(_CCW_ORDERS[start])
