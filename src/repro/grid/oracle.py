"""Centralized shortest-path oracles.

These are *verification tools only*: the distributed algorithms in
:mod:`repro.spf` never call them.  Tests and the forest checker compare the
distributed output against these BFS computations on :math:`G_X`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure


def bfs_distances(
    structure: AmoebotStructure, sources: Iterable[Node]
) -> Dict[Node, int]:
    """Multi-source BFS distances ``dist(S, u)`` inside :math:`G_X`.

    Unreachable nodes are absent from the result (cannot happen for
    connected structures, but kept general for robustness tests).
    """
    dist: Dict[Node, int] = {}
    queue: deque = deque()
    for s in sources:
        if s not in structure:
            raise KeyError(f"source {s} is not part of the structure")
        if s not in dist:
            dist[s] = 0
            queue.append(s)
    while queue:
        u = queue.popleft()
        for v in structure.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                queue.append(v)
    return dist


def bfs_tree(
    structure: AmoebotStructure, source: Node
) -> Tuple[Dict[Node, int], Dict[Node, Optional[Node]]]:
    """Single-source BFS returning ``(distances, parents)``.

    Parents form one particular shortest path tree; the distributed
    algorithm may legitimately pick different parents, so checkers compare
    *distances*, not parent identity.
    """
    dist = {source: 0}
    parent: Dict[Node, Optional[Node]] = {source: None}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        for v in structure.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                parent[v] = u
                queue.append(v)
    return dist, parent


def closest_sources(
    structure: AmoebotStructure, sources: Iterable[Node]
) -> Dict[Node, List[Node]]:
    """For each node, all sources at minimal :math:`G_X` distance.

    Used to verify property 5 of the (S, D)-shortest-path-forest
    definition (each destination is connected to a *closest* source).
    """
    source_list = list(dict.fromkeys(sources))
    per_source = {s: bfs_distances(structure, [s]) for s in source_list}
    result: Dict[Node, List[Node]] = {}
    for u in structure:
        best = min(per_source[s].get(u, float("inf")) for s in source_list)
        result[u] = [s for s in source_list if per_source[s].get(u) == best]
    return result


def eccentricity(structure: AmoebotStructure, node: Node) -> int:
    """Maximum BFS distance from ``node`` to any node of the structure."""
    return max(bfs_distances(structure, [node]).values())


def structure_diameter(structure: AmoebotStructure) -> int:
    """Exact diameter of :math:`G_X` (double sweep would only bound it).

    Quadratic; intended for the modest sizes used in tests and benches.
    """
    return max(eccentricity(structure, u) for u in structure)
