"""Finite amoebot structures: connected node sets on the triangular grid.

An :class:`AmoebotStructure` is the set ``X`` of occupied nodes.  It offers
adjacency queries on the induced subgraph :math:`G_X` and validates the
paper's standing assumptions (connectivity; optionally hole-freeness).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from repro.grid.coords import Node
from repro.grid.directions import Axis, Direction, all_directions_ccw

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.grid.compiled import GridIndex


class StructureError(ValueError):
    """Raised when a node set violates the model's standing assumptions."""


class AmoebotStructure:
    """A connected set of occupied triangular-grid nodes.

    Parameters
    ----------
    nodes:
        The occupied nodes.  Duplicates are ignored.
    require_hole_free:
        If true (the default), reject structures with holes: the paper's
        algorithms assume :math:`G_{V_\\Delta \\setminus X}` is connected
        (Section 1.1).  Pass ``False`` for tests that exercise hole
        detection itself.
    """

    def __init__(self, nodes: Iterable[Node], require_hole_free: bool = True):
        node_set = frozenset(nodes)
        if not node_set:
            raise StructureError("amoebot structure must be non-empty")
        self._nodes: FrozenSet[Node] = node_set
        self._neighbor_cache: Dict[Node, Tuple[Node, ...]] = {}
        self._direction_cache: Dict[Node, Tuple[Direction, ...]] = {}
        self._grid_index: Optional["GridIndex"] = None
        if not self._is_connected():
            raise StructureError("amoebot structure must be connected")
        if require_hole_free:
            from repro.grid.holes import has_holes  # local import: avoid cycle

            if has_holes(node_set):
                raise StructureError("amoebot structure must be hole-free")

    @classmethod
    def from_validated(
        cls,
        nodes: Iterable[Node],
        basis: Optional["AmoebotStructure"] = None,
        dirty: Iterable[Node] = (),
    ) -> "AmoebotStructure":
        """Trusted constructor: skip the connectivity and hole re-scan.

        The dynamics subsystem validates edits *incrementally* (one O(1)
        neighborhood check per operation, see
        :class:`repro.dynamics.edits.StructureEditor`), so rebuilding a
        structure after a validated edit batch must not pay the O(n)
        flood fills of ``__init__`` again.  Callers assert that
        ``nodes`` is non-empty, connected, and hole-free.

        ``basis``/``dirty`` optionally seed the adjacency caches from a
        previous structure: cache entries of nodes not adjacent to any
        ``dirty`` (edited) node are carried over verbatim, so repeated
        small edits keep amortized cache warmth.  If the basis already
        built its :meth:`grid_index`, the index is *derived* — patched
        only around the edited cells, with every surviving node's
        integer id kept stable — instead of rebuilt.
        """
        self = cls.__new__(cls)
        node_set = frozenset(nodes)
        if not node_set:
            raise StructureError("amoebot structure must be non-empty")
        self._nodes = node_set
        self._neighbor_cache = {}
        self._direction_cache = {}
        self._grid_index = None
        if basis is not None:
            dirty_nodes = tuple(dirty)
            stale: Set[Node] = set(dirty_nodes)
            for u in tuple(stale):
                stale.update(u.neighbors())
            for u, cached in basis._neighbor_cache.items():
                if u in node_set and u not in stale:
                    self._neighbor_cache[u] = cached
            for u, cached_d in basis._direction_cache.items():
                if u in node_set and u not in stale:
                    self._direction_cache[u] = cached_d
            basis_index = basis._grid_index
            if basis_index is not None:
                basis_nodes = basis._nodes
                added = [
                    u for u in dirty_nodes if u in node_set and u not in basis_nodes
                ]
                removed = [
                    u for u in dirty_nodes if u in basis_nodes and u not in node_set
                ]
                derived = basis_index.derive(added, removed)
                if len(derived) == len(node_set):
                    self._grid_index = derived
        return self

    # ------------------------------------------------------------------
    # flat integer index
    # ------------------------------------------------------------------
    def grid_index(self) -> "GridIndex":
        """The structure's :class:`~repro.grid.compiled.GridIndex`.

        Built lazily on first use (hashing every node exactly once into
        a dense id) and cached for the structure's lifetime; structures
        produced by :meth:`from_validated` with a ``basis`` inherit a
        derived index with stable ids instead of rebuilding.  Layout
        construction, portal building, and region splitting all run
        over its flat arrays.
        """
        index = self._grid_index
        if index is None:
            from repro.grid.compiled import GridIndex  # local: avoid cycle

            index = self._grid_index = GridIndex(self._nodes)
        return index

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> FrozenSet[Node]:
        """The occupied node set ``X``."""
        return self._nodes

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Node]:
        return iter(self._nodes)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AmoebotStructure):
            return NotImplemented
        return self._nodes == other._nodes

    def __hash__(self) -> int:
        return hash(self._nodes)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"AmoebotStructure(n={len(self._nodes)})"

    # ------------------------------------------------------------------
    # adjacency in the induced subgraph G_X
    # ------------------------------------------------------------------
    def neighbors(self, node: Node) -> Tuple[Node, ...]:
        """Occupied neighbors of ``node`` in counterclockwise order."""
        cached = self._neighbor_cache.get(node)
        if cached is not None:
            return cached
        if node not in self._nodes:
            raise KeyError(f"{node} is not part of the structure")
        result = tuple(v for v in node.neighbors() if v in self._nodes)
        self._neighbor_cache[node] = result
        return result

    def degree(self, node: Node) -> int:
        """Number of occupied neighbors."""
        return len(self.neighbors(node))

    def has_neighbor(self, node: Node, direction: Direction) -> bool:
        """Whether the adjacent node in ``direction`` is occupied."""
        cached = self._direction_cache.get(node)
        if cached is not None:
            return direction in cached
        return node.neighbor(direction) in self._nodes

    def occupied_directions(self, node: Node) -> List[Direction]:
        """Directions toward occupied neighbors, counterclockwise order.

        Cached per node (the structure is immutable): layout construction
        asks for these on every amoebot, often once per wiring.
        """
        cached = self._direction_cache.get(node)
        if cached is None:
            cached = tuple(
                d for d in all_directions_ccw() if self.has_neighbor(node, d)
            )
            self._direction_cache[node] = cached
        return list(cached)

    def edges(self) -> List[Tuple[Node, Node]]:
        """All undirected edges of :math:`G_X` (each listed once)."""
        result: List[Tuple[Node, Node]] = []
        for u in self._nodes:
            for d in (Direction.E, Direction.NE, Direction.NW):
                v = u.neighbor(d)
                if v in self._nodes:
                    result.append((u, v))
        return result

    def edge_count(self) -> int:
        """Number of undirected edges of :math:`G_X`."""
        return len(self.edges())

    # ------------------------------------------------------------------
    # geometry helpers
    # ------------------------------------------------------------------
    def bounding_box(self) -> Tuple[int, int, int, int]:
        """Return ``(min_x, max_x, min_y, max_y)`` of the node set."""
        xs = [u.x for u in self._nodes]
        ys = [u.y for u in self._nodes]
        return (min(xs), max(xs), min(ys), max(ys))

    def westernmost(self, nodes: Optional[Iterable[Node]] = None) -> Node:
        """The unique westernmost node of ``nodes`` (default: all).

        Ties on ``x + y/2`` (the Cartesian horizontal) are broken by the
        axial coordinates, making the choice deterministic — amoebots can
        agree on it because they share a compass.
        """
        pool = self._nodes if nodes is None else list(nodes)
        return min(pool, key=lambda u: (2 * u.x + u.y, u.y, u.x))

    def northernmost(self, nodes: Optional[Iterable[Node]] = None) -> Node:
        """The deterministic northernmost node of ``nodes`` (default: all)."""
        pool = self._nodes if nodes is None else list(nodes)
        return max(pool, key=lambda u: (u.y, -u.x))

    def line_through(self, node: Node, axis: Axis) -> List[Node]:
        """Maximal occupied contiguous line through ``node`` along ``axis``.

        This is exactly the *portal* of ``node`` for ``axis``
        (Definition 7 adapted to triangular grids).  Nodes are returned in
        order along the positive axis direction.
        """
        pos, neg = axis.directions
        line = [node]
        cur = node.neighbor(neg)
        while cur in self._nodes:
            line.append(cur)
            cur = cur.neighbor(neg)
        line.reverse()
        cur = node.neighbor(pos)
        while cur in self._nodes:
            line.append(cur)
            cur = cur.neighbor(pos)
        return line

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------
    def _is_connected(self) -> bool:
        start = next(iter(self._nodes))
        seen: Set[Node] = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in u.neighbors():
                if v in self._nodes and v not in seen:
                    seen.add(v)
                    stack.append(v)
        return len(seen) == len(self._nodes)
