"""Flat integer index over an amoebot structure's triangular grid.

A :class:`GridIndex` hashes every node of an
:class:`~repro.grid.structure.AmoebotStructure` exactly once into a
dense integer id and materializes the adjacency of the induced subgraph
as flat arrays:

* ``nbr[id * 6 + d]`` — the id of the occupied neighbor in direction
  ``d`` (:class:`~repro.grid.directions.Direction` value order), or
  ``-1``;
* ``deg[id]`` — the number of occupied neighbors;
* ``boundary[id]`` — 1 iff the node has at least one unoccupied
  neighbor (it lies on the structure's boundary).

Everything downstream that used to flood-fill ``Set[Node]`` or key
dicts by coordinate tuples — layout construction and validation, pin
mates, portal and implicit-tree building, region splitting — runs over
these arrays instead, so coordinates are hashed once per structure
rather than once per touch.

Indices follow a structure through edits: deriving from a basis index
(:meth:`GridIndex.derive`, used by
:meth:`AmoebotStructure.from_validated`) patches only the six-cell
neighborhoods of the edited nodes and keeps every surviving node's id
stable, which is what lets frozen circuit layouts carry their integer
pin tables across structure versions
(:meth:`~repro.sim.circuits.CircuitLayout.derive_for`).  Removed nodes
leave tombstone slots (``nodes[id] is None``) so ids never shift;
ids of departed nodes remain resolvable through :meth:`slot_of` until
their owner is re-added.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, List, Optional, Tuple

from repro.backend import numpy_or_none, resolve_backend
from repro.grid.coords import Node
from repro.grid.directions import DIRECTION_OFFSETS, OPPOSITE_VALUES as _OPP, Direction
from repro.obs.trace import trace_span

#: Direction offsets in direction-value order (E, NE, NW, W, SW, SE).
_OFFSETS: Tuple[Tuple[int, int], ...] = tuple(
    DIRECTION_OFFSETS[Direction(d)] for d in range(6)
)

#: Below this node count the vectorized build loses to the plain loop
#: (ndarray setup dominates); the python path runs regardless of
#: backend for tiny structures.
_VECTORIZE_MIN = 64

#: Packed-coordinate layout for the vectorized build: a node sorts as
#: ``(x + BIAS) * SHIFT + (y + BIAS)``, which is order-isomorphic to
#: the ``(x, y)`` dataclass order whenever both coordinates fit in
#: ``(-BIAS, BIAS)`` — keys stay under 2^52, comfortably inside int64.
_COORD_BIAS = 1 << 25
_COORD_SHIFT = 1 << 26


class GridIndexStats:
    """Counters for grid-index construction (probe for tests/CI).

    ``full_builds`` counts from-scratch index constructions (one O(n)
    hashing pass each); ``derives`` counts incremental patches across
    structure edits, which touch only the edited neighborhoods.  The
    perf-smoke contract asserts that churn never re-indexes a whole
    structure: after the initial build, batches must only ``derive``.
    """

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        """Zero all counters (tests do this before probing a run)."""
        self.full_builds = 0
        self.derives = 0

    def to_dict(self) -> dict:
        """All counters as a JSON-ready mapping (``/stats`` payload)."""
        return dict(vars(self))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"GridIndexStats(full={self.full_builds}, derives={self.derives})"


#: Process-wide grid-index counters; purely observational.
GRID_STATS = GridIndexStats()


def _build_tables_py(ordered: List[Node]) -> Tuple[array, bytearray, bytearray]:
    """Neighbor/degree/boundary tables by one hashing pass (reference).

    ``ordered`` must already be sorted; ids are list positions.
    """
    pos: Dict[Node, int] = {u: i for i, u in enumerate(ordered)}
    nbr = array("i", [-1] * (6 * len(ordered)))
    deg = bytearray(len(ordered))
    boundary = bytearray(len(ordered))
    get = pos.get
    base = 0
    for u in ordered:
        x, y = u.x, u.y
        d = 0
        count = 0
        for dx, dy in _OFFSETS:
            j = get(Node(x + dx, y + dy))
            if j is not None:
                nbr[base + d] = j
                count += 1
            d += 1
        deg[base // 6] = count
        boundary[base // 6] = 1 if count < 6 else 0
        base += 6
    return nbr, deg, boundary


def _build_tables_np(node_list: List[Node], np):
    """Vectorized index build: canonical sort + searchsorted adjacency.

    Coordinates pack into order-preserving int64 keys, the canonical
    id order is one ``argsort``, and each of the six neighbor columns
    is one ``searchsorted`` probe of the shifted keys — no per-node
    ``Node`` construction or dict probing.  Degree and boundary are row
    reductions.  The resulting tables convert back to ``array("i")`` /
    ``bytearray`` so :meth:`GridIndex.derive` patches them in place
    exactly as before, byte for byte identical to the reference build.

    Returns ``None`` (caller falls back to the reference loop) when a
    coordinate is too large for the packed layout.
    """
    n = len(node_list)
    xs = np.fromiter((u.x for u in node_list), dtype=np.int64, count=n)
    ys = np.fromiter((u.y for u in node_list), dtype=np.int64, count=n)
    limit = _COORD_BIAS - 2
    if max(abs(int(xs.min())), int(xs.max()), abs(int(ys.min())), int(ys.max())) > limit:
        return None
    keys = (xs + _COORD_BIAS) * _COORD_SHIFT + (ys + _COORD_BIAS)
    order = np.argsort(keys)
    keys = keys[order]
    ordered = [node_list[i] for i in order.tolist()]
    nbr2 = np.full((n, 6), -1, dtype=np.int32)
    last = n - 1
    for d, (dx, dy) in enumerate(_OFFSETS):
        shifted = keys + (dx * _COORD_SHIFT + dy)
        pos = np.minimum(np.searchsorted(keys, shifted), last)
        found = keys[pos] == shifted
        nbr2[found, d] = pos[found]
    counts = (nbr2 >= 0).sum(axis=1, dtype=np.uint8)
    nbr = array("i")
    nbr.frombytes(nbr2.ravel().tobytes())
    deg = bytearray(counts.tobytes())
    boundary = bytearray((counts < 6).astype(np.uint8).tobytes())
    return ordered, nbr, deg, boundary


class GridIndex:
    """Dense integer ids and flat adjacency arrays for one structure.

    Ids are assigned in sorted node order for from-scratch builds, so
    two independently built indexes of the same node set agree id for
    id (layout fingerprints and cache keys built over ids are therefore
    deterministic).  Derived indexes keep surviving ids stable and
    append slots for added nodes instead.
    """

    __slots__ = (
        "nodes",
        "n_slots",
        "nbr",
        "deg",
        "boundary",
        "root",
        "canonical",
        "_pos",
        "_retired",
        "_mate_e",
        "_live",
    )

    def __init__(self, nodes: Iterable[Node]):
        node_list = list(set(nodes))
        if not node_list:
            raise ValueError("grid index requires at least one node")
        with trace_span("grid_tables", n=len(node_list)):
            built = None
            if len(node_list) >= _VECTORIZE_MIN and resolve_backend() == "numpy":
                built = _build_tables_np(node_list, numpy_or_none())
            if built is None:
                ordered = sorted(node_list)
                built = (ordered, *_build_tables_py(ordered))
        ordered, nbr, deg, boundary = built
        self.nodes: List[Optional[Node]] = list(ordered)
        self.n_slots = len(ordered)
        self._live = len(ordered)
        self._pos: Dict[Node, int] = {u: i for i, u in enumerate(ordered)}
        #: Ids of recently removed nodes (resolvable until re-added).
        self._retired: Dict[Node, int] = {}
        self.nbr = nbr
        self.deg = deg
        self.boundary = boundary
        #: Identity token shared along a derive chain; integer ids are
        #: only comparable between indexes with the same root.
        self.root: object = self
        #: From-scratch indexes assign ids in sorted node order, so two
        #: indexes of equal node sets agree id for id; derived indexes
        #: (stable ids + appended slots) do not have this property.
        #: Cache keys built over ids may be shared across structures
        #: only when this is true.
        self.canonical = True
        self._mate_e: Optional[array] = None
        GRID_STATS.full_builds += 1

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        """Number of live (non-tombstone) nodes."""
        return self._live

    def id_of(self, node: Node) -> Optional[int]:
        """The id of a live ``node``, or ``None``."""
        return self._pos.get(node)

    def slot_of(self, node: Node) -> Optional[int]:
        """Like :meth:`id_of`, but also resolves recently removed nodes.

        Layout patching across structure edits releases the partition
        sets of departed amoebots *after* the new index exists; their
        ids stay resolvable here until the node is re-added.
        """
        i = self._pos.get(node)
        if i is None:
            i = self._retired.get(node)
        return i

    def node_at(self, i: int) -> Node:
        """The node with id ``i`` (raises for tombstones)."""
        node = self.nodes[i]
        if node is None:
            raise KeyError(f"grid-index slot {i} is a tombstone")
        return node

    def live_ids(self) -> Iterable[int]:
        """All live ids (ascending)."""
        nodes = self.nodes
        return (i for i in range(self.n_slots) if nodes[i] is not None)

    def neighbor_id(self, i: int, direction: int) -> int:
        """Id of the occupied neighbor of ``i`` toward ``direction`` (-1 if none)."""
        return self.nbr[i * 6 + direction]

    def occupied_direction_values(self, i: int) -> List[int]:
        """Direction *values* toward occupied neighbors, ascending (= ccw from E)."""
        nbr = self.nbr
        base = i * 6
        return [d for d in range(6) if nbr[base + d] >= 0]

    # ------------------------------------------------------------------
    # derived tables
    # ------------------------------------------------------------------
    def mate_edges(self) -> array:
        """``mate_e[i * 6 + d]`` = the mirror edge slot ``j * 6 + opp(d)``.

        The table turns pin-mate resolution into one array read:
        a pin encoded as ``(i * 6 + d) * c + ch`` has its mate at
        ``(mate_e[i * 6 + d]) * c + ch``.  Entries of absent edges are
        ``-1``.  Built lazily (one pass over ``nbr``) and invalidated
        by :meth:`derive`.
        """
        mate = self._mate_e
        if mate is None:
            nbr = self.nbr
            if len(nbr) >= 6 * _VECTORIZE_MIN and resolve_backend() == "numpy":
                np = numpy_or_none()
                j = np.frombuffer(nbr, dtype=np.int32).reshape(-1, 6)
                opp = np.asarray(_OPP, dtype=np.int32)
                mate_np = np.where(j >= 0, j * 6 + opp[None, :], -1)
                mate = array("i")
                mate.frombytes(mate_np.astype(np.int32).ravel().tobytes())
            else:
                mate = array("i", [-1] * len(nbr))
                for e in range(len(nbr)):
                    j = nbr[e]
                    if j >= 0:
                        mate[e] = j * 6 + _OPP[e % 6]
            self._mate_e = mate
        return mate

    # ------------------------------------------------------------------
    # incremental patching across structure edits
    # ------------------------------------------------------------------
    def derive(
        self,
        added: Iterable[Node],
        removed: Iterable[Node],
    ) -> "GridIndex":
        """A new index for the edited node set, patching only the edits.

        Surviving nodes keep their ids; removed nodes become tombstones
        (still resolvable via :meth:`slot_of`); added nodes get fresh
        ids appended at the end.  All array updates touch only the
        six-cell neighborhoods of the edited nodes — churn never pays
        the O(n) hashing pass of a from-scratch build again.

        Slots are append-only on purpose: reusing a tombstone would
        recycle pin encodings that layouts carried over from earlier
        versions of the chain.  The cost is that ``n_slots`` (and the
        per-derive array copies) grow with *cumulative* adds, not live
        size — fine for the bounded edit scripts the dynamics layer
        runs; a very long-lived chain can re-anchor by building a
        fresh canonical index (``GridIndex(structure.nodes)``) at a
        point where no live layout still references the old ids (e.g.
        a full re-solve).
        """
        clone = GridIndex.__new__(GridIndex)
        clone.nodes = list(self.nodes)
        clone.n_slots = self.n_slots
        clone._live = self._live
        clone._pos = dict(self._pos)
        clone._retired = dict(self._retired)
        clone.nbr = array("i", self.nbr)
        clone.deg = bytearray(self.deg)
        clone.boundary = bytearray(self.boundary)
        clone.root = self.root
        clone.canonical = False
        clone._mate_e = None
        GRID_STATS.derives += 1

        nbr = clone.nbr
        deg = clone.deg
        boundary = clone.boundary
        pos = clone._pos

        for u in removed:
            i = pos.pop(u, None)
            if i is None:
                raise KeyError(f"cannot remove {u}: not in the index")
            base = i * 6
            for d in range(6):
                j = nbr[base + d]
                if j >= 0:
                    nbr[j * 6 + _OPP[d]] = -1
                    deg[j] -= 1
                    boundary[j] = 1
                nbr[base + d] = -1
            deg[i] = 0
            boundary[i] = 0
            clone.nodes[i] = None
            clone._retired[u] = i
            clone._live -= 1

        get = pos.get
        for u in added:
            if u in pos:
                raise KeyError(f"cannot add {u}: already in the index")
            i = clone.n_slots
            clone.n_slots += 1
            clone.nodes.append(u)
            clone._retired.pop(u, None)
            pos[u] = i
            nbr.extend((-1, -1, -1, -1, -1, -1))
            deg.append(0)
            boundary.append(0)
            base = i * 6
            count = 0
            x, y = u.x, u.y
            for d in range(6):
                dx, dy = _OFFSETS[d]
                j = get(Node(x + dx, y + dy))
                if j is not None:
                    nbr[base + d] = j
                    nbr[j * 6 + _OPP[d]] = i
                    deg[j] += 1
                    boundary[j] = 1 if deg[j] < 6 else 0
                    count += 1
            deg[i] = count
            boundary[i] = 1 if count < 6 else 0
            clone._live += 1
        return clone
