"""Axial coordinates on the triangular grid.

A :class:`Node` is an immutable pair of axial coordinates.  The triangular
grid is the adjacency structure of a hexagonal lattice: each node has six
neighbors.  :func:`grid_distance` is the closed-form distance in the
*infinite* grid; shortest-path distance inside a finite amoebot structure
(the induced subgraph :math:`G_X`) is generally larger and computed by the
BFS oracle in :mod:`repro.grid.oracle`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.grid.directions import (
    Axis,
    Direction,
    DIRECTION_OFFSETS,
    all_directions_ccw,
    direction_between,
)


@dataclass(frozen=True, order=True)
class Node:
    """A node of the infinite triangular grid in axial coordinates."""

    x: int
    y: int

    def neighbor(self, direction: Direction) -> "Node":
        """The adjacent node one step in ``direction``."""
        dx, dy = DIRECTION_OFFSETS[direction]
        return Node(self.x + dx, self.y + dy)

    def neighbors(self) -> List["Node"]:
        """All six adjacent nodes, in counterclockwise order from East."""
        return [self.neighbor(d) for d in all_directions_ccw()]

    def direction_to(self, other: "Node") -> Direction:
        """Direction of the edge from ``self`` to an adjacent ``other``."""
        return direction_between((self.x, self.y), (other.x, other.y))

    def is_adjacent(self, other: "Node") -> bool:
        """Whether ``other`` is one of the six grid neighbors."""
        delta = (other.x - self.x, other.y - self.y)
        return delta in _OFFSETS

    def axis_coordinate(self, axis: Axis) -> int:
        """Coordinate that is *constant* along lines parallel to ``axis``.

        Two nodes lie on the same maximal ``axis``-parallel grid line iff
        their ``axis_coordinate`` agrees.  This is what identifies the
        portal a node belongs to (Section 2.3):

        * X lines (E/W) have constant ``y``,
        * Y lines (NE/SW) have constant ``x``,
        * Z lines (NW/SE) have constant ``x + y``.
        """
        if axis is Axis.X:
            return self.y
        if axis is Axis.Y:
            return self.x
        return self.x + self.y

    def cartesian(self) -> Tuple[float, float]:
        """Cartesian embedding (for visualization)."""
        return (self.x + self.y / 2.0, self.y * math.sqrt(3.0) / 2.0)

    def __iter__(self) -> Iterator[int]:
        yield self.x
        yield self.y

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"Node({self.x}, {self.y})"


_OFFSETS = frozenset(DIRECTION_OFFSETS.values())


def grid_distance(u: Node, v: Node) -> int:
    """Distance between two nodes in the *infinite* triangular grid.

    With axial coordinates this is the standard hexagonal distance
    ``(|dx| + |dy| + |dx + dy|) / 2``.
    """
    dx = v.x - u.x
    dy = v.y - u.y
    return (abs(dx) + abs(dy) + abs(dx + dy)) // 2


def parallelogram_nodes(width: int, height: int, origin: Node = Node(0, 0)) -> List[Node]:
    """Nodes of a ``width x height`` parallelogram anchored at ``origin``.

    Convenience used by workload generators and tests.
    """
    if width < 1 or height < 1:
        raise ValueError("parallelogram dimensions must be positive")
    return [
        Node(origin.x + i, origin.y + j)
        for j in range(height)
        for i in range(width)
    ]
