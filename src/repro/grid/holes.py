"""Hole detection for amoebot structures.

The paper assumes the structure ``X`` has no holes: the complement
:math:`V_\\Delta \\setminus X` induces a connected subgraph of the infinite
grid (Section 1.1).  For a finite ``X`` this is decidable by flood-filling
the complement inside a bounding box padded by one ring: every unoccupied
node inside the box must reach the outer ring.
"""

from __future__ import annotations

from collections import deque
from typing import FrozenSet, Iterable, List, Set

from repro.grid.coords import Node


def _complement_components(nodes: FrozenSet[Node]) -> List[Set[Node]]:
    """Connected components of the complement within a padded bounding box.

    The component touching the box border represents the infinite outer
    face; all other components are holes.
    """
    xs = [u.x for u in nodes]
    ys = [u.y for u in nodes]
    min_x, max_x = min(xs) - 1, max(xs) + 1
    min_y, max_y = min(ys) - 1, max(ys) + 1

    def in_box(u: Node) -> bool:
        return min_x <= u.x <= max_x and min_y <= u.y <= max_y

    def on_border(u: Node) -> bool:
        return u.x in (min_x, max_x) or u.y in (min_y, max_y)

    unvisited: Set[Node] = {
        Node(x, y)
        for x in range(min_x, max_x + 1)
        for y in range(min_y, max_y + 1)
        if Node(x, y) not in nodes
    }
    components: List[Set[Node]] = []
    while unvisited:
        start = unvisited.pop()
        component = {start}
        touches_border = on_border(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in u.neighbors():
                if v in unvisited and in_box(v):
                    unvisited.discard(v)
                    component.add(v)
                    if on_border(v):
                        touches_border = True
                    queue.append(v)
        if not touches_border:
            components.append(component)
    return components


def find_holes(nodes: Iterable[Node]) -> List[Set[Node]]:
    """Return the holes of a node set, each as a set of unoccupied nodes.

    A *hole* is a finite connected component of the complement
    :math:`V_\\Delta \\setminus X`.
    """
    node_set = frozenset(nodes)
    if not node_set:
        return []
    return _complement_components(node_set)


def has_holes(nodes: Iterable[Node]) -> bool:
    """Whether the node set has at least one hole."""
    return bool(find_holes(nodes))
