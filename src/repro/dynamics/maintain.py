"""Self-healing shortest path forests under structure churn.

:class:`DynamicSPF` keeps an (S, D)-shortest-path forest valid while
the underlying :class:`~repro.grid.structure.AmoebotStructure` evolves
through :class:`~repro.dynamics.edits.EditBatch` steps.  Instead of
re-solving from scratch after every batch it

1. repairs the multi-source BFS labels *incrementally*
   (:func:`update_distances`): a support-lost cascade bounds the set of
   amoebots whose distance may have grown, and a bounded Dijkstra pass
   over that set plus the added amoebots (and any amoebot a new
   shortcut improves) settles the new labels — work proportional to
   the *changed* region, never to the structure;
2. re-labels the changed region with a **timed beep wave** executed as
   real synchronous rounds on the engine: boundary amoebots whose
   labels survived beep in the round matching their distance, and each
   dirty amoebot adopts the first counterclockwise neighbor it hears as
   its parent — which reproduces, bit for bit, the parent choice of
   the static solver (see below); waves over disjoint dirty components
   run under the round counter's parallel-group accounting;
3. falls back to a full re-solve (:func:`repro.spf.api.solve_spf`)
   only when the dirty region exceeds a configurable fraction of the
   structure.

**Exactness.**  The paper's shortest path tree algorithm picks, for
every amoebot, the first *feasible* parent in counterclockwise order
(Section 4, Equation 1); on hole-free structures this is exactly the
first counterclockwise neighbor one hop closer to the source — the
*canonical* parent rule of :func:`canonical_parent`.  The repaired
forest therefore equals a from-scratch ``solve_spf`` on the edited
structure for ``k = 1`` (property-tested in
``tests/test_dynamics.py``).  For ``k >= 2`` the divide & conquer
forest algorithm breaks ties differently, so :class:`DynamicSPF`
re-points the solved forest to the canonical rule once after each full
solve (one charged local round — distance comparisons between
neighbors are local given the distance bits the solve establishes);
the maintained forest is then the deterministic
:func:`canonical_forest` at all times.

**Layout reuse.**  The repair wave runs on a singleton-pin layout that
is *patched* across structure versions through
:meth:`CircuitLayout.derive_for` — departed amoebots release their
partition sets, attached ones assign theirs — so repairs show up in
:data:`~repro.sim.circuits.LAYOUT_STATS` as incremental builds, never
as from-scratch rebuilds.

**Fault tolerance.**  An optional
:class:`~repro.dynamics.faults.FaultInjector` is armed during repair
waves: crashed amoebots stay silent and beeps may drop.  Wave labels
are verified against the incremental oracle labels after each wave;
every fault-damaged label is detected, counted
(:attr:`RepairStats.corrected`), and healed, so the maintained forest
stays exact even under injected faults.
"""

from __future__ import annotations

import heapq
import warnings
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.dynamics.edits import EditBatch, EditError, EditScript, StructureEditor
from repro.grid.coords import Node
from repro.grid.directions import opposite
from repro.grid.oracle import bfs_distances
from repro.grid.structure import AmoebotStructure
from repro.motion.routing import RoutingPlan, RoutingStats, route_tokens
from repro.obs.trace import trace_span
from repro.sim.circuits import CircuitLayout, LayoutCache
from repro.sim.engine import CircuitEngine
from repro.spf.types import Forest


def canonical_parent(
    structure: AmoebotStructure, dist: Dict[Node, int], u: Node
) -> Node:
    """First counterclockwise neighbor of ``u`` one hop closer to ``S``.

    This is the parent the static SPT algorithm selects (its Equation 1
    feasibility reduces to exactly this on hole-free structures), which
    is what lets the dynamics layer patch parents locally.
    """
    target = dist[u] - 1
    for v in structure.neighbors(u):
        if dist.get(v) == target:
            return v
    raise EditError(f"{u} has no neighbor closer to the sources")


def canonical_forest(
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Optional[Iterable[Node]] = None,
) -> Forest:
    """The deterministic canonical (S, D)-shortest-path forest.

    Parents follow :func:`canonical_parent`; members are the sources
    plus the parent chains of every destination (every node when
    ``destinations`` is ``None``).  For ``k = 1`` this coincides with
    the static solver's output exactly.
    """
    source_set = set(sources)
    if not source_set:
        raise ValueError("need at least one source")
    dist = bfs_distances(structure, source_set)
    parent_all = {
        u: canonical_parent(structure, dist, u)
        for u in structure
        if u not in source_set
    }
    return _chain_forest(source_set, parent_all, destinations, structure)


def _chain_forest(
    source_set: Set[Node],
    parent_all: Dict[Node, Node],
    destinations: Optional[Iterable[Node]],
    structure: AmoebotStructure,
) -> Forest:
    """Restrict a total parent map to the destination chains."""
    if destinations is None:
        return Forest(
            sources=set(source_set),
            parent=dict(parent_all),
            members=set(structure.nodes),
        )
    members: Set[Node] = set(source_set)
    for d in destinations:
        cur = d
        while cur not in members:
            members.add(cur)
            cur = parent_all[cur]
    parent = {u: parent_all[u] for u in members if u not in source_set}
    return Forest(sources=set(source_set), parent=parent, members=members)


def update_distances(
    dist: Dict[Node, int],
    structure: AmoebotStructure,
    sources: FrozenSet[Node],
    added: Iterable[Node],
    removed: Iterable[Node],
) -> Tuple[Set[Node], Set[Node], int]:
    """Incrementally repair multi-source BFS labels after an edit batch.

    ``dist`` (mutated in place) must hold exact labels for the
    pre-edit structure; ``structure`` is the post-edit structure.
    Returns ``(region, changed, cascade_layers)``:

    * ``region`` — every node that was re-settled (labels possibly
      rewritten): the support-lost cascade, the added nodes, and any
      node a new shortcut improved.  Work is proportional to this
      region plus its boundary.
    * ``changed`` — the subset whose label actually differs (including
      all added nodes).
    * ``cascade_layers`` — synchronous-round depth of the support-lost
      cascade (each layer is one round of "my support vanished"
      propagation in the distributed view).
    """
    nodes = structure.nodes
    added = tuple(added)
    removed = tuple(removed)
    for r in removed:
        dist.pop(r, None)

    # -- phase 1: support-lost cascade (deletions may raise labels) ---
    affected: Set[Node] = set()
    frontier: Set[Node] = set()
    for r in removed:
        for v in r.neighbors():
            if v in nodes and v not in sources:
                frontier.add(v)

    def unsupported(u: Node) -> bool:
        du = dist.get(u)
        if du is None:
            return False
        for v in structure.neighbors(u):
            if v not in affected and dist.get(v) == du - 1:
                return False
        return True

    cascade_layers = 0
    while frontier:
        newly = {
            u
            for u in frontier
            if u not in affected and u not in sources and unsupported(u)
        }
        if not newly:
            break
        affected |= newly
        cascade_layers += 1
        frontier = set()
        for u in newly:
            du = dist[u]
            for w in structure.neighbors(u):
                if w not in affected and w not in sources and dist.get(w) == du + 1:
                    frontier.add(w)

    # -- phase 2: bounded Dijkstra over the open region ----------------
    INF = float("inf")
    old: Dict[Node, Optional[int]] = {}
    tent: Dict[Node, float] = {}
    for u in affected:
        old[u] = dist.pop(u)
        tent[u] = INF
    for a in added:
        old[a] = None
        tent[a] = INF

    heap: List[Tuple[float, int, int, Node]] = []

    def relax(u: Node, nd: float) -> None:
        if u in tent and nd < tent[u]:
            tent[u] = nd
            heapq.heappush(heap, (nd, u.x, u.y, u))

    for u in list(tent):
        for v in structure.neighbors(u):
            dv = dist.get(v)
            if dv is not None:
                relax(u, dv + 1)

    region: Set[Node] = set()
    while heap:
        d, _x, _y, u = heapq.heappop(heap)
        if u not in tent or tent[u] < d:
            continue
        del tent[u]
        dist[u] = int(d)
        region.add(u)
        nd = int(d) + 1
        for v in structure.neighbors(u):
            if v in tent:
                relax(v, nd)
            else:
                dv = dist.get(v)
                if dv is not None and dv > nd and v not in sources:
                    # A repaired/added label opens a shortcut: pull the
                    # improved node into the region and resettle it.
                    old.setdefault(v, dv)
                    del dist[v]
                    tent[v] = INF
                    relax(v, nd)
    if tent:
        raise EditError(
            f"distance repair left {len(tent)} unreachable nodes "
            "(structure disconnected?)"
        )
    changed = {u for u in region if old.get(u) != dist[u]}
    return region, changed, cascade_layers


@dataclass
class RepairStats:
    """Outcome of one :meth:`DynamicSPF.apply` call."""

    batch_ops: int
    structure_size: int
    region: int          #: nodes whose distance label was re-settled
    dirty: int           #: nodes whose parent pointer was re-examined
    mode: str            #: ``"patch"`` or ``"full"``
    rounds: int          #: synchronous rounds charged for the repair
    wave_rounds: int     #: beep rounds of the regional repair wave
    cascade_rounds: int  #: rounds of the support-lost cascade
    corrected: int = 0   #: fault-damaged wave labels detected and healed

    @property
    def dirty_fraction(self) -> float:
        """Dirty parent pointers as a fraction of the structure."""
        return self.dirty / max(self.structure_size, 1)


_WAVE = "wave:{}"


class DynamicSPF:
    """An (S, D)-shortest-path forest maintained under structure edits.

    Parameters
    ----------
    structure:
        The initial structure (hole-free; the editor keeps it so).
    sources / destinations:
        The SPF instance.  ``destinations=None`` means every node (the
        SSSP setting).  Sources are always protected from removal;
        explicit destinations are too.
    session:
        Optional :class:`repro.api.Session` supplying the engine
        (backend, scheduler, shared caches) — the preferred way to run
        dynamics under an event-driven scheduler:
        ``DynamicSPF(..., session=Session(scheduler="random:1"))``.
    engine:
        Deprecated alias for ``session`` (warns): a pre-built engine;
        the round counter carries over, so the initial solve and every
        repair charge one clock.
    threshold:
        Dirty fraction above which a batch triggers a full re-solve
        instead of a regional repair wave.
    faults:
        Optional :class:`~repro.dynamics.faults.FaultInjector`, armed
        during repair waves only (the static solve algorithms are not
        fault-tolerant; the wave is, by verification).
    """

    def __init__(
        self,
        structure: AmoebotStructure,
        sources: Iterable[Node],
        destinations: Optional[Iterable[Node]] = None,
        engine: Optional[CircuitEngine] = None,
        threshold: float = 0.2,
        faults: Optional[object] = None,
        *,
        session: Optional[object] = None,
    ):
        if engine is not None:
            warnings.warn(
                "DynamicSPF(engine=...) is deprecated; pass "
                "session=Session(scheduler=..., backend=...) instead",
                DeprecationWarning,
                stacklevel=2,
            )
            if session is not None:
                raise ValueError("pass either engine or session, not both")
        elif session is not None:
            engine = session.engine_for(structure)
        self.sources: FrozenSet[Node] = frozenset(sources)
        if not self.sources:
            raise ValueError("need at least one source")
        missing = [s for s in self.sources if s not in structure]
        if missing:
            raise ValueError(f"sources outside the structure: {missing[:3]}")
        self.destinations: Optional[FrozenSet[Node]] = (
            frozenset(destinations) if destinations is not None else None
        )
        if self.destinations is not None:
            if not self.destinations:
                raise ValueError("destination set must be non-empty")
            bad = [d for d in self.destinations if d not in structure]
            if bad:
                raise ValueError(f"destinations outside the structure: {bad[:3]}")
        protected = set(self.sources)
        if self.destinations is not None:
            protected |= self.destinations
        self._editor = StructureEditor(structure, protected=protected)
        self.structure = structure
        if not 0.0 < threshold <= 1.0:
            raise ValueError(f"threshold must be in (0, 1], got {threshold}")
        self.threshold = threshold
        self.faults = faults
        self._layout_cache = LayoutCache(maxsize=32)
        self._version = 0
        self.engine = engine if engine is not None else CircuitEngine(structure)
        self.engine.rebind(structure, self._layout_cache.scoped(self._version))
        self.repairs: List[RepairStats] = []
        self.forest: Forest
        self.dist: Dict[Node, int]
        self._parent: Dict[Node, Node] = {}
        self._solve_full()
        self._wave_layout = self._build_wave_layout()

    @property
    def protected(self) -> FrozenSet[Node]:
        """Nodes churn generators must never remove."""
        return self._editor.protected

    # ------------------------------------------------------------------
    # solving
    # ------------------------------------------------------------------
    def _solve_full(self) -> None:
        """Distributed solve on the current structure + canonical re-point."""
        from repro.spf.api import solve_spf

        dest = (
            set(self.destinations)
            if self.destinations is not None
            else set(self.structure.nodes)
        )
        solve_spf(self.structure, self.sources, dest, engine=self.engine)
        # Canonical re-point: every amoebot adopts the first CCW
        # neighbor one hop closer as parent (one local round; a no-op
        # re-statement of the solver's own choice when k = 1).
        self.engine.charge_local_round()
        self.dist = bfs_distances(self.structure, self.sources)
        self._parent = {
            u: canonical_parent(self.structure, self.dist, u)
            for u in self.structure
            if u not in self.sources
        }
        self._refresh_forest()

    def _refresh_forest(self) -> None:
        self.forest = _chain_forest(
            set(self.sources), self._parent, self.destinations, self.structure
        )

    # ------------------------------------------------------------------
    # wave layout maintenance (derive chain across structure versions)
    # ------------------------------------------------------------------
    def _build_wave_layout(self) -> CircuitLayout:
        layout = self.engine.new_layout()
        for u in self.structure:
            for d in self.structure.occupied_directions(u):
                layout.assign(u, _WAVE.format(d.name), [(d, 0)])
        layout.freeze()
        return layout

    def _derive_wave_layout(
        self,
        old_structure: AmoebotStructure,
        new_structure: AmoebotStructure,
        added: Tuple[Node, ...],
        removed: Tuple[Node, ...],
    ) -> CircuitLayout:
        """Patch the singleton wave layout across one edit batch.

        Departed amoebots release their per-direction sets (and their
        surviving neighbors release the pin toward the vacated cell);
        attached amoebots assign theirs (and their neighbors gain the
        facing pin).  Everything untouched is carried by the derive
        chain — this is the ``derive()``-instead-of-rebuild integration
        the layout-reuse machinery was built for.
        """
        clone = self._wave_layout.derive_for(new_structure)
        for r in removed:
            for d in old_structure.occupied_directions(r):
                clone.release(r, _WAVE.format(d.name))
                v = r.neighbor(d)
                if v in new_structure:
                    clone.release(v, _WAVE.format(opposite(d).name))
        for a in added:
            for d in new_structure.occupied_directions(a):
                clone.assign(a, _WAVE.format(d.name), [(d, 0)])
                back = opposite(d)
                clone.assign(a.neighbor(d), _WAVE.format(back.name), [(back, 0)])
        clone.freeze()
        return clone

    # ------------------------------------------------------------------
    # edit application
    # ------------------------------------------------------------------
    def apply(self, batch: EditBatch) -> RepairStats:
        """Apply one validated edit batch and repair the forest.

        Raises :class:`EditError` (leaving the structure untouched) if
        the batch is illegal; sources and explicit destinations are
        protected.  Each batch is one ``repair`` telemetry span
        (no-op unless a tracer is active) carrying the repair mode and
        round cost.
        """
        with trace_span("repair", ops=batch.size) as span:
            stats = self._apply(batch)
            span.set(mode=stats.mode, rounds=stats.rounds, region=stats.region)
            return stats

    def _apply(self, batch: EditBatch) -> RepairStats:
        """The untraced edit-application body (see :meth:`apply`)."""
        start_rounds = self.engine.rounds.total
        old_structure = self.structure
        removed = tuple(batch.remove)
        added = tuple(batch.add)
        self._editor.apply(batch)
        new_structure = self._editor.structure(
            basis=old_structure, dirty=removed + added
        )
        self._version += 1
        self.engine.rebind(
            new_structure, self._layout_cache.scoped(self._version)
        )
        self.structure = new_structure

        region, changed, cascade_layers = update_distances(
            self.dist, new_structure, self.sources, added, removed
        )
        # Parent pointers to re-examine: the relabeled region, its
        # neighbors (their first-CCW-closer choice may involve a
        # relabeled node), and survivors next to a vacated cell (their
        # neighborhood shrank even if no label moved).
        recompute: Set[Node] = set(region)
        for u in region:
            recompute.update(new_structure.neighbors(u))
        for r in removed:
            for v in r.neighbors():
                if v in new_structure:
                    recompute.add(v)
        recompute -= self.sources

        wave_rounds = 0
        corrected = 0
        dirty_fraction = len(recompute) / len(new_structure)
        self._wave_layout = self._derive_wave_layout(
            old_structure, new_structure, added, removed
        )
        if dirty_fraction > self.threshold:
            mode = "full"
            self._solve_full()
        else:
            mode = "patch"
            # One round to announce the edit locally, the cascade's
            # rounds, the regional wave's beep rounds (ticked by the
            # engine), and one round for the termination/prune beep.
            self.engine.charge_local_round(1 + cascade_layers)
            if region:
                wave_rounds, corrected = self._repair_wave(new_structure, region)
            self.engine.charge_local_round(1)
            for r in removed:
                self._parent.pop(r, None)
            for u in recompute:
                self._parent[u] = canonical_parent(new_structure, self.dist, u)
            self._refresh_forest()

        stats = RepairStats(
            batch_ops=batch.size,
            structure_size=len(new_structure),
            region=len(region),
            dirty=len(recompute),
            mode=mode,
            rounds=self.engine.rounds.total - start_rounds,
            wave_rounds=wave_rounds,
            cascade_rounds=cascade_layers,
            corrected=corrected,
        )
        self.repairs.append(stats)
        return stats

    def apply_script(self, script: EditScript) -> List[RepairStats]:
        """Apply every batch of a script; returns the per-batch stats."""
        return [self.apply(batch) for batch in script]

    # ------------------------------------------------------------------
    # the regional repair wave (real beep rounds)
    # ------------------------------------------------------------------
    def _repair_wave(
        self, structure: AmoebotStructure, region: Set[Node]
    ) -> Tuple[int, int]:
        """Re-label the dirty region with timed beep waves.

        One wave per connected dirty component, executed under the
        parallel-group accounting (disjoint components repair in the
        same synchronous rounds).  Returns ``(wave_rounds,
        corrected)`` where ``corrected`` counts wave labels that did
        not match the incremental oracle (possible only under injected
        faults) and were healed.
        """
        engine = self.engine
        layout = self._wave_layout
        index = layout.compiled().index

        components: List[List[Node]] = []
        pending = set(region)
        while pending:
            seed = pending.pop()
            comp = [seed]
            stack = [seed]
            while stack:
                u = stack.pop()
                for v in structure.neighbors(u):
                    if v in pending:
                        pending.discard(v)
                        comp.append(v)
                        stack.append(v)
            components.append(comp)

        wave_parent: Dict[Node, Node] = {}
        wave_label: Dict[Node, int] = {}
        if self.faults is not None:
            engine.fault_injector = self.faults
        start = engine.rounds.total
        try:
            with engine.rounds.parallel() as group:
                for comp in components:
                    with group.branch():
                        self._wave_component(
                            layout, index, structure, comp, wave_parent, wave_label
                        )
        finally:
            if self.faults is not None:
                engine.fault_injector = None
        wave_rounds = engine.rounds.total - start

        # Verification (self-healing): labels are checked against the
        # incremental oracle; in the distributed view each amoebot
        # cross-checks its label against its neighbors' during the wave
        # itself, so no extra rounds are charged.
        corrected = 0
        for u in region:
            if (
                wave_label.get(u) != self.dist[u]
                or wave_parent.get(u) != canonical_parent(structure, self.dist, u)
            ):
                corrected += 1
        return wave_rounds, corrected

    def _wave_component(
        self,
        layout: CircuitLayout,
        index,
        structure: AmoebotStructure,
        comp: List[Node],
        wave_parent: Dict[Node, Node],
        wave_label: Dict[Node, int],
    ) -> None:
        comp_set = set(comp)
        supports: Dict[Node, int] = {}
        for u in comp:
            for v in structure.neighbors(u):
                if v not in comp_set:
                    supports[v] = self.dist[v]
        if not supports:
            return  # cannot happen on connected structures below threshold
        base = min(supports.values())
        max_d = max(self.dist[u] for u in comp)

        def slots(u: Node) -> List[Tuple[object, int]]:
            return [
                (d, index.index_of((u, _WAVE.format(d.name)), "wave on"))
                for d in structure.occupied_directions(u)
            ]

        slot_cache = {u: slots(u) for u in comp_set | set(supports)}
        labels: Dict[Node, int] = dict(supports)
        pending_nodes = set(comp_set)
        engine = self.engine
        cap = max_d - base + 3
        t = 0
        while pending_nodes and t < cap:
            t += 1
            level = base + t - 1
            beeps = [
                i
                for u, lab in labels.items()
                if lab == level
                for _d, i in slot_cache[u]
            ]
            ordered = sorted(pending_nodes)
            listen = [i for u in ordered for _d, i in slot_cache[u]]
            bits = engine.run_round_indexed(layout, beeps, listen)
            cursor = 0
            newly: List[Node] = []
            for u in ordered:
                u_slots = slot_cache[u]
                for offset, (d, _i) in enumerate(u_slots):
                    if bits[cursor + offset]:
                        wave_parent[u] = u.neighbor(d)  # type: ignore[arg-type]
                        wave_label[u] = base + t
                        labels[u] = base + t
                        newly.append(u)
                        break
                cursor += len(u_slots)
            pending_nodes.difference_update(newly)
        # Nodes never labeled (all supporting beeps faulted away) stay
        # out of wave_label and are healed by the verification pass.


def route_under_churn(
    dyn: DynamicSPF,
    origins: Iterable[Node],
    script: EditScript,
    edit_every: int = 1,
    max_steps: Optional[int] = None,
) -> Tuple[RoutingStats, int]:
    """Route tokens while the forest is being edited and repaired.

    Every ``edit_every`` routing steps the next batch of ``script`` is
    applied through ``dyn`` and the (repaired) forest is handed back to
    the router mid-flight; tokens stranded off the new forest are
    re-seated (counted in ``RoutingStats.rescued``).  Returns the
    routing stats and how many batches were applied before the tokens
    drained.
    """
    if edit_every < 1:
        raise ValueError("edit_every must be positive")
    batches = list(script)
    cursor = 0

    def on_step(step: int) -> Optional[Forest]:
        nonlocal cursor
        if cursor < len(batches) and step % edit_every == 0:
            dyn.apply(batches[cursor])
            cursor += 1
            return dyn.forest
        return None

    stats = route_tokens(
        RoutingPlan(dyn.forest, list(origins)),
        max_steps=max_steps,
        on_step=on_step,
    )
    return stats, cursor
