"""Dynamic structures: validated edits, fault injection, self-healing SPF.

The dynamics subsystem turns the static (k, l)-SPF solver into a
maintained system: structures evolve through validated
:class:`EditScript` batches (churn), the shortest path forest is
repaired incrementally instead of re-solved
(:class:`DynamicSPF`), and faults can be injected into the repair's
beep rounds (:class:`FaultInjector`) with detection-and-heal
verification.  See ``README.md`` ("Dynamics: build → edit → repair")
for the pipeline walk-through.
"""

from repro.dynamics.edits import (
    CHURN_KINDS,
    EditBatch,
    EditError,
    EditScript,
    StructureEditor,
    generate_churn,
)
from repro.dynamics.faults import FaultInjector, FaultStats
from repro.dynamics.maintain import (
    DynamicSPF,
    RepairStats,
    canonical_forest,
    canonical_parent,
    route_under_churn,
    update_distances,
)

__all__ = [
    "CHURN_KINDS",
    "DynamicSPF",
    "EditBatch",
    "EditError",
    "EditScript",
    "FaultInjector",
    "FaultStats",
    "RepairStats",
    "StructureEditor",
    "canonical_forest",
    "canonical_parent",
    "generate_churn",
    "route_under_churn",
    "update_distances",
]
