"""Validated edit scripts over amoebot structures, plus churn generators.

An :class:`EditBatch` is one synchronized reconfiguration step: a set of
amoebots leaving the structure and a set of new amoebots attaching to
it.  An :class:`EditScript` is a sequence of batches.  Batches are
validated *incrementally* by a :class:`StructureEditor`: every single
operation is checked with an O(1) look at the six-cell neighborhood of
the edited node (plus, for the one genuinely non-local case, a flood
fill that stops the moment it escapes the structure's bounding box) —
never by re-scanning the whole structure.

The standing assumptions (Section 1.1 of the paper) are preserved as
invariants of the editor:

* **non-empty, connected** — a removal is legal iff the occupied
  neighbors of the removed node form exactly one contiguous arc of the
  six-cell ring.  For hole-free structures this local criterion is
  *exact*: two occupied arcs connected around elsewhere would enclose
  one of the empty gap cells, contradicting hole-freeness, so more than
  one arc always means a cut vertex.
* **hole-free** — a removal creates a hole iff all six neighbors are
  occupied (the vacated cell becomes an isolated empty component),
  which the single-arc criterion already excludes.  An addition can
  only pinch off the empty region locally: if the empty neighbors of
  the new node form a single arc they stay connected around it
  (consecutive ring cells are adjacent on the triangular grid); with
  several arcs, each arc's empty region is flood-filled until it
  escapes the bounding box (infinite, fine) or exhausts (a new hole —
  the edit is rejected).

Churn generators (:func:`generate_churn`) build seeded edit scripts of
four flavors — ``growth``, ``erosion``, ``tunnel`` and ``block_move`` —
plus a ``mixed`` blend, always through the validating editor, so every
generated script is applicable batch by batch.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from repro.grid.coords import Node
from repro.grid.directions import all_directions_ccw
from repro.grid.structure import AmoebotStructure

#: Churn flavors understood by :func:`generate_churn` (and, through the
#: experiment specs, by ``churn-*`` campaigns and ``repro churn``).
CHURN_KINDS = ("growth", "erosion", "tunnel", "block_move", "mixed")


class EditError(ValueError):
    """An edit operation would violate the model's standing assumptions."""


@dataclass(frozen=True)
class EditBatch:
    """One synchronized edit step: removals applied first, then additions.

    Within a batch the operations are validated and applied in order
    (all removals in the given order, then all additions), so a batch
    is legal exactly when that sequence keeps every intermediate node
    set connected and hole-free.
    """

    remove: Tuple[Node, ...] = ()
    add: Tuple[Node, ...] = ()

    def __post_init__(self) -> None:
        removes = tuple(self.remove)
        adds = tuple(self.add)
        if len(set(removes)) != len(removes) or len(set(adds)) != len(adds):
            raise EditError("edit batch repeats a node")
        overlap = set(removes) & set(adds)
        if overlap:
            raise EditError(
                f"edit batch both removes and adds {sorted(overlap)[:3]}"
            )
        object.__setattr__(self, "remove", removes)
        object.__setattr__(self, "add", adds)

    @property
    def size(self) -> int:
        """Total number of operations in the batch."""
        return len(self.remove) + len(self.add)

    def ops(self) -> Iterator[Tuple[str, Node]]:
        """The batch as an ordered operation stream."""
        for u in self.remove:
            yield ("remove", u)
        for u in self.add:
            yield ("add", u)

    def to_dict(self) -> Dict[str, List[List[int]]]:
        """JSON-ready form (nodes as ``[x, y]`` pairs)."""
        return {
            "remove": [[u.x, u.y] for u in self.remove],
            "add": [[u.x, u.y] for u in self.add],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EditBatch":
        """Inverse of :meth:`to_dict`."""
        def nodes(key: str) -> Tuple[Node, ...]:
            raw = data.get(key, [])
            if not isinstance(raw, (list, tuple)):
                raise EditError(f"batch field {key!r} must be a list")
            return tuple(Node(int(x), int(y)) for x, y in raw)

        return cls(remove=nodes("remove"), add=nodes("add"))


@dataclass(frozen=True)
class EditScript:
    """A sequence of edit batches, optionally tagged with its generator."""

    batches: Tuple[EditBatch, ...]
    kind: str = "manual"
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "batches", tuple(self.batches))

    def __len__(self) -> int:
        return len(self.batches)

    def __iter__(self) -> Iterator[EditBatch]:
        return iter(self.batches)

    @property
    def total_ops(self) -> int:
        """Total operations across all batches."""
        return sum(batch.size for batch in self.batches)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready form."""
        return {
            "kind": self.kind,
            "seed": self.seed,
            "batches": [batch.to_dict() for batch in self.batches],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "EditScript":
        """Inverse of :meth:`to_dict`."""
        raw = data.get("batches", [])
        if not isinstance(raw, (list, tuple)):
            raise EditError("'batches' must be a list")
        return cls(
            batches=tuple(EditBatch.from_dict(b) for b in raw),
            kind=str(data.get("kind", "manual")),
            seed=data.get("seed"),  # type: ignore[arg-type]
        )


@dataclass
class EditorStats:
    """Bookkeeping probe: how much incremental validation work was done."""

    adds: int = 0
    removes: int = 0
    rejected: int = 0
    #: Cells visited by the addition hole check's escape flood fills —
    #: the only validation cost that is not O(1) per operation.
    flood_cells: int = 0


class StructureEditor:
    """Applies edit operations to an evolving node set, validating each.

    The editor owns a mutable copy of the node set and a monotone
    bounding box (it never shrinks on removals — it only needs to
    *contain* the structure for the escape test to be sound).  All
    validation is local, per the module docstring.

    ``protected`` nodes may never be removed — the dynamics layer
    protects the SPF sources (and optionally the destinations) with it.
    """

    def __init__(
        self,
        structure: AmoebotStructure | Iterable[Node],
        protected: Iterable[Node] = (),
    ):
        nodes = (
            structure.nodes
            if isinstance(structure, AmoebotStructure)
            else frozenset(structure)
        )
        if not nodes:
            raise EditError("cannot edit an empty structure")
        self._nodes: Set[Node] = set(nodes)
        self.protected: FrozenSet[Node] = frozenset(protected)
        xs = [u.x for u in nodes]
        ys = [u.y for u in nodes]
        self._min_x, self._max_x = min(xs), max(xs)
        self._min_y, self._max_y = min(ys), max(ys)
        self.stats = EditorStats()
        # Sampling pool for the churn generators: a list view of the
        # node set with lazy deletion (removals leave stale entries that
        # are discarded on draw; additions append).  Built on first use
        # so plain editing never pays for it.
        self._pool: Optional[List[Node]] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: Node) -> bool:
        return node in self._nodes

    @property
    def nodes(self) -> FrozenSet[Node]:
        """The current node set (a snapshot)."""
        return frozenset(self._nodes)

    def structure(
        self,
        basis: Optional[AmoebotStructure] = None,
        dirty: Iterable[Node] = (),
    ) -> AmoebotStructure:
        """The current node set as a trusted :class:`AmoebotStructure`.

        All invariants were maintained incrementally, so the O(n)
        re-validation of the public constructor is skipped;
        ``basis``/``dirty`` forward to
        :meth:`AmoebotStructure.from_validated` for cache reuse.
        """
        return AmoebotStructure.from_validated(
            self._nodes, basis=basis, dirty=dirty
        )

    def sample_node(self, rng: random.Random) -> Node:
        """A uniformly random occupied node, in amortized O(1).

        Deterministic for a given RNG state and edit history.  Stale
        pool entries (removed nodes) are swap-deleted as they are
        drawn; the pool is rebuilt from the sorted node set only when
        lazy deletion has hollowed it out.
        """
        pool = self._pool
        if pool is None or not pool or len(pool) > 2 * len(self._nodes):
            pool = self._pool = sorted(self._nodes)
        while True:
            i = rng.randrange(len(pool))
            u = pool[i]
            if u in self._nodes:
                return u
            pool[i] = pool[-1]
            pool.pop()
            if not pool:
                pool = self._pool = sorted(self._nodes)

    # ------------------------------------------------------------------
    # single-operation validation (all local)
    # ------------------------------------------------------------------
    def _ring(self, u: Node) -> List[bool]:
        """Occupancy of the six ring neighbors, counterclockwise."""
        nodes = self._nodes
        return [u.neighbor(d) in nodes for d in all_directions_ccw()]

    @staticmethod
    def _arc_count(ring: List[bool]) -> int:
        """Number of contiguous ``True`` arcs in the cyclic ring."""
        arcs = 0
        for i in range(6):
            if ring[i] and not ring[i - 1]:
                arcs += 1
        if arcs == 0 and ring[0]:
            return 1  # all six occupied
        return arcs

    def _in_box(self, u: Node) -> bool:
        return (
            self._min_x <= u.x <= self._max_x
            and self._min_y <= u.y <= self._max_y
        )

    def _region_is_finite(self, start: Node, pending: Node) -> Set[Node]:
        """Empty region of ``start`` if finite, else empty set.

        Flood-fills empty cells (treating ``pending`` — the node being
        added — as occupied) and stops the moment a cell escapes the
        bounding box: everything beyond the box is empty and connected
        to infinity, so an escape proves the region infinite.
        """
        seen: Set[Node] = {start}
        stack = [start]
        while stack:
            c = stack.pop()
            self.stats.flood_cells += 1
            for w in c.neighbors():
                if w in self._nodes or w == pending or w in seen:
                    continue
                if not self._in_box(w):
                    return set()
                seen.add(w)
                stack.append(w)
        return seen

    def check_add(self, u: Node) -> Optional[str]:
        """Why adding ``u`` would be illegal, or ``None`` if legal."""
        if u in self._nodes:
            return f"{u} is already occupied"
        ring = self._ring(u)
        if not any(ring):
            return f"{u} has no occupied neighbor (would disconnect)"
        empty_arcs = self._arc_count([not r for r in ring])
        if empty_arcs <= 1:
            return None  # the surrounding empty region cannot split
        # The addition splits the local empty region: every resulting
        # arc must still reach infinity.
        checked: Set[Node] = set()
        directions = all_directions_ccw()
        for i in range(6):
            if ring[i]:
                continue
            cell = u.neighbor(directions[i])
            if cell in checked:
                continue
            region = self._region_is_finite(cell, pending=u)
            if region:
                return f"adding {u} would pinch off a hole at {cell}"
            checked.add(cell)
        return None

    def check_remove(self, u: Node) -> Optional[str]:
        """Why removing ``u`` would be illegal, or ``None`` if legal."""
        if u not in self._nodes:
            return f"{u} is not occupied"
        if u in self.protected:
            return f"{u} is protected (source/destination)"
        if len(self._nodes) == 1:
            return "cannot remove the last amoebot"
        ring = self._ring(u)
        arcs = self._arc_count(ring)
        if arcs != 1:
            return f"removing {u} would disconnect the structure ({arcs} arcs)"
        if all(ring):
            return f"removing {u} would create a one-cell hole"
        return None

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def add(self, u: Node) -> None:
        """Add one node (validated)."""
        reason = self.check_add(u)
        if reason is not None:
            self.stats.rejected += 1
            raise EditError(f"illegal addition: {reason}")
        self._nodes.add(u)
        self._min_x = min(self._min_x, u.x)
        self._max_x = max(self._max_x, u.x)
        self._min_y = min(self._min_y, u.y)
        self._max_y = max(self._max_y, u.y)
        if self._pool is not None:
            self._pool.append(u)
        self.stats.adds += 1

    def remove(self, u: Node) -> None:
        """Remove one node (validated).  The bounding box stays monotone."""
        reason = self.check_remove(u)
        if reason is not None:
            self.stats.rejected += 1
            raise EditError(f"illegal removal: {reason}")
        self._nodes.discard(u)
        self.stats.removes += 1

    def apply(self, batch: EditBatch) -> None:
        """Apply a whole batch atomically (rolled back on rejection)."""
        done: List[Tuple[str, Node]] = []
        adds_before = self.stats.adds
        removes_before = self.stats.removes
        try:
            for op, u in batch.ops():
                if op == "remove":
                    self.remove(u)
                else:
                    self.add(u)
                done.append((op, u))
        except EditError:
            for op, u in reversed(done):
                if op == "remove":
                    self._nodes.add(u)
                else:
                    self._nodes.discard(u)
            # The rolled-back operations never happened; flood_cells is
            # left alone (it measures validation work actually done).
            self.stats.adds = adds_before
            self.stats.removes = removes_before
            self._pool = None  # direct node restores bypassed the pool
            raise

    def apply_script(self, script: EditScript) -> None:
        """Apply every batch of a script in order."""
        for batch in script:
            self.apply(batch)


# ----------------------------------------------------------------------
# churn generators
# ----------------------------------------------------------------------


def _boundary_candidates(editor: StructureEditor, rng: random.Random, tries: int):
    """Random occupied nodes, cheaply sampled with replacement."""
    for _ in range(tries):
        yield editor.sample_node(rng)


def _grow_one(
    editor: StructureEditor,
    rng: random.Random,
    exclude: Iterable[Node] = (),
) -> Optional[Node]:
    banned = set(exclude)
    for anchor in _boundary_candidates(editor, rng, tries=32):
        empties = [
            v for v in anchor.neighbors() if v not in editor and v not in banned
        ]
        rng.shuffle(empties)
        for v in empties:
            if editor.check_add(v) is None:
                editor.add(v)
                return v
    return None


def _erode_one(editor: StructureEditor, rng: random.Random) -> Optional[Node]:
    for u in _boundary_candidates(editor, rng, tries=48):
        if editor.check_remove(u) is None:
            editor.remove(u)
            return u
    return None


def _tunnel_batch(
    editor: StructureEditor, rng: random.Random, length: int
) -> EditBatch:
    """Carve a straight fjord inward from a random boundary node."""
    removed: List[Node] = []
    for start in _boundary_candidates(editor, rng, tries=48):
        directions = list(all_directions_ccw())
        rng.shuffle(directions)
        for d in directions:
            cur = start
            trial: List[Node] = []
            while len(trial) < length and cur in editor:
                if editor.check_remove(cur) is not None:
                    break
                editor.remove(cur)
                trial.append(cur)
                cur = cur.neighbor(d)
            if trial:
                removed = trial
                break
        if removed:
            break
    return EditBatch(remove=tuple(removed))


def _block_move_batch(
    editor: StructureEditor, rng: random.Random, size: int
) -> EditBatch:
    """Detach mass on one side, re-attach the same amount elsewhere."""
    removed: List[Node] = []
    for _ in range(size):
        u = _erode_one(editor, rng)
        if u is None:
            break
        removed.append(u)
    added: List[Node] = []
    for _ in range(len(removed)):
        # A "move" must not re-occupy a cell vacated in the same batch
        # (batches keep removals and additions disjoint).
        v = _grow_one(editor, rng, exclude=removed)
        if v is None:
            break
        added.append(v)
    return EditBatch(remove=tuple(removed), add=tuple(added))


def generate_churn(
    structure: AmoebotStructure,
    kind: str,
    steps: int,
    batch_size: int = 1,
    seed: int = 0,
    protected: Iterable[Node] = (),
) -> EditScript:
    """Generate a seeded, validated churn script of ``steps`` batches.

    Every batch is built through a :class:`StructureEditor`, so the
    returned script applies cleanly to ``structure`` batch by batch.
    ``protected`` nodes (typically sources and destinations) are never
    removed.  Batches may come out smaller than ``batch_size`` (or
    empty, in which case generation stops early) when the structure
    runs out of legal operations of the requested flavor.
    """
    if kind not in CHURN_KINDS:
        raise EditError(f"unknown churn kind {kind!r}; expected one of {CHURN_KINDS}")
    if steps < 1:
        raise EditError(f"churn steps must be positive, got {steps}")
    if batch_size < 1:
        raise EditError(f"churn batch size must be positive, got {batch_size}")
    rng = random.Random(seed)
    editor = StructureEditor(structure, protected=protected)
    batches: List[EditBatch] = []
    for _ in range(steps):
        flavor = kind
        if kind == "mixed":
            flavor = rng.choice(("growth", "erosion", "tunnel", "block_move"))
        if flavor == "growth":
            added = [
                u
                for u in (_grow_one(editor, rng) for _ in range(batch_size))
                if u is not None
            ]
            batch = EditBatch(add=tuple(added))
        elif flavor == "erosion":
            removed = [
                u
                for u in (_erode_one(editor, rng) for _ in range(batch_size))
                if u is not None
            ]
            batch = EditBatch(remove=tuple(removed))
        elif flavor == "tunnel":
            batch = _tunnel_batch(editor, rng, length=batch_size)
        else:  # block_move
            batch = _block_move_batch(editor, rng, size=max(1, batch_size // 2))
        if batch.size == 0:
            break
        batches.append(batch)
    if not batches:
        raise EditError(
            f"churn generator {kind!r} found no legal operations on "
            f"a structure of {len(structure)} nodes"
        )
    return EditScript(batches=tuple(batches), kind=kind, seed=seed)
