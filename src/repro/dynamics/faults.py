"""Fault injection for synchronous beep rounds.

A :class:`FaultInjector` plugs into
:attr:`CircuitEngine.fault_injector <repro.sim.engine.CircuitEngine>`:
every round's beep list passes through it before propagation.  Two
fault classes are modeled:

* **crash faults** — crashed amoebots are fail-silent: every beep they
  would emit is suppressed (their pins still conduct; the wiring is
  passive).  Crashes persist until :meth:`recover`.
* **message faults** — each surviving beep is independently dropped
  with probability ``drop_prob`` (a lossy-beep model in the spirit of
  fault-tolerant beeping/pod layers).

The injector keeps *detection counters*: on the indexed fast path
(:meth:`CircuitEngine.run_round_indexed`, which all repair waves use),
whenever a fault actually changed a round's outcome the round is
re-propagated fault-free and the listened partition sets that should
have heard a beep but did not are counted in
:attr:`FaultStats.missed_hears`.  The id-keyed ``run_round`` path only
counts the injected faults themselves (``suppressed`` / ``dropped`` /
``faulty_rounds``) — it has no listen list to diff.  The dynamics layer
arms an injector only around its repair waves and heals every damaged
label (see :class:`repro.dynamics.maintain.DynamicSPF`), so the counters
double as a ground-truth "faults detected" metric.

Randomness is owned by the injector (seeded), so a faulty run is
reproducible bit for bit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set

from repro.grid.coords import Node
from repro.sim.compiled import CompiledLayout
from repro.sim.pins import PartitionSetId


@dataclass
class FaultStats:
    """Counters of injected and detected faults."""

    suppressed: int = 0     #: beeps silenced by crashed amoebots
    dropped: int = 0        #: beeps lost to the drop probability
    faulty_rounds: int = 0  #: rounds in which at least one beep was lost
    missed_hears: int = 0   #: listened sets that missed a beep (detected)

    @property
    def lost(self) -> int:
        """Total beeps that never made it onto their circuit."""
        return self.suppressed + self.dropped


class FaultInjector:
    """Suppresses beeps of crashed amoebots and randomly drops others."""

    def __init__(
        self,
        crashed: Iterable[Node] = (),
        drop_prob: float = 0.0,
        seed: int = 0,
    ):
        if not 0.0 <= drop_prob <= 1.0:
            raise ValueError(f"drop probability must be in [0, 1], got {drop_prob}")
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.crashed: Set[Node] = set(crashed)
        self.drop_prob = drop_prob
        self._rng = random.Random(seed)
        self.stats = FaultStats()

    def crash(self, node: Node) -> None:
        """Crash one amoebot (fail-silent from the next round on)."""
        self.crashed.add(node)

    def recover(self, node: Node) -> None:
        """Recover a crashed amoebot."""
        self.crashed.discard(node)

    # ------------------------------------------------------------------
    # engine hooks
    # ------------------------------------------------------------------
    def _keep(self, node: Node) -> bool:
        if node in self.crashed:
            self.stats.suppressed += 1
            return False
        if self.drop_prob and self._rng.random() < self.drop_prob:
            self.stats.dropped += 1
            return False
        return True

    def filter_ids(
        self, beeps: Iterable[PartitionSetId]
    ) -> List[PartitionSetId]:
        """Filter id-keyed beeps (the :meth:`run_round` path)."""
        kept: List[PartitionSetId] = []
        lost = False
        for set_id in beeps:
            if self._keep(set_id[0]):
                kept.append(set_id)
            else:
                lost = True
        if lost:
            self.stats.faulty_rounds += 1
        return kept

    def execute(
        self,
        compiled: CompiledLayout,
        beeps: Iterable[int],
        listen: Optional[Sequence[int]],
    ) -> List[bool]:
        """Execute one indexed round under faults, tracking detection.

        When a beep was lost, the fault-free round is propagated too
        (pure array work, no extra synchronous round) and every
        listened set that hears in the clean run but not in the faulty
        one increments :attr:`FaultStats.missed_hears`.

        Backend-agnostic: the result bits come back as whatever the
        compilation's backend produces (list of bools or a boolean
        ndarray) and the detection diff handles either — under numpy it
        is a single vectorized ``&``/``sum`` pass.
        """
        all_beeps = list(beeps)
        ids = compiled.index.ids
        kept = [i for i in all_beeps if self._keep(ids[i][0])]
        result = compiled.execute(kept, listen)
        if len(kept) != len(all_beeps):
            self.stats.faulty_rounds += 1
            clean = compiled.execute(all_beeps, listen)
            self.stats.missed_hears += missed_hears(clean, result)
        return result


def missed_hears(clean, faulty) -> int:
    """How many positions hear in ``clean`` but not in ``faulty``.

    Accepts list-of-bool and boolean-ndarray bit vectors in any
    combination (the two executions always share a backend in practice,
    but the diff does not rely on it).  The vectors must describe the
    same listen list; diverging lengths mean the caller compared rounds
    of different layouts, which would silently miscount — rejected.
    """
    if len(clean) != len(faulty):
        raise ValueError(
            "cannot diff round results of different lengths "
            f"({len(clean)} != {len(faulty)}); both rounds must use the "
            "same layout and listen list"
        )
    if type(clean) is list or type(faulty) is list:
        return sum(1 for should, did in zip(clean, faulty) if should and not did)
    return int((clean & ~faulty).sum())
