"""Synchronous token routing along a shortest path forest.

Tokens start on the destination amoebots and travel along parent
pointers toward their tree's source.  Per synchronous step every token
advances one hop if its parent node is free (or being vacated this same
step — chains of tokens move in lockstep, the standard convoy rule);
ties for the same target cell resolve deterministically by token id.
Because every token follows a shortest path to its *closest* source,
the total travel distance is optimal per token, and the simulation
reports how much congestion inflates the makespan beyond the lower
bound ``max_d dist(S, d)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from repro.grid.coords import Node
from repro.spf.types import Forest


@dataclass
class RoutingStats:
    """Outcome of a routing simulation."""

    steps: int
    total_moves: int
    lower_bound: int
    token_paths: Dict[int, List[Node]]

    @property
    def congestion_overhead(self) -> float:
        """Makespan divided by the congestion-free lower bound."""
        return self.steps / max(self.lower_bound, 1)


@dataclass
class RoutingPlan:
    """A forest plus the tokens to route along it."""

    forest: Forest
    token_origins: List[Node]

    def __post_init__(self) -> None:
        for origin in self.token_origins:
            if origin not in self.forest.members:
                raise ValueError(f"token origin {origin} is not in the forest")


def route_tokens(
    plan: RoutingPlan,
    max_steps: Optional[int] = None,
) -> RoutingStats:
    """Simulate the synchronous routing until every token reaches a source.

    A token parks (and disappears from the occupancy map) when it
    reaches its tree's source — sources absorb arbitrarily many tokens,
    modelling the "entry point" semantics of reconfiguration.
    """
    forest = plan.forest
    positions: Dict[int, Node] = dict(enumerate(plan.token_origins))
    paths: Dict[int, List[Node]] = {t: [p] for t, p in positions.items()}
    arrived: Set[int] = {
        t for t, p in positions.items() if p in forest.sources
    }
    occupied: Dict[Node, int] = {
        p: t for t, p in positions.items() if t not in arrived
    }
    lower_bound = max(
        (forest.depth_of(p) for p in plan.token_origins), default=0
    )
    if max_steps is None:
        max_steps = 4 * lower_bound + 4 * len(plan.token_origins) + 8

    steps = 0
    total_moves = 0
    while len(arrived) < len(positions):
        if steps > max_steps:
            raise RuntimeError("routing did not converge; congestion deadlock?")
        steps += 1
        # Desired moves this step, deterministic priority by token id.
        desires: Dict[Node, int] = {}
        for t in sorted(positions):
            if t in arrived:
                continue
            target = forest.parent[positions[t]]
            if target not in desires:
                desires[target] = t
        # A move succeeds if the target is free, or is vacated by a
        # token that itself moves (resolved by iterating convoys).
        moved: Dict[int, Node] = {}
        changed = True
        while changed:
            changed = False
            for target, t in list(desires.items()):
                if t in moved:
                    continue
                holder = occupied.get(target)
                if (
                    holder is None
                    or holder in moved
                    or (target in forest.sources)
                ):
                    moved[t] = target
                    changed = True
        for t, target in moved.items():
            source_pos = positions[t]
            if occupied.get(source_pos) == t:
                del occupied[source_pos]
            positions[t] = target
            paths[t].append(target)
            total_moves += 1
            if target in forest.sources:
                arrived.add(t)
            else:
                occupied[target] = t
    return RoutingStats(
        steps=steps,
        total_moves=total_moves,
        lower_bound=lower_bound,
        token_paths=paths,
    )
