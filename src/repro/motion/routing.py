"""Synchronous token routing along a shortest path forest.

Tokens start on the destination amoebots and travel along parent
pointers toward their tree's source.  Per synchronous step every token
advances one hop if its parent node is free (or being vacated this same
step — chains of tokens move in lockstep, the standard convoy rule);
ties for the same target cell resolve deterministically by token id.
Because every token follows a shortest path to its *closest* source,
the total travel distance is optimal per token, and the simulation
reports how much congestion inflates the makespan beyond the lower
bound ``max_d dist(S, d)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set

from repro.grid.coords import Node, grid_distance
from repro.spf.types import Forest


@dataclass
class RoutingStats:
    """Outcome of a routing simulation."""

    steps: int
    total_moves: int
    lower_bound: int
    token_paths: Dict[int, List[Node]]
    #: Tokens re-seated onto the nearest forest member after a
    #: mid-flight forest swap stranded them (see ``on_step``).
    rescued: int = 0

    @property
    def congestion_overhead(self) -> float:
        """Makespan divided by the congestion-free lower bound."""
        return self.steps / max(self.lower_bound, 1)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready summary (what the facade and service serialize).

        Per-token paths are summarized to their lengths — full node
        sequences are in-process data (:attr:`token_paths`), not wire
        payload.
        """
        return {
            "steps": self.steps,
            "total_moves": self.total_moves,
            "lower_bound": self.lower_bound,
            "congestion_overhead": round(self.congestion_overhead, 6),
            "rescued": self.rescued,
            "path_lengths": {
                t: len(path) - 1 for t, path in sorted(self.token_paths.items())
            },
        }

    def reset(self) -> None:
        """Zero every counter (symmetry with the other stat objects).

        Routing stats are per-simulation values rather than cumulative
        process counters, but exposing the same ``to_dict``/``reset``
        pair lets the metrics registry treat every stats object
        uniformly.
        """
        self.steps = 0
        self.total_moves = 0
        self.lower_bound = 0
        self.token_paths = {}
        self.rescued = 0


@dataclass
class RoutingPlan:
    """A forest plus the tokens to route along it."""

    forest: Forest
    token_origins: List[Node]

    def __post_init__(self) -> None:
        for origin in self.token_origins:
            if origin not in self.forest.members:
                raise ValueError(f"token origin {origin} is not in the forest")


def route_tokens(
    plan: RoutingPlan,
    max_steps: Optional[int] = None,
    on_step: Optional[Callable[[int], Optional[Forest]]] = None,
) -> RoutingStats:
    """Simulate the synchronous routing until every token reaches a source.

    A token parks (and disappears from the occupancy map) when it
    reaches its tree's source — sources absorb arbitrarily many tokens,
    modelling the "entry point" semantics of reconfiguration.

    ``on_step`` (optional) is called after each synchronous step with
    the step number; returning a :class:`Forest` swaps the routing
    forest *mid-flight* — this is how the dynamics layer routes over a
    forest being repaired under churn.  Tokens whose position left the
    new forest are re-seated on the nearest free member (deterministic:
    closest by grid distance, ties by node order), counted in
    :attr:`RoutingStats.rescued`; the step budget is re-derived from
    the new forest so a legitimate swap never trips the deadlock guard.
    """
    forest = plan.forest
    positions: Dict[int, Node] = dict(enumerate(plan.token_origins))
    paths: Dict[int, List[Node]] = {t: [p] for t, p in positions.items()}
    arrived: Set[int] = {
        t for t, p in positions.items() if p in forest.sources
    }
    occupied: Dict[Node, int] = {
        p: t for t, p in positions.items() if t not in arrived
    }
    lower_bound = max(
        (forest.depth_of(p) for p in plan.token_origins), default=0
    )
    auto_budget = max_steps is None
    if max_steps is None:
        max_steps = 4 * lower_bound + 4 * len(plan.token_origins) + 8

    steps = 0
    total_moves = 0
    rescued = 0
    while len(arrived) < len(positions):
        if steps > max_steps:
            raise RuntimeError("routing did not converge; congestion deadlock?")
        steps += 1
        # Desired moves this step, deterministic priority by token id.
        desires: Dict[Node, int] = {}
        for t in sorted(positions):
            if t in arrived:
                continue
            target = forest.parent[positions[t]]
            if target not in desires:
                desires[target] = t
        # A move succeeds if the target is free, or is vacated by a
        # token that itself moves (resolved by iterating convoys).
        moved: Dict[int, Node] = {}
        changed = True
        while changed:
            changed = False
            for target, t in list(desires.items()):
                if t in moved:
                    continue
                holder = occupied.get(target)
                if (
                    holder is None
                    or holder in moved
                    or (target in forest.sources)
                ):
                    moved[t] = target
                    changed = True
        for t, target in moved.items():
            source_pos = positions[t]
            if occupied.get(source_pos) == t:
                del occupied[source_pos]
            positions[t] = target
            paths[t].append(target)
            total_moves += 1
            if target in forest.sources:
                arrived.add(t)
            else:
                occupied[target] = t
        if on_step is not None:
            swapped = on_step(steps)
            if swapped is not None:
                forest = swapped
                rescued += _reseat_tokens(
                    forest, positions, paths, occupied, arrived
                )
                if auto_budget:
                    active = [t for t in positions if t not in arrived]
                    remaining = max(
                        (forest.depth_of(positions[t]) for t in active),
                        default=0,
                    )
                    max_steps = steps + 4 * remaining + 4 * len(active) + 8
    return RoutingStats(
        steps=steps,
        total_moves=total_moves,
        lower_bound=lower_bound,
        token_paths=paths,
        rescued=rescued,
    )


def _reseat_tokens(
    forest: Forest,
    positions: Dict[int, Node],
    paths: Dict[int, List[Node]],
    occupied: Dict[Node, int],
    arrived: Set[int],
) -> int:
    """Re-seat stranded tokens after a mid-flight forest swap.

    A token is stranded when its position is no longer a forest member
    (the node was removed, or pruned out of the forest).  It hops to
    the nearest still-free member — deterministically by (grid
    distance, node order) — and arrival is re-evaluated against the new
    forest's sources.  Returns the number of rescues.
    """
    rescued = 0
    occupied.clear()
    members = sorted(forest.members)
    active = [t for t in sorted(positions) if t not in arrived]
    stranded = []
    # Settle surviving tokens first so rescues never land on them.
    for t in active:
        p = positions[t]
        if p not in forest.members:
            stranded.append(t)
        elif p in forest.sources:
            arrived.add(t)
        else:
            occupied[p] = t
    for t in stranded:
        p = positions[t]
        target = min(
            (
                m
                for m in members
                if m not in occupied or m in forest.sources
            ),
            key=lambda m: (grid_distance(p, m), m),
        )
        positions[t] = target
        paths[t].append(target)
        rescued += 1
        if target in forest.sources:
            arrived.add(t)
        else:
            occupied[target] = t
    return rescued
