"""Token routing along shortest path forests.

The Kostitsyna et al. application the paper's introduction motivates:
amoebots (or payload tokens they carry) travel through the structure
along the shortest path forest toward their assigned sources.  This
package simulates the synchronous movement with single-occupancy
congestion resolution and reports makespan statistics, demonstrating
what the forest is *for*.
"""

from repro.motion.routing import RoutingPlan, RoutingStats, route_tokens

__all__ = ["RoutingPlan", "RoutingStats", "route_tokens"]
