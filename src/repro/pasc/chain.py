"""PASC on chains of units.

A *unit* is one PASC instance operated by an amoebot.  On plain chains
every amoebot operates a single unit; in the Euler tour technique an
amoebot operates one unit per occurrence on the tour (at most its degree,
hence at most six).  Consecutive units always sit on neighboring amoebots
and are joined by a :class:`ChainLink` naming the physical edge and the
two channels carrying the primary and secondary wires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.grid.coords import Node
from repro.grid.directions import Direction, opposite
from repro.sim.circuits import CircuitLayout
from repro.sim.pins import PartitionSetId

#: A unit is identified by its operating amoebot and a local occurrence id.
Unit = Tuple[Node, str]


@dataclass(frozen=True)
class ChainLink:
    """The physical wiring between consecutive chain units.

    The link occupies channels ``primary_channel`` and
    ``secondary_channel`` of the edge leaving ``src`` in ``direction``.
    """

    src: Node
    direction: Direction
    primary_channel: int
    secondary_channel: int

    def dst(self) -> Node:
        """The amoebot at the far end of the link."""
        return self.src.neighbor(self.direction)


def chain_links_for_nodes(
    nodes: Sequence[Node],
    primary_channel: int = 0,
    secondary_channel: int = 1,
) -> List[ChainLink]:
    """Links joining consecutive nodes of a plain amoebot chain."""
    links = []
    for u, v in zip(nodes, nodes[1:]):
        links.append(ChainLink(u, u.direction_to(v), primary_channel, secondary_channel))
    return links


class PascChainRun:
    """One PASC execution over a chain of units.

    Parameters
    ----------
    units:
        The chain ``(u_0, ..., u_{m-1})`` as (amoebot, occurrence-id)
        pairs.  Occurrence ids keep partition-set labels of multiple
        units at the same amoebot distinct; plain chains may use ``""``.
    links:
        ``links[i]`` wires unit ``i`` to unit ``i+1``; exactly
        ``len(units) - 1`` entries.
    weights:
        0/1 participation weights per unit; default all 1 (plain PASC).
    tag:
        Label prefix isolating this run's partition sets from others
        sharing the same layout.

    After :func:`~repro.pasc.runner.run_pasc` completes, ``values()``
    maps every unit to its *exclusive* weighted prefix count
    :math:`\\sum_{j<i} w(u_j)` and ``inclusive_values()`` to the
    inclusive sum.  (Amoebots read these bit by bit; the accumulated
    integers live in the driver, which is an observer convenience — the
    per-amoebot state is the O(1) dataclass the construction requires.)
    """

    def __init__(
        self,
        units: Sequence[Unit],
        links: Sequence[ChainLink],
        weights: Optional[Sequence[int]] = None,
        tag: str = "pasc",
    ):
        if not units:
            raise ValueError("chain must contain at least one unit")
        if len(links) != len(units) - 1:
            raise ValueError("need exactly one link between consecutive units")
        for (node, _), link in zip(units, links):
            if link.src != node:
                raise ValueError(f"link {link} does not start at its unit {node}")
        for (node, _), link in zip(units[1:], links):
            if link.dst() != node:
                raise ValueError(f"link {link} does not end at its unit {node}")
        if weights is None:
            weights = [1] * len(units)
        if len(weights) != len(units):
            raise ValueError("one weight per unit required")
        if any(w not in (0, 1) for w in weights):
            raise ValueError("weights must be 0 or 1")
        self.units = list(units)
        self.links = list(links)
        self.weights = list(weights)
        self.tag = tag
        # Algorithm state (one O(1) record per unit).
        self._active = [w == 1 for w in self.weights]
        self._value = [0] * len(units)
        self._iteration = 0
        #: Units whose activity flipped in the last absorb(); exactly
        #: these change their outgoing-link wiring for the next
        #: iteration (the layout-reuse contract's "touched region").
        self._flipped: List[int] = []
        seen = set()
        for unit in self.units:
            if unit in seen:
                raise ValueError(f"duplicate unit {unit}")
            seen.add(unit)
        # Static part of the wiring fingerprint; the dynamic part is the
        # per-unit activity snapshot (see wiring_key()).
        self._wiring_base = (
            "chain", self.tag, tuple(self.units), tuple(self.links),
        )

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def _label(self, index: int, which: str) -> str:
        node, uid = self.units[index]
        return f"{self.tag}:{uid}:{which}" if uid else f"{self.tag}:{which}"

    def primary_set(self, index: int) -> PartitionSetId:
        """Partition-set id of unit ``index``'s primary wire."""
        return (self.units[index][0], self._label(index, "p"))

    def secondary_set(self, index: int) -> PartitionSetId:
        """Partition-set id of unit ``index``'s secondary wire."""
        return (self.units[index][0], self._label(index, "s"))

    # ------------------------------------------------------------------
    # runner protocol
    # ------------------------------------------------------------------
    def is_done(self) -> bool:
        """No participant is active: all further bits are zero."""
        return not any(self._active)

    def _unit_wiring(
        self, i: int
    ) -> Tuple[List[Tuple[Direction, int]], List[Tuple[Direction, int]]]:
        """Primary/secondary pin lists of unit ``i`` for its current state.

        Unit ``i`` owns the wiring of its *outgoing* link ``links[i]``:
        straight when passive, crossed when active.  Incoming links are
        always joined straight to the unit's own sets.
        """
        p_pins: List[Tuple[Direction, int]] = []
        s_pins: List[Tuple[Direction, int]] = []
        if i > 0:
            link = self.links[i - 1]
            back = opposite(link.direction)
            p_pins.append((back, link.primary_channel))
            s_pins.append((back, link.secondary_channel))
        if i < len(self.links):
            link = self.links[i]
            if self._active[i]:
                # Crossed: the primary set drives the secondary wire.
                p_pins.append((link.direction, link.secondary_channel))
                s_pins.append((link.direction, link.primary_channel))
            else:
                p_pins.append((link.direction, link.primary_channel))
                s_pins.append((link.direction, link.secondary_channel))
        return p_pins, s_pins

    def contribute_layout(self, layout: CircuitLayout) -> None:
        """Wire this iteration's primary/secondary circuits into ``layout``."""
        for i, (node, _) in enumerate(self.units):
            p_pins, s_pins = self._unit_wiring(i)
            layout.assign(node, self._label(i, "p"), p_pins)
            layout.assign(node, self._label(i, "s"), s_pins)
        self._flipped = []

    def rewire_layout(self, layout: CircuitLayout) -> None:
        """Reassign only the units whose wiring changed since the last
        contribute/rewire (a derived layout recomputes just their circuits)."""
        for i in self._flipped:
            if i >= len(self.links):
                continue  # the last unit has no outgoing link to re-cross
            node = self.units[i][0]
            link = self.links[i]
            # Un-crossing swaps the channels of the same physical pins
            # between the primary and secondary set: one pin exchange.
            layout.exchange_pins(
                node,
                self._label(i, "p"),
                self._label(i, "s"),
                (
                    (link.direction, link.primary_channel),
                    (link.direction, link.secondary_channel),
                ),
            )
        self._flipped = []

    def listen_sets(self) -> List[PartitionSetId]:
        """The partition sets absorb() reads: every unit's secondary set."""
        return [self.secondary_set(i) for i in range(len(self.units))]

    def wiring_key(self) -> Tuple:
        """Hashable snapshot determining this run's current wiring."""
        return (self._wiring_base, tuple(self._active))

    def beeps(self) -> List[PartitionSetId]:
        """The chain's first unit beeps on its primary set."""
        return [self.primary_set(0)]

    def absorb(self, received: Dict[PartitionSetId, bool]) -> None:
        """Read this iteration's bit at every unit and update activity."""
        self.absorb_bits(
            [received.get(self.secondary_set(i), False) for i in range(len(self.units))]
        )

    def absorb_bits(self, bits: Sequence[bool]) -> None:
        """Absorb a flat bit list aligned with :meth:`listen_sets` order.

        The compiled fast path of :func:`~repro.pasc.runner.run_pasc`
        hands each run its slice of the round's bit list; unit ``i``'s
        bit is simply ``bits[i]`` — no dict lookups, no tuple hashing.
        """
        bit_index = self._iteration
        flipped: List[int] = []
        value = self._value
        active = self._active
        for i, heard_secondary in enumerate(bits):
            if heard_secondary:
                value[i] |= 1 << bit_index
            if active[i] and not heard_secondary:
                # Active participants whose bit is 0 drop out; exactly the
                # units with bits 0..t all 1 stay active, preserving the
                # parity invariant for the next iteration.
                active[i] = False
                flipped.append(i)
        self._flipped = flipped
        self._iteration += 1

    def active_units(self) -> List[Unit]:
        """Units that are still active (beep in the termination round)."""
        return [u for u, a in zip(self.units, self._active) if a]

    @property
    def iterations(self) -> int:
        return self._iteration

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def values(self) -> Dict[Unit, int]:
        """Exclusive weighted prefix count per unit."""
        return dict(zip(self.units, self._value))

    def inclusive_values(self) -> Dict[Unit, int]:
        """Inclusive weighted prefix sum per unit (adds own weight)."""
        return {
            unit: value + weight
            for unit, value, weight in zip(self.units, self._value, self.weights)
        }

    def node_values(self) -> Dict[Node, int]:
        """Exclusive counts keyed by amoebot (plain single-unit chains)."""
        result: Dict[Node, int] = {}
        for (node, _), value in zip(self.units, self._value):
            if node in result:
                raise ValueError(
                    "node_values() requires at most one unit per amoebot"
                )
            result[node] = value
        return result
