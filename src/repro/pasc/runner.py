"""Parallel PASC execution with shared synchronous rounds.

Each iteration costs exactly two rounds, independent of how many PASC
instances run concurrently (Lemma 4 plus the synchronization technique
of Padalkin et al. [26]):

1. every run's primary/secondary circuits are (re)established and every
   run's first unit beeps on its primary set; all units read their bit;
2. the structure forms a global circuit on a reserved channel and every
   still-active participant beeps; silence tells all amoebots that every
   run has finished (all remaining bits are zero).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Protocol, Sequence

from repro.sim.circuits import CircuitLayout
from repro.sim.engine import CircuitEngine
from repro.sim.pins import PartitionSetId


class PascRun(Protocol):
    """Protocol shared by chain and tree runs (and ETT wrappers)."""

    def is_done(self) -> bool:
        """Whether no participant is active (all further bits zero)."""
        ...

    def contribute_layout(self, layout: CircuitLayout) -> None:
        """Wire this iteration's circuits into the shared layout."""
        ...

    def beeps(self) -> List[PartitionSetId]:
        """Partition sets this run activates in the PASC round."""
        ...

    def absorb(self, received) -> None:
        """Read this iteration's bit at every unit; update activity."""
        ...

    def active_units(self) -> List:
        """Units that beep in the shared termination round."""
        ...


@dataclass
class PascResult:
    """Execution summary of a (parallel) PASC run."""

    iterations: int
    rounds: int


TERMINATION_LABEL = "pasc:termination"


def run_pasc(
    engine: CircuitEngine,
    runs: Sequence[PascRun],
    term_channel: int | None = None,
    max_iterations: int | None = None,
    section: str = "pasc",
) -> PascResult:
    """Execute ``runs`` to completion in parallel on ``engine``.

    ``term_channel`` is the channel of the global termination circuit
    (default: the engine's highest channel, which the wiring conventions
    in this repository leave free).  ``max_iterations`` is a safety net
    for tests; the algorithm terminates by itself via the silence of the
    termination circuit.
    """
    if term_channel is None:
        term_channel = engine.channels - 1
    if max_iterations is None:
        max_iterations = 2 * len(engine.structure).bit_length() + 8

    iterations = 0
    start_rounds = engine.rounds.total
    with engine.rounds.section(section):
        while True:
            if iterations > max_iterations:
                raise RuntimeError(
                    f"PASC exceeded {max_iterations} iterations; "
                    "wiring or activity update is broken"
                )
            layout = engine.new_layout()
            for run in runs:
                run.contribute_layout(layout)
            _contribute_global(engine, layout, term_channel)
            layout.freeze()

            beeps: List[PartitionSetId] = []
            for run in runs:
                beeps.extend(run.beeps())
            received = engine.run_round(layout, beeps)
            for run in runs:
                run.absorb(received)
            iterations += 1

            term_beeps: List[PartitionSetId] = []
            for run in runs:
                for unit in run.active_units():
                    node = unit[0] if isinstance(unit, tuple) else unit
                    term_beeps.append((node, TERMINATION_LABEL))
            term_received = engine.run_round(layout, term_beeps)
            if not any(term_received.values()):
                break
    return PascResult(iterations=iterations, rounds=engine.rounds.total - start_rounds)


def _contribute_global(
    engine: CircuitEngine, layout: CircuitLayout, channel: int
) -> None:
    """Add the global termination circuit to ``layout``."""
    for node in engine.structure:
        pins = [(d, channel) for d in engine.structure.occupied_directions(node)]
        layout.assign(node, TERMINATION_LABEL, pins)
