"""Parallel PASC execution with shared synchronous rounds.

Each iteration costs exactly two rounds, independent of how many PASC
instances run concurrently (Lemma 4 plus the synchronization technique
of Padalkin et al. [26]):

1. every run's primary/secondary circuits are (re)established and every
   run's first unit beeps on its primary set; all units read their bit;
2. the structure forms a global circuit on a reserved channel and every
   still-active participant beeps; silence tells all amoebots that every
   run has finished (all remaining bits are zero).

The pin configuration barely changes between iterations — only units
whose activity flipped re-cross their outgoing links — so the runner
honors the layout-reuse contract of :mod:`repro.sim.circuits`: the
runs' layout is built and frozen **once**, and every subsequent
iteration *derives* it, re-wiring only the flipped units (one
``exchange_pins`` crossing flip per unit) and recomputing only the
touched circuits.  The never-changing global termination circuit lives
on its own reserved channel, so the runner executes the termination
round against the engine's cached global layout
(:meth:`~repro.sim.engine.CircuitEngine.global_layout`) instead of
splicing a structure-sized circuit into every runs' layout: the two
wirings coexist on disjoint channels of the same pin configuration,
round counts are unchanged (still one beep round each), and the runs'
layouts stay proportional to the runs.  When every run exposes a
wiring key, the *initial* runs' layout is additionally memoized in the
engine's layout cache, so deterministic algorithms that re-execute
identical PASC runs (e.g. the recomputed decomposition tree of the
forest algorithm) skip the one full build as well.  Only iteration 0 is
cached on purpose: per-iteration activity snapshots would insert a
never-repeating key per iteration, churning the LRU out of its genuinely
reusable entries and pinning structure-sized layout copies, while
derivation already makes iterations 1+ cheap.

Execution itself rides the compiled fast path: freezing lowers each
iteration's layout to flat integer arrays, the runs' listen sets and the
termination probe are resolved to stable integer set-ids once per derive
chain, both rounds of an iteration go through
:meth:`~repro.sim.engine.CircuitEngine.run_rounds`, and each run absorbs
its slice of the flat bit list (``absorb_bits``) — zero per-round dict
construction.  Runs lacking ``listen_sets``/``absorb_bits`` fall back to
the id-keyed dict path with identical round counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Protocol, Sequence, Tuple

from repro.sim.circuits import CircuitLayout
from repro.sim.engine import CircuitEngine
from repro.sim.errors import PinConfigurationError
from repro.sim.pins import PartitionSetId


class PascRun(Protocol):
    """Protocol shared by chain and tree runs (and ETT wrappers).

    Implementations may additionally offer optional methods the runner
    exploits when present (duck-typed, checked via ``hasattr``):

    * ``rewire_layout(layout)`` — reassign only the partition sets whose
      wiring changed since the last ``contribute_layout``/``rewire_layout``
      call, enabling derived-layout reuse instead of full rebuilds;
    * ``listen_sets()`` — the partition sets ``absorb`` actually reads,
      so the engine materializes only those beep results;
    * ``absorb_bits(bits)`` — like ``absorb`` but consuming a flat bit
      list aligned with ``listen_sets()`` order; together with
      ``listen_sets`` this lets the runner execute iterations on the
      compiled integer fast path with zero per-round dict construction;
    * ``wiring_key()`` — a hashable snapshot determining this run's
      current wiring, enabling layout-cache hits across repeated
      identical executions.
    """

    def is_done(self) -> bool:
        """Whether no participant is active (all further bits zero)."""
        ...

    def contribute_layout(self, layout: CircuitLayout) -> None:
        """Wire this iteration's circuits into the shared layout."""
        ...

    def beeps(self) -> List[PartitionSetId]:
        """Partition sets this run activates in the PASC round."""
        ...

    def absorb(self, received) -> None:
        """Read this iteration's bit at every unit; update activity."""
        ...

    def active_units(self) -> List:
        """Units that beep in the shared termination round."""
        ...


@dataclass
class PascResult:
    """Execution summary of a (parallel) PASC run."""

    iterations: int
    rounds: int
    #: Amoebot activations spent (equals ``n * rounds`` under the
    #: synchronous engine; event-driven engines report real counts).
    activations: int = 0


TERMINATION_LABEL = "pasc:termination"


def run_pasc(
    engine: CircuitEngine,
    runs: Sequence[PascRun],
    term_channel: int | None = None,
    max_iterations: int | None = None,
    section: str = "pasc",
    structure=None,
) -> PascResult:
    """Execute ``runs`` to completion in parallel on ``engine``.

    ``engine`` may also be a :class:`repro.api.Session` together with an
    explicit ``structure=`` — the session then supplies the engine
    (backend, scheduler, shared layout caches), unifying PASC with the
    rest of the facade: ``run_pasc(session, runs, structure=st)`` is
    ``run_pasc(session.engine_for(st), runs)``.

    ``term_channel`` is the channel of the global termination circuit
    (default: the engine's highest channel, which the wiring conventions
    in this repository leave free).  ``max_iterations`` is an inclusive
    safety cap for tests; the algorithm terminates by itself via the
    silence of the termination circuit.

    The round count is a function of the runs alone: layout derivation
    and caching change only wall-clock cost, never the round structure
    (two rounds per iteration, Lemma 4).
    """
    if not isinstance(engine, CircuitEngine):
        if not hasattr(engine, "engine_for"):
            raise TypeError(
                f"run_pasc needs a CircuitEngine or a Session, got "
                f"{type(engine).__name__}"
            )
        if structure is None:
            raise ValueError(
                "run_pasc(session, runs) needs structure=: a session is "
                "structure-agnostic, so the structure must be explicit"
            )
        engine = engine.engine_for(structure)
    elif structure is not None and structure is not engine.structure:
        raise ValueError("structure= disagrees with the engine's structure")
    if term_channel is None:
        term_channel = engine.channels - 1
    if max_iterations is None:
        max_iterations = 2 * len(engine.structure).bit_length() + 8

    # The termination circuit is global (one component spanning every
    # amoebot), so listening on a single probe set is equivalent to
    # scanning all of them.  It lives on its own reserved channel and
    # never changes, so the engine's cached global layout carries it —
    # one build per engine, shared by every PASC execution.
    term_probe: PartitionSetId = (next(iter(engine.structure)), TERMINATION_LABEL)
    term_layout = engine.global_layout(label=TERMINATION_LABEL, channel=term_channel)

    listenable = all(hasattr(run, "listen_sets") for run in runs)
    indexed = listenable and all(hasattr(run, "absorb_bits") for run in runs)

    listen: Optional[List[PartitionSetId]] = None
    slices: List[Tuple[int, int]] = []
    if listenable:
        listen = []
        for run in runs:
            run_listen = run.listen_sets()
            slices.append((len(listen), len(listen) + len(run_listen)))
            listen.extend(run_listen)

    rewirable = all(hasattr(run, "rewire_layout") for run in runs)
    keyable = all(hasattr(run, "wiring_key") for run in runs)

    def wiring_key() -> Tuple:
        """Cache key of the *initial* wiring (iteration-0 activity)."""
        return ("pasc", term_channel, tuple(run.wiring_key() for run in runs))

    iterations = 0
    start_rounds = engine.rounds.total
    start_activations = engine.rounds.activations
    layout: Optional[CircuitLayout] = None
    # Integer set-ids, resolved once per partition-set index.  Derived
    # layouts keep the index object of their base, so one resolution
    # covers the whole derive chain; a fresh index (full rebuild, cache
    # hit on a different layout object) triggers re-resolution.  The
    # termination layout is cached on the engine, so its ids hold for
    # the whole execution.
    cached_index = None
    listen_idx: List[int] = []
    term_index = term_layout.compiled().index
    term_probe_idx = term_index.index_of(term_probe, "listen on")
    with engine.rounds.section(section):
        while True:
            if iterations >= max_iterations:
                raise RuntimeError(
                    f"PASC exceeded its cap of {max_iterations} iterations "
                    f"(completed {iterations}) on a structure of "
                    f"{len(engine.structure)} amoebots; "
                    "wiring or activity update is broken"
                )
            first_iteration = layout is None
            layout = _iteration_layout(
                engine, runs, layout, rewirable,
                wiring_key() if keyable and first_iteration else None,
            )
            if layout.uses_channel(term_channel):
                # The termination circuit executes on its own layout,
                # so a run wiring the reserved channel would no longer
                # collide pin-for-pin — both circuits would silently
                # drive the same physical pins.  Fail fast instead.
                raise PinConfigurationError(
                    f"PASC runs must not wire pins on the reserved "
                    f"termination channel {term_channel}"
                )

            if indexed:
                assert listen is not None
                index = layout.compiled().index
                if index is not cached_index:
                    cached_index = index
                    listen_idx = index.indices(listen, "listen on")
                beep_idx = index.indices(
                    (set_id for run in runs for set_id in run.beeps()), "beep on"
                )

                bits = engine.run_round_indexed(layout, beep_idx, listen_idx)
                for run, (lo, hi) in zip(runs, slices):
                    run.absorb_bits(bits[lo:hi])
                iterations += 1
                # Resolved after the absorb, so the termination beeps
                # read this iteration's activity.
                term_beep_idx = term_index.indices(
                    (
                        (unit[0] if isinstance(unit, tuple) else unit,
                         TERMINATION_LABEL)
                        for run in runs
                        for unit in run.active_units()
                    ),
                    "beep on",
                )
                term_bits = engine.run_round_indexed(
                    term_layout, term_beep_idx, (term_probe_idx,)
                )
                if not term_bits[0]:
                    break
            else:
                beeps: List[PartitionSetId] = []
                for run in runs:
                    beeps.extend(run.beeps())
                received = engine.run_round(layout, beeps, listen=listen)
                for run in runs:
                    run.absorb(received)
                iterations += 1

                term_beeps: List[PartitionSetId] = []
                for run in runs:
                    for unit in run.active_units():
                        node = unit[0] if isinstance(unit, tuple) else unit
                        term_beeps.append((node, TERMINATION_LABEL))
                term_received = engine.run_round(
                    term_layout, term_beeps, listen=(term_probe,)
                )
                if not term_received[term_probe]:
                    break
    return PascResult(
        iterations=iterations,
        rounds=engine.rounds.total - start_rounds,
        activations=engine.rounds.activations - start_activations,
    )


def _iteration_layout(
    engine: CircuitEngine,
    runs: Sequence[PascRun],
    previous: Optional[CircuitLayout],
    rewirable: bool,
    key: Optional[Tuple],
) -> CircuitLayout:
    """The frozen layout for the coming iteration, built as cheaply as
    possible: cache hit (iteration 0 only) > derivation from the previous
    iteration > full build (runs without incremental support).  The
    layout carries only the runs' circuits; the global termination
    circuit lives on the engine's cached global layout."""
    if key is not None:
        cached = engine.layouts.get(key)
        if cached is not None:
            return cached
    if previous is not None and rewirable:
        layout = previous.derive()
        for run in runs:
            run.rewire_layout(layout)
    else:
        layout = engine.new_layout()
        for run in runs:
            run.contribute_layout(layout)
    layout.freeze()
    if key is not None:
        engine.layouts.put(key, layout)
    return layout
