"""The PASC (primary and secondary circuit) algorithm.

PASC is the distance-computation workhorse of the reconfigurable circuit
extension (Feldmann et al. [17], Padalkin et al. [26]; Lemmas 3-4 and
Corollaries 5-6 of the paper).  Executed on a chain, it lets every
amoebot learn, bit by bit (least significant first), the number of
*participating* amoebots strictly before it on the chain:

* with every amoebot participating this is the distance to the chain's
  first amoebot (Lemma 3);
* with 0/1 weights choosing the participants it is the (exclusive)
  weighted prefix sum (Corollary 6) — inclusive sums follow by locally
  adding the amoebot's own weight;
* run simultaneously on every root-to-leaf path of a rooted tree it is
  the depth of each node (Corollary 5).

Mechanics (faithful to the published construction): every unit keeps two
partition sets, *primary* and *secondary*, wired straight through passive
units and crossed at active ones.  The first unit beeps on its primary
set each iteration; a unit whose signal arrives on the secondary set
reads bit 1.  Initially all participants are active; after iteration
``t`` exactly the participants whose bits ``0..t`` are all 1 remain
active, so the signal parity at any unit equals the ``t``-th bit of its
prefix count.  Each iteration costs two rounds: the PASC beep and a
global termination-check beep by the remaining active participants
(Lemma 4).

The runner executes any number of PASC instances *in parallel* on one
:class:`~repro.sim.CircuitEngine`, sharing the two rounds per iteration —
this is what makes the paper's "apply the PASC algorithm simultaneously
on each path/portal" steps cost the maximum instead of the sum.
"""

from repro.pasc.chain import ChainLink, PascChainRun, chain_links_for_nodes
from repro.pasc.tree import PascTreeRun
from repro.pasc.runner import run_pasc, PascResult

__all__ = [
    "ChainLink",
    "PascChainRun",
    "chain_links_for_nodes",
    "PascTreeRun",
    "run_pasc",
    "PascResult",
]
