"""PASC on rooted trees (Corollary 5).

The chain construction is applied simultaneously on every root-to-leaf
path: each amoebot keeps a single primary/secondary pair, joins the pins
of its parent edge straight, and wires *all* child edges straight or
crossed according to one shared active flag.  Every path from the root
then behaves exactly like a chain, so each amoebot reads the bits of its
depth.  Two external links per tree edge suffice, as the proof of
Corollary 5 notes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Sequence, Tuple

from repro.grid.coords import Node
from repro.grid.directions import Direction
from repro.sim.circuits import CircuitLayout
from repro.sim.pins import PartitionSetId


class PascTreeRun:
    """One PASC execution over a rooted amoebot tree.

    Parameters
    ----------
    root:
        The tree root (distance 0).
    parent:
        Mapping of every non-root tree node to its parent.  Parent and
        child must be adjacent amoebots.
    tag:
        Label prefix for partition sets.
    primary_channel / secondary_channel:
        The two channels used on every tree edge.

    After the run, :meth:`values` maps every tree node to its depth.
    """

    def __init__(
        self,
        root: Node,
        parent: Mapping[Node, Node],
        tag: str = "pasct",
        primary_channel: int = 0,
        secondary_channel: int = 1,
    ):
        self.root = root
        self.parent: Dict[Node, Node] = dict(parent)
        if root in self.parent:
            raise ValueError("root must not have a parent")
        self.tag = tag
        self.pch = primary_channel
        self.sch = secondary_channel
        self.nodes: List[Node] = [root] + sorted(self.parent)
        self.children: Dict[Node, List[Node]] = {u: [] for u in self.nodes}
        for child, par in self.parent.items():
            if par not in self.children:
                raise ValueError(f"parent {par} of {child} is not a tree node")
            if not child.is_adjacent(par):
                raise ValueError(f"tree edge {par}-{child} joins non-neighbors")
            self.children[par].append(child)
        self._check_acyclic()
        self._active: Dict[Node, bool] = {u: True for u in self.nodes}
        self._value: Dict[Node, int] = {u: 0 for u in self.nodes}
        self._iteration = 0
        #: Nodes whose activity flipped in the last absorb(); only these
        #: re-cross their child links in the next iteration's layout.
        self._flipped: List[Node] = []
        self._wiring_base = (
            "tree", self.tag, self.root,
            tuple(sorted(self.parent.items())), self.pch, self.sch,
        )

    def _check_acyclic(self) -> None:
        seen = {self.root}
        stack = [self.root]
        while stack:
            u = stack.pop()
            for c in self.children[u]:
                if c in seen:
                    raise ValueError("parent mapping contains a cycle")
                seen.add(c)
                stack.append(c)
        if len(seen) != len(self.nodes):
            raise ValueError("parent mapping is not a single tree")

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def primary_set(self, node: Node) -> PartitionSetId:
        """Partition-set id of ``node``'s primary wire."""
        return (node, f"{self.tag}:p")

    def secondary_set(self, node: Node) -> PartitionSetId:
        """Partition-set id of ``node``'s secondary wire."""
        return (node, f"{self.tag}:s")

    # ------------------------------------------------------------------
    # runner protocol (same shape as PascChainRun)
    # ------------------------------------------------------------------
    def is_done(self) -> bool:
        """No amoebot is active: all further bits are zero."""
        return not any(self._active.values())

    def _node_wiring(
        self, u: Node
    ) -> Tuple[List[Tuple[Direction, int]], List[Tuple[Direction, int]]]:
        """Primary/secondary pin lists of ``u`` for its current activity."""
        p_pins: List[Tuple[Direction, int]] = []
        s_pins: List[Tuple[Direction, int]] = []
        par = self.parent.get(u)
        if par is not None:
            d = u.direction_to(par)
            p_pins.append((d, self.pch))
            s_pins.append((d, self.sch))
        for child in self.children[u]:
            d = u.direction_to(child)
            if self._active[u]:
                p_pins.append((d, self.sch))
                s_pins.append((d, self.pch))
            else:
                p_pins.append((d, self.pch))
                s_pins.append((d, self.sch))
        return p_pins, s_pins

    def contribute_layout(self, layout: CircuitLayout) -> None:
        """Wire this iteration's primary/secondary circuits."""
        for u in self.nodes:
            p_pins, s_pins = self._node_wiring(u)
            layout.assign(u, f"{self.tag}:p", p_pins)
            layout.assign(u, f"{self.tag}:s", s_pins)
        self._flipped = []

    def rewire_layout(self, layout: CircuitLayout) -> None:
        """Reassign only the nodes whose activity (and hence child-link
        crossing) changed since the last contribute/rewire."""
        for u in self._flipped:
            children = self.children[u]
            if not children:
                continue  # leaves own no child links; their wiring is static
            # Un-crossing swaps the channels of the same physical pins of
            # every child link between the two sets: one pin exchange.
            pins = []
            for child in children:
                d = u.direction_to(child)
                pins.append((d, self.pch))
                pins.append((d, self.sch))
            layout.exchange_pins(u, f"{self.tag}:p", f"{self.tag}:s", pins)
        self._flipped = []

    def listen_sets(self) -> List[PartitionSetId]:
        """The partition sets absorb() reads: every node's secondary set."""
        return [self.secondary_set(u) for u in self.nodes]

    def wiring_key(self) -> Tuple:
        """Hashable snapshot determining this run's current wiring."""
        return (self._wiring_base, tuple(self._active[u] for u in self.nodes))

    def beeps(self) -> List[PartitionSetId]:
        """The root beeps on its primary set."""
        return [self.primary_set(self.root)]

    def absorb(self, received: Dict[PartitionSetId, bool]) -> None:
        """Read this iteration's bit and update activity."""
        self.absorb_bits(
            [received.get(self.secondary_set(u), False) for u in self.nodes]
        )

    def absorb_bits(self, bits: Sequence[bool]) -> None:
        """Absorb a flat bit list aligned with :meth:`listen_sets` order.

        ``bits[i]`` is the bit of ``self.nodes[i]`` (the listen order);
        the compiled fast path of :func:`~repro.pasc.runner.run_pasc`
        reads bits positionally instead of through id-keyed dicts.
        """
        bit_index = self._iteration
        flipped: List[Node] = []
        for u, heard_secondary in zip(self.nodes, bits):
            if heard_secondary:
                self._value[u] |= 1 << bit_index
            if self._active[u] and not heard_secondary:
                self._active[u] = False
                flipped.append(u)
        self._flipped = flipped
        self._iteration += 1

    def active_units(self) -> List[Node]:
        """Amoebots still active (beep in the termination round)."""
        return [u for u, a in self._active.items() if a]

    @property
    def iterations(self) -> int:
        return self._iteration

    # ------------------------------------------------------------------
    # results
    # ------------------------------------------------------------------
    def values(self) -> Dict[Node, int]:
        """Depth (= distance to the root within the tree) per node."""
        return dict(self._value)
