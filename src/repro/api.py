"""Unified facade: one request object, one session, every solver path.

Historically each entry point threaded its execution knobs through its
own kwargs — ``solve_spf(engine=, allow_holes=, scheduler=)``,
``DynamicSPF(engine=, threshold=, faults=)``, a global ``--backend``
flag on the CLI — so there was no single object a server could accept,
hash, queue, or replay.  This module is that object, in two halves:

* :class:`SolveRequest` — a frozen, JSON-round-trippable description of
  one piece of work (a solve, a token-routing run, or a churn/repair
  stream) whose identity is its content hash (:meth:`SolveRequest.key`,
  the same hashing as :meth:`~repro.experiments.spec.TrialSpec.key`).
  Requests are *data*: the CLI builds them from flags, the HTTP daemon
  parses them from POST bodies, tests construct them directly, and all
  three execute them identically.

* :class:`Session` — the owner of everything hot and reusable across
  requests: the execution backend, the default scheduler, a bounded
  structure cache (with warm :class:`~repro.grid.compiled.GridIndex`
  es), a shared :class:`~repro.sim.circuits.LayoutCache`, and a
  :class:`~repro.experiments.store.ResultStore` consulted by request
  key so identical requests are served from cache — in-process for a
  plain session, across daemon restarts when the store is backed by a
  JSONL file.

Quickstart::

    from repro.api import Session, SolveRequest

    session = Session()
    report = session.run(SolveRequest(shape="random:200:7", k=1, l=0))
    print(report.rounds, report.algorithm)
    again = session.run(SolveRequest(shape="random:200:7", k=1, l=0))
    assert again.cached  # served from the session's result store

The old kwargs on :func:`~repro.spf.api.solve_spf` and
:class:`~repro.dynamics.maintain.DynamicSPF` remain as deprecated
aliases for one release (they warn and delegate); ``engine=`` on
``solve_spf``/``run_pasc`` stays supported as the low-level composition
hook the library itself uses.
"""

from __future__ import annotations

import logging
import random as _random
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, fields
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.backend import BACKEND_NAMES, resolve_backend
from repro.experiments.spec import (
    ALGORITHMS,
    ALL_NODES,
    PLACEMENTS,
    _check_scheduler,
    content_key,
)
from repro.experiments.store import ResultStore
from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure
from repro.obs.trace import current_tracer, trace_span
from repro.resilience import Cancelled, CancellationToken
from repro.sim.circuits import LAYOUT_STATS, LayoutCache
from repro.sim.engine import CircuitEngine
from repro.workloads.samplers import sample_sources_destinations, spread_nodes
from repro.workloads.specs import build_structure

#: Work kinds a request may describe (campaigns are a separate job kind
#: at the service layer — they are already declarative data).
REQUEST_KINDS = ("solve", "route", "churn")

#: Churn flavors (mirrors :data:`repro.dynamics.edits.CHURN_KINDS`,
#: duplicated as a literal so request validation never imports the
#: simulator).
_CHURN_KINDS = ("growth", "erosion", "tunnel", "block_move", "mixed")

#: Event callback for streaming progress (see :meth:`Session.run`).
EventFn = Callable[[Dict[str, object]], None]

logger = logging.getLogger("repro.api")


class RequestError(ValueError):
    """A :class:`SolveRequest` (or service job) description is malformed."""


@dataclass(frozen=True)
class SolveRequest:
    """One fully concrete, serializable unit of solver work.

    ``kind`` selects the pipeline:

    ``"solve"``
        Build ``shape``, pick ``k`` sources and ``l`` destinations
        (``l = 0`` means every node — the SSSP setting), run
        ``algorithm`` (``"auto"`` dispatches exactly like
        :func:`repro.solve_spf`).
    ``"route"``
        Solve, then route tokens along the forest
        (:func:`repro.motion.routing.route_tokens`); ``tokens > 0``
        seeds that many tokens on random forest members, otherwise one
        token starts on every destination.
    ``"churn"``
        Solve, then apply ``churn_steps`` batches of ``churn`` edits and
        repair incrementally (:class:`repro.dynamics.DynamicSPF`), with
        optional ``crash``/``drop`` fault injection.

    ``scheduler`` and ``backend`` override the session defaults for
    this request only ("" = inherit).  Identity is :meth:`key`, the
    content hash of :meth:`config` — two requests with equal configs
    are the same work, which is what the result store caches on.
    """

    kind: str = "solve"
    shape: str = "hexagon:4"
    k: int = 1
    l: int = 5
    seed: int = 0
    placement: str = "random"
    algorithm: str = "auto"
    allow_holes: bool = False
    scheduler: str = ""
    backend: str = ""
    # route-only
    tokens: int = 0
    # churn-only
    churn: str = ""
    churn_steps: int = 0
    churn_batch: int = 1
    threshold: float = 0.2
    crash: int = 0
    drop: float = 0.0
    # Quality-of-service (identity-neutral: never part of the key).
    deadline_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in REQUEST_KINDS:
            raise RequestError(
                f"unknown request kind {self.kind!r}; expected one of {REQUEST_KINDS}"
            )
        if not isinstance(self.shape, str) or not self.shape:
            raise RequestError("shape must be a non-empty spec string")
        if self.k < 1:
            raise RequestError(f"k must be positive, got {self.k}")
        if self.l < ALL_NODES:
            raise RequestError(f"l must be >= 0 (0 = all nodes), got {self.l}")
        if self.placement not in PLACEMENTS:
            raise RequestError(
                f"unknown placement {self.placement!r}; expected one of {PLACEMENTS}"
            )
        if self.algorithm not in ALGORITHMS:
            raise RequestError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        try:
            _check_scheduler(self.scheduler)
        except ValueError as exc:
            raise RequestError(str(exc)) from exc
        if self.backend and self.backend not in BACKEND_NAMES:
            raise RequestError(
                f"unknown backend {self.backend!r}; expected '' or one of "
                f"{BACKEND_NAMES}"
            )
        if self.tokens < 0:
            raise RequestError(f"tokens must be >= 0, got {self.tokens}")
        if self.tokens and self.kind != "route":
            raise RequestError("tokens is only meaningful for kind='route'")
        if self.kind == "churn":
            if self.churn not in _CHURN_KINDS:
                raise RequestError(
                    f"churn requests need a churn kind from {_CHURN_KINDS}, "
                    f"got {self.churn!r}"
                )
            if self.churn_steps < 1:
                raise RequestError(
                    f"churn requests need churn_steps >= 1, got {self.churn_steps}"
                )
            if self.churn_batch < 1:
                raise RequestError(
                    f"churn_batch must be positive, got {self.churn_batch}"
                )
            if self.algorithm != "auto":
                raise RequestError("churn requests require algorithm 'auto'")
        elif self.churn or self.churn_steps:
            raise RequestError("churn parameters given on a non-churn request")
        if not 0.0 < self.threshold <= 1.0:
            raise RequestError(
                f"threshold must be in (0, 1], got {self.threshold}"
            )
        if self.crash < 0:
            raise RequestError(f"crash must be >= 0, got {self.crash}")
        if not 0.0 <= self.drop <= 1.0:
            raise RequestError(f"drop must be in [0, 1], got {self.drop}")
        if (self.crash or self.drop) and self.kind != "churn":
            raise RequestError("fault injection is only wired for kind='churn'")
        if not isinstance(self.deadline_s, (int, float)) or isinstance(
            self.deadline_s, bool
        ):
            raise RequestError(
                f"deadline_s must be a number, got {self.deadline_s!r}"
            )
        if self.deadline_s < 0:
            raise RequestError(
                f"deadline_s must be >= 0 (0 = no deadline), got {self.deadline_s}"
            )

    # ------------------------------------------------------------------
    # identity & serialization
    # ------------------------------------------------------------------
    def config(self) -> Dict[str, object]:
        """The identity-bearing configuration (JSON-ready).

        Kind-specific and override fields enter only when set, so a
        plain solve keeps the same key whether it was built before or
        after a new knob existed — the same stability contract as
        :meth:`TrialSpec.config`.  ``deadline_s`` never enters: it is a
        quality-of-service bound, not part of what the work *is*, so a
        request keeps its cache identity however impatient the caller.
        """
        out: Dict[str, object] = {
            "kind": self.kind,
            "shape": self.shape,
            "k": self.k,
            "l": self.l,
            "seed": self.seed,
            "placement": self.placement,
            "algorithm": self.algorithm,
            "allow_holes": self.allow_holes,
        }
        if self.scheduler:
            out["scheduler"] = self.scheduler
        if self.backend:
            out["backend"] = self.backend
        if self.kind == "route":
            out["tokens"] = self.tokens
        if self.kind == "churn":
            out["churn"] = self.churn
            out["churn_steps"] = self.churn_steps
            out["churn_batch"] = self.churn_batch
            out["threshold"] = self.threshold
            out["crash"] = self.crash
            out["drop"] = self.drop
        return out

    def key(self) -> str:
        """Stable content hash — the cache/queue/replay identity."""
        return content_key(self.config())

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        out = self.config()
        if self.deadline_s:
            out["deadline_s"] = self.deadline_s
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolveRequest":
        """Parse and validate a request mapping; rejects unknown fields."""
        if not isinstance(data, Mapping):
            raise RequestError(
                f"request must be a mapping, got {type(data).__name__}"
            )
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise RequestError(f"unknown request fields: {sorted(unknown)}")
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise RequestError(f"bad request: {exc}") from exc


@dataclass
class SolveReport:
    """Everything measured for one executed :class:`SolveRequest`.

    Serializable half (:meth:`to_dict`) plus in-process extras: when a
    report comes straight out of :meth:`Session.run` (not from the
    store), :attr:`forest`, :attr:`structure`, :attr:`sources`,
    :attr:`destinations` and :attr:`routing_stats` carry the live
    objects so callers (the CLI's ASCII rendering, tests) need not
    recompute them.  Cached reports have those set to ``None``.
    """

    key: str
    kind: str
    shape: str
    n: int
    k: int
    l: int
    seed: int
    algorithm: str
    rounds: int
    forest_members: int
    elapsed_s: float
    backend: str = ""
    scheduler: str = ""
    activations: int = 0
    sched_time: Optional[float] = None
    #: Event-driven runs only: scheduler name, activations, epochs,
    #: simulated time, retransmissions (what the CLI summary prints).
    sched: Optional[Dict[str, object]] = None
    sections: Dict[str, int] = field(default_factory=dict)
    routing: Optional[Dict[str, object]] = None
    repair: Optional[Dict[str, object]] = None
    faults: Optional[Dict[str, object]] = None
    cached: bool = False

    # In-process extras; never serialized.
    forest: object = field(default=None, repr=False, compare=False)
    #: Churn only: nodes added by the final edit batch that survived
    #: (the CLI highlights them in the rendered last frame).
    added: Optional[List[Node]] = field(default=None, repr=False, compare=False)
    structure: object = field(default=None, repr=False, compare=False)
    sources: Optional[List[Node]] = field(default=None, repr=False, compare=False)
    destinations: Optional[List[Node]] = field(
        default=None, repr=False, compare=False
    )
    routing_stats: object = field(default=None, repr=False, compare=False)

    #: Marker distinguishing report records from campaign trial records
    #: when both share one result store.
    RECORD = "solve-report"

    def to_dict(self) -> Dict[str, object]:
        """Flatten into the JSON-ready record the store persists."""
        return {
            "key": self.key,
            "record": self.RECORD,
            "kind": self.kind,
            "shape": self.shape,
            "n": self.n,
            "k": self.k,
            "l": self.l,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "rounds": self.rounds,
            "forest_members": self.forest_members,
            "elapsed_s": self.elapsed_s,
            "backend": self.backend,
            "scheduler": self.scheduler,
            "activations": self.activations,
            "sched_time": self.sched_time,
            "sched": self.sched,
            "sections": dict(self.sections),
            "routing": self.routing,
            "repair": self.repair,
            "faults": self.faults,
            "cached": self.cached,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SolveReport":
        """Rebuild from a stored record, ignoring unknown fields."""
        known = {f.name for f in fields(cls) if f.compare}
        kwargs = {name: data[name] for name in known if name in data}
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass
class SessionStats:
    """Per-session counters (cheap observability for ``/stats``)."""

    requests: int = 0
    executed: int = 0
    cache_hits: int = 0
    structures_built: int = 0
    structure_hits: int = 0
    #: Result-store writes that failed; the report is still returned
    #: (a flaky store degrades caching, it must not fail the solve).
    store_failures: int = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of requests served from the result store."""
        return self.cache_hits / self.requests if self.requests else 0.0

    def to_dict(self) -> Dict[str, object]:
        """All counters plus the derived hit rate, JSON-ready."""
        return {
            "requests": self.requests,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "hit_rate": round(self.hit_rate, 4),
            "structures_built": self.structures_built,
            "structure_hits": self.structure_hits,
            "store_failures": self.store_failures,
        }


class Session:
    """Owner of engines, backend, scheduler, caches, and the result store.

    A session is the unit of state reuse: structures (with their warm
    grid indexes) and compiled layouts persist across every request it
    executes, and completed reports persist in its result store keyed
    by request content hash.  ``repro serve`` keeps one session alive
    across HTTP jobs; the CLI builds a throwaway one per invocation;
    library code can share one across calls for the same effect.

    Parameters
    ----------
    backend:
        Execution backend for every engine the session builds
        (``auto``/``python``/``numpy``; ``None`` = process default).
    scheduler:
        Default activation scheduler spec (``""`` = plain synchronous
        engine; otherwise e.g. ``"random:1"`` — see
        :func:`repro.sched.make_scheduler`).
    allow_holes:
        Session-wide policy for structures with holes (the
        ``O(diam)`` wave fallback instead of a hard error).
    store:
        Result store (or a path to a JSONL file) consulted by request
        key; ``None`` = fresh in-memory store.
    max_structures:
        Bound on the structure LRU.
    """

    def __init__(
        self,
        backend: Optional[str] = None,
        scheduler: str = "",
        allow_holes: bool = False,
        channels: int = 8,
        layouts: Optional[LayoutCache] = None,
        store: Optional[object] = None,
        max_structures: int = 32,
    ):
        if backend is not None and backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown backend {backend!r} (choose from {', '.join(BACKEND_NAMES)})"
            )
        if isinstance(scheduler, str):
            _check_scheduler(scheduler)
        self.backend = backend
        self.scheduler = scheduler
        self.allow_holes = allow_holes
        self.channels = channels
        self.layouts = layouts if layouts is not None else LayoutCache(maxsize=256)
        if store is None or isinstance(store, ResultStore):
            self.store = store if store is not None else ResultStore()
        else:
            self.store = ResultStore(store)
        if max_structures < 1:
            raise ValueError("max_structures must be positive")
        self.max_structures = max_structures
        self._structures: "OrderedDict[str, AmoebotStructure]" = OrderedDict()
        self.stats = SessionStats()
        # Guards the structure LRU and the stats counters: the service
        # daemon runs one session across a pool of worker threads.
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # hot state
    # ------------------------------------------------------------------
    def structure(self, shape: str, cache: bool = True) -> AmoebotStructure:
        """Build (or serve from the LRU) a structure with a warm index.

        ``cache=False`` always builds fresh — used for churn requests,
        whose structures are mutated in place by the editor.
        """
        with self._lock:
            if cache and shape in self._structures:
                self._structures.move_to_end(shape)
                self.stats.structure_hits += 1
                return self._structures[shape]
        with trace_span("structure", shape=shape):
            structure = build_structure(shape)
        with trace_span("grid_index", n=len(structure)):
            structure.grid_index()  # warm: one build, reused by every layout
        with self._lock:
            self.stats.structures_built += 1
            if cache:
                self._structures[shape] = structure
                while len(self._structures) > self.max_structures:
                    self._structures.popitem(last=False)
        return structure

    def engine_for(
        self,
        structure: AmoebotStructure,
        scheduler: Optional[str] = None,
        backend: Optional[str] = None,
    ) -> CircuitEngine:
        """An engine over ``structure`` wired to the session's caches.

        ``scheduler``/``backend`` override the session defaults (pass
        ``""`` to force the synchronous engine regardless of the
        session's scheduler).  Layouts are scoped views of the shared
        session cache, so same-structure engines reuse compiled
        layouts.
        """
        sched = self.scheduler if scheduler is None else scheduler
        backend = backend if backend else self.backend
        layouts = self.layouts.scoped(frozenset(structure.nodes))
        if sched:
            from repro.sched import ActivationEngine

            return ActivationEngine(
                structure,
                scheduler=sched,
                channels=self.channels,
                layouts=layouts,
                backend=backend,
            )
        return CircuitEngine(
            structure, channels=self.channels, layouts=layouts, backend=backend
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        request: SolveRequest,
        resume: bool = True,
        on_event: Optional[EventFn] = None,
        token: Optional[CancellationToken] = None,
    ) -> SolveReport:
        """Execute ``request`` (or serve it from the result store).

        ``on_event`` receives JSON-ready progress dicts as the request
        executes: ``start``, ``structure``, one ``round`` event per
        synchronous round, kind-specific milestones, and ``done`` —
        the stream ``repro serve`` forwards to clients as chunked
        JSONL.  With ``resume=True`` (default) a request whose key is
        already in the store returns the recorded report immediately
        with ``cached=True``.

        ``token`` plugs in cooperative cancellation: it is checked at
        every emitted event boundary (per synchronous round, per churn
        batch, at phase transitions), so a tripped token raises
        :class:`~repro.resilience.Cancelled` (or
        :class:`~repro.resilience.DeadlineExceeded`) within one round
        of the trip, with the partial progress attached.  When the
        request carries a ``deadline_s`` and no token is given, one is
        armed automatically.  Cache hits never consult the token —
        the warm path stays check-free.
        """
        if not isinstance(request, SolveRequest):
            raise TypeError(
                f"run() takes a SolveRequest, got {type(request).__name__} "
                "(build one with SolveRequest(...) or SolveRequest.from_dict)"
            )

        progress: Dict[str, object] = {}

        def emit(event: Dict[str, object]) -> None:
            if on_event is not None:
                on_event(event)
            if token is not None:
                if event.get("event") == "round":
                    progress["rounds"] = event["rounds"]
                token.check()

        with self._lock:
            self.stats.requests += 1
        key = request.key()
        if resume:
            record = self.store.get(key)
            if record is not None and record.get("record") == SolveReport.RECORD:
                with self._lock:
                    self.stats.cache_hits += 1
                report = SolveReport.from_dict(record)
                report.cached = True
                with trace_span(request.kind, key=key, cached=True,
                                rounds=report.rounds):
                    # Deliberately not emit(): a warm hit is served even
                    # under a cancelled or long-expired token — reading
                    # a finished record costs nothing worth cancelling.
                    if on_event is not None:
                        on_event({"event": "cached", "key": key,
                                  "rounds": report.rounds})
                return report

        if token is None and request.deadline_s:
            token = CancellationToken(deadline_s=request.deadline_s)
        emit({"event": "start", "key": key, "kind": request.kind,
              "shape": request.shape})
        started = time.perf_counter()
        cache_hits0 = LAYOUT_STATS.cache_hits
        cache_misses0 = LAYOUT_STATS.cache_misses
        try:
            return self._execute(
                request, key, emit, started, cache_hits0, cache_misses0
            )
        except Cancelled as exc:
            exc.partial.update(progress)
            exc.partial.setdefault("key", key)
            exc.partial.setdefault("kind", request.kind)
            exc.partial["elapsed_s"] = round(time.perf_counter() - started, 6)
            raise

    def _execute(
        self,
        request: SolveRequest,
        key: str,
        emit: EventFn,
        started: float,
        cache_hits0: int,
        cache_misses0: int,
    ) -> SolveReport:
        """The cold path of :meth:`run`: build, solve, persist, report."""
        with trace_span(request.kind, key=key, shape=request.shape,
                        cached=False) as root_span:
            with trace_span("build", shape=request.shape) as build_span:
                structure = self.structure(
                    request.shape, cache=request.kind != "churn"
                )
                sources, destinations = _pick_endpoints(structure, request)
                build_span.set(n=len(structure))
            emit({"event": "structure", "n": len(structure), "k": len(sources),
                  "l": len(destinations)})
            engine = self.engine_for(
                structure,
                scheduler=request.scheduler or None,
                backend=request.backend or None,
            )
            tracer = current_tracer()
            if tracer is not None and tracer.trace_rounds:
                engine.enable_round_tracing()
            root_span.set(
                n=len(structure),
                backend=engine.backend,
                scheduler=request.scheduler
                or (self.scheduler if isinstance(self.scheduler, str) else "")
                or "sync",
            )
            previous_hook = engine.rounds.on_tick
            engine.rounds.on_tick = lambda total: emit(
                {"event": "round", "rounds": total}
            )
            try:
                if request.kind == "churn":
                    report = self._run_churn(
                        request, structure, sources, destinations, engine, emit
                    )
                else:
                    report = self._run_solve(
                        request, structure, sources, destinations, engine, emit
                    )
            finally:
                engine.rounds.on_tick = previous_hook
            report.elapsed_s = round(time.perf_counter() - started, 6)
            report.backend = engine.backend
            report.scheduler = request.scheduler or (
                self.scheduler if isinstance(self.scheduler, str) else ""
            )
            sched_stats = getattr(engine, "stats", None)
            if sched_stats is not None:
                report.sched_time = round(sched_stats.time, 6)
                report.sched = {
                    "name": engine.scheduler.name,
                    "activations": sched_stats.activations,
                    "epochs": sched_stats.epochs,
                    "time": round(sched_stats.time, 6),
                    "retransmissions": sched_stats.retransmissions,
                }
            with self._lock:
                self.stats.executed += 1
            with trace_span("store"):
                try:
                    self.store.add(report.to_dict())
                except Exception:
                    # A flaky store loses a cache entry, never a result.
                    with self._lock:
                        self.stats.store_failures += 1
                    logger.warning(
                        "result store write failed for %s", key, exc_info=True
                    )
            root_span.set(
                rounds=report.rounds,
                layout_cache_hits=LAYOUT_STATS.cache_hits - cache_hits0,
                layout_cache_misses=LAYOUT_STATS.cache_misses - cache_misses0,
            )
        emit({"event": "done", "key": key, "rounds": report.rounds,
              "elapsed_s": report.elapsed_s})
        return report

    # Convenience verbs — thin constructors over :meth:`run`.
    def solve(self, shape: str = "hexagon:4", **kw) -> SolveReport:
        """``run(SolveRequest(kind="solve", shape=shape, **kw))``."""
        return self.run(SolveRequest(kind="solve", shape=shape, **kw))

    def route(self, shape: str = "hexagon:4", **kw) -> SolveReport:
        """``run(SolveRequest(kind="route", shape=shape, **kw))``."""
        return self.run(SolveRequest(kind="route", shape=shape, **kw))

    def churn(self, shape: str = "random:200:1", **kw) -> SolveReport:
        """``run(SolveRequest(kind="churn", shape=shape, **kw))``."""
        kw.setdefault("churn", "mixed")
        kw.setdefault("churn_steps", 8)
        return self.run(SolveRequest(kind="churn", shape=shape, **kw))

    def pasc(self, structure: AmoebotStructure, runs, **kw):
        """Run PASC on ``runs`` over a session engine for ``structure``.

        The session analogue of
        ``run_pasc(engine, runs)`` — see :func:`repro.pasc.runner.run_pasc`.
        """
        from repro.pasc.runner import run_pasc

        return run_pasc(self.engine_for(structure), runs, **kw)

    # ------------------------------------------------------------------
    # kind pipelines
    # ------------------------------------------------------------------
    def _solve_forest(self, request, structure, sources, destinations, engine):
        """The solve core shared by ``solve`` and ``route`` requests."""
        allow_holes = request.allow_holes or self.allow_holes
        if request.algorithm == "auto":
            from repro.spf.api import solve_spf

            solution = solve_spf(
                structure, sources, destinations, engine=engine,
                allow_holes=allow_holes,
            )
            return solution.forest, solution.algorithm
        if request.algorithm == "spt":
            from repro.spf.spt import shortest_path_tree

            spt = shortest_path_tree(engine, structure, sources[0], destinations)
            from repro.spf.types import Forest

            return (
                Forest(
                    sources={sources[0]},
                    parent=spt.parent,
                    members=set(spt.members),
                ),
                "spt",
            )
        if request.algorithm == "forest":
            from repro.spf.forest import shortest_path_forest

            forest = shortest_path_forest(
                engine, structure, sources,
                destinations if request.l != ALL_NODES else None,
            )
            return forest, "forest"
        if request.algorithm == "sequential":
            from repro.baselines.sequential_merge import sequential_merge_forest

            return sequential_merge_forest(engine, structure, sources), "sequential"
        # "wave"
        from repro.baselines.bfs_wave import bfs_wave_forest

        forest = bfs_wave_forest(engine, structure, set(sources), set(destinations))
        return forest, "wave"

    def _run_solve(self, request, structure, sources, destinations, engine, emit):
        rounds_before = engine.rounds.total
        with trace_span("rounds", algorithm=request.algorithm) as rounds_span:
            forest, resolved = self._solve_forest(
                request, structure, sources, destinations, engine
            )
            rounds_span.set(
                algorithm=resolved, rounds=engine.rounds.total - rounds_before
            )
        emit({"event": "solved", "algorithm": resolved,
              "members": len(forest.members)})
        report = self._base_report(
            request, structure, sources, destinations, engine, forest, resolved
        )
        if request.kind == "route":
            from repro.motion.routing import RoutingPlan, route_tokens

            origins = _token_origins(request, forest, sources, destinations)
            with trace_span("route", tokens=len(origins)) as route_span:
                stats = route_tokens(RoutingPlan(forest, origins))
                route_span.set(steps=stats.steps, moves=stats.total_moves)
            report.routing = stats.to_dict()
            report.routing["tokens"] = len(origins)
            report.routing_stats = stats
            emit({"event": "routed", "steps": stats.steps,
                  "moves": stats.total_moves})
        return report

    def _run_churn(self, request, structure, sources, destinations, engine, emit):
        from repro.dynamics import DynamicSPF, FaultInjector, generate_churn

        faults = None
        if request.crash or request.drop:
            rng = _random.Random(request.seed + 1)
            pool = [u for u in sorted(structure.nodes) if u not in set(sources)]
            crashed = (
                rng.sample(pool, min(request.crash, len(pool)))
                if request.crash
                else []
            )
            faults = FaultInjector(
                crashed=crashed, drop_prob=request.drop, seed=request.seed
            )
        initial_n = len(structure)
        with trace_span("rounds") as solve_span:
            dyn = DynamicSPF(
                structure,
                sources,
                destinations if request.l != ALL_NODES else None,
                threshold=request.threshold,
                faults=faults,
                session=_BoundEngineSession(engine),
            )
            initial_rounds = dyn.engine.rounds.total
            solve_span.set(algorithm="dynamic", rounds=initial_rounds)
        initial_members = len(dyn.forest.members)
        emit({"event": "solved", "algorithm": "dynamic",
              "members": len(dyn.forest.members), "rounds": initial_rounds})
        script = generate_churn(
            structure,
            request.churn,
            steps=request.churn_steps,
            batch_size=request.churn_batch,
            seed=request.seed,
            protected=dyn.protected,
        )
        batches = []
        for i, batch in enumerate(script):
            st = dyn.apply(batch)
            batches.append(st)
            emit({"event": "batch", "index": i, "ops": st.batch_ops,
                  "mode": st.mode, "rounds": st.rounds, "n": st.structure_size})
        report = self._base_report(
            request, dyn.structure, sources, destinations, dyn.engine,
            dyn.forest, "dynamic",
        )
        # One fresh solve on the final structure: the CLI's reference
        # point for how much the incremental repairs saved.
        from repro.spf.api import solve_spf

        with trace_span("reference") as ref_span:
            reference = solve_spf(
                dyn.structure,
                sources,
                destinations
                if request.l != ALL_NODES
                else list(dyn.structure.nodes),
                engine=self.engine_for(dyn.structure, scheduler=""),
                allow_holes=request.allow_holes or self.allow_holes,
            )
            ref_span.set(rounds=reference.rounds)
        report.repair = {
            "initial_n": initial_n,
            "initial_rounds": initial_rounds,
            "initial_members": initial_members,
            "fresh_rounds": reference.rounds,
            "edit_batches": len(batches),
            "edit_ops": sum(s.batch_ops for s in batches),
            "repairs_patch": sum(1 for s in batches if s.mode == "patch"),
            "repairs_full": sum(1 for s in batches if s.mode == "full"),
            "repair_rounds": sum(s.rounds for s in batches),
            "wave_rounds": sum(s.wave_rounds for s in batches),
            "dirty_nodes": sum(s.dirty for s in batches),
            "batches": [
                {
                    "ops": s.batch_ops, "n": s.structure_size,
                    "region": s.region, "dirty": s.dirty, "mode": s.mode,
                    "rounds": s.rounds, "wave": s.wave_rounds,
                    "healed": s.corrected,
                }
                for s in batches
            ],
        }
        if script.batches:
            last = script.batches[-1]
            report.added = [u for u in last.add if u in dyn.structure]
        if faults is not None:
            fs = faults.stats
            report.faults = {
                "lost": fs.lost,
                "suppressed": fs.suppressed,
                "dropped": fs.dropped,
                "missed_hears": fs.missed_hears,
            }
        return report

    def _base_report(
        self, request, structure, sources, destinations, engine, forest, resolved
    ) -> SolveReport:
        report = SolveReport(
            key=request.key(),
            kind=request.kind,
            shape=request.shape,
            n=len(structure),
            k=request.k,
            l=request.l,
            seed=request.seed,
            algorithm=resolved,
            rounds=engine.rounds.total,
            forest_members=len(forest.members),
            elapsed_s=0.0,
            activations=engine.rounds.activations,
            sections=dict(engine.rounds.breakdown()),
        )
        report.forest = forest
        report.structure = structure
        report.sources = list(sources)
        report.destinations = list(destinations)
        return report


class _BoundEngineSession:
    """Adapter giving :class:`DynamicSPF` an already-built engine.

    ``DynamicSPF(session=...)`` only calls ``session.engine_for`` once,
    for its own structure; binding a pre-built engine keeps the round
    counter continuous with whatever the caller has already charged.
    """

    def __init__(self, engine: CircuitEngine):
        self._engine = engine

    def engine_for(self, structure, scheduler=None, backend=None):
        if self._engine.structure is not structure:
            raise ValueError("bound engine belongs to a different structure")
        return self._engine


def _pick_endpoints(
    structure: AmoebotStructure, request: SolveRequest
) -> Tuple[List[Node], List[Node]]:
    """Sources/destinations per the request's placement policy.

    Mirrors the historical CLI selection exactly (the raw ``seed``
    drives sampling), so flag-built and request-built invocations pick
    identical endpoints — round counts stay bit-identical across the
    migration.
    """
    ordered = sorted(structure.nodes)
    n = len(ordered)
    if request.k > n:
        raise RequestError(f"k = {request.k} exceeds structure size {n}")
    want_all = request.l == ALL_NODES
    if not want_all and request.k + request.l > n:
        raise RequestError(
            f"cannot pick {request.k}+{request.l} disjoint nodes from {n}"
        )
    if request.placement == "extremes":
        sources = ordered[: request.k]
        destinations = list(ordered) if want_all else ordered[n - request.l:]
    elif request.placement == "spread":
        sources = spread_nodes(structure, request.k)
        if want_all:
            destinations = list(ordered)
        else:
            chosen = set(sources)
            destinations = [u for u in ordered if u not in chosen][: request.l]
    else:  # random
        if want_all:
            rng = _random.Random(request.seed)
            sources = rng.sample(ordered, request.k)
            destinations = list(ordered)
        else:
            sources, destinations = sample_sources_destinations(
                structure, request.k, request.l, seed=request.seed
            )
    if not destinations:
        raise RequestError(f"no destinations (l = {request.l})")
    return sources, destinations


def _token_origins(
    request: SolveRequest, forest, sources: List[Node], destinations: List[Node]
) -> List[Node]:
    """Token origins for a route request (CLI-identical sampling)."""
    if not request.tokens:
        return list(destinations)
    members = sorted(forest.members - set(sources))
    if not members:
        raise RequestError("forest has no non-source members to seed tokens on")
    rng = _random.Random(request.seed)
    picks = sorted(rng.sample(range(len(members)), min(request.tokens, len(members))))
    return [members[i] for i in picks]


def iter_report_records(store: ResultStore) -> Iterator[Dict[str, object]]:
    """The solve-report records of a (possibly mixed) result store."""
    for record in store.records():
        if record.get("record") == SolveReport.RECORD:
            yield record
