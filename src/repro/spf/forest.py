"""The divide & conquer shortest path forest algorithm (Section 5.4).

Outline (Theorem 56, ``O(log n log² k)`` rounds):

1. **Divide** (§5.4.1): compute the source portals ``Q`` of the x-axis
   (one beep round), their augmentation ``A_Q`` (portal root-and-prune,
   Lemma 51), and split the structure into regions along ``Q' = Q ∪ A_Q``
   so that every region touches at most two ``Q'`` portals (Lemma 52).
2. **Base case** (§5.4.2): per region — all regions in parallel — run
   the line algorithm on the region's LCA boundary portal, propagate
   inward, repeat from the second boundary portal if present, and merge
   (Lemma 54).  Regions without sources keep an empty forest; sources
   reach them during merging.
3. **Conquer** (§5.4.3/5.4.4): walk the ``Q'``-centroid decomposition
   tree of the portal graph from its deepest level to the root —
   recomputed each iteration, as the amoebots cannot store it — and
   merge, for every portal of the current level in parallel, all
   regions touching that portal: pairwise along each side using the
   PASC-parity pairing across marked amoebots, then across the portal
   with two propagations and a merge (Lemma 55).
4. **Prune** (Corollary 57): one batched node-level root-and-prune per
   tree removes branches without destinations.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grid.coords import Node
from repro.grid.directions import Axis
from repro.grid.structure import AmoebotStructure
from repro.ett.tour import adjacency_from_edges, build_euler_tour
from repro.pasc.runner import run_pasc
from repro.portals.portals import Portal, PortalSystem
from repro.portals.primitives import (
    PortalScope,
    portal_centroid_decomposition,
    portal_elect,
    portal_root_and_prune,
)
from repro.primitives.root_prune import RootPruneOp
from repro.sim.engine import CircuitEngine
from repro.spf.line import line_forest
from repro.spf.merge import merge_forests
from repro.spf.propagate import propagate_forest
from repro.spf.regions import Region, RegionDecomposition, SubPortal
from repro.spf.spt import shortest_path_tree
from repro.spf.types import Forest


def shortest_path_forest(
    engine: CircuitEngine,
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Optional[Iterable[Node]] = None,
    axis: Axis = Axis.X,
    section: str = "forest",
) -> Forest:
    """Compute an (S, D)-shortest path forest (Theorem 56 / Cor. 57).

    ``destinations`` defaults to the whole structure (no final pruning).
    """
    source_set = set(sources)
    if not source_set:
        raise ValueError("need at least one source")
    missing = source_set - structure.nodes
    if missing:
        raise ValueError(f"sources outside the structure: {sorted(missing)[:3]}")
    dest_set = set(destinations) if destinations is not None else set(structure.nodes)

    system = PortalSystem(structure, axis)
    leader = structure.westernmost()
    root_portal = system.portal_of[leader]

    with engine.rounds.section(section):
        # ---- Step 1: Q, A_Q, Q' (Lemma 51) ----------------------------
        scope = PortalScope(system)
        layout = scope.portal_circuit_layout(engine, label="portal:src")
        # The round is charged for its cost; the simulator reads Q from
        # the portal map directly, so nothing is materialized.
        engine.run_round_indexed(
            layout,
            layout.compiled().index.indices(
                ((s, "portal:src") for s in source_set), "beep on"
            ),
            (),
        )
        q_portals = {system.portal_of[s] for s in source_set}

        rp = portal_root_and_prune(
            engine,
            system,
            root_portal,
            q_portals,
            scope=scope,
            compute_augmentation=True,
            section=f"{section}:q_prime",
        )
        q_prime = q_portals | rp.augmentation

        # ---- Step 2: regions (Lemma 52; O(1) rounds) ------------------
        decomposition = RegionDecomposition(system, q_prime, rp.in_vq)
        regions = decomposition.build_regions()
        engine.charge_local_round()  # unmark-westernmost beep (§5.4.1)

        # ---- Step 3: base case (Lemma 54) ------------------------------
        r_prime = portal_elect(
            engine, system, root_portal, q_prime, scope=scope,
            section=f"{section}:elect",
        )
        rooted = portal_root_and_prune(
            engine,
            system,
            r_prime,
            q_prime,
            scope=scope,
            section=f"{section}:root_at_rprime",
        )
        engine.charge_local_round()  # P_DSC-presence beep per region
        with engine.rounds.parallel() as group:
            for region in regions:
                with group.branch():
                    region.forest = _base_case(
                        engine, region, source_set, r_prime, rooted.parent,
                        axis, section,
                    )

        # ---- Step 4: merging along the decomposition tree --------------
        if len(q_prime) == 1:
            _merge_at_portal(
                engine, decomposition, next(iter(q_prime)), source_set, axis, section
            )
        else:
            dt = portal_centroid_decomposition(
                engine, system, r_prime, q_prime, scope=scope,
                section=f"{section}:decomposition",
            )
            height = dt.height
            for iteration in range(height):
                level = height - 1 - iteration
                if iteration > 0:
                    # The amoebots cannot store the decomposition tree;
                    # it is recomputed every iteration (§5.4.4) and the
                    # binary-counter technique selects the right level.
                    dt = portal_centroid_decomposition(
                        engine, system, r_prime, q_prime, scope=scope,
                        section=f"{section}:decomposition",
                    )
                with engine.rounds.parallel() as group:
                    for portal in dt.levels[level]:
                        with group.branch():
                            _merge_at_portal(
                                engine, decomposition, portal, source_set,
                                axis, section,
                            )

        final_regions = {id(decomposition.region_of_vertex(v)): decomposition.region_of_vertex(v)
                         for sides in decomposition.vertices_of.values()
                         for vs in sides.values() for v in vs}
        forests = [r.forest for r in final_regions.values()]
        if len(forests) != 1 or forests[0] is None:
            raise AssertionError(
                f"merging left {len(forests)} regions; expected one with a forest"
            )
        forest = forests[0]
        if forest.members != structure.nodes:
            raise AssertionError("final forest does not cover the structure")

        # ---- Step 5: prune to the destinations (Corollary 57) ----------
        if dest_set != structure.nodes:
            forest = _prune_to_destinations(engine, forest, dest_set, section)

    return forest


# ----------------------------------------------------------------------
# base case
# ----------------------------------------------------------------------


def _base_case(
    engine: CircuitEngine,
    region: Region,
    source_set: Set[Node],
    r_prime: Portal,
    portal_parent: Dict[Portal, Portal],
    axis: Axis,
    section: str,
) -> Optional[Forest]:
    """Lemma 54: an (S ∩ Y)-forest for one region (or None if S∩Y = ∅)."""
    boundary = region.boundary_vertices()
    if not boundary:
        raise AssertionError("region without boundary portal")
    portals_of_region = {v.portal for v in region.vertices}

    def is_lca(portal: Portal) -> bool:
        if portal == r_prime:
            return True
        parent = portal_parent.get(portal)
        return parent not in portals_of_region

    boundary_portals = sorted({v.portal for v in boundary})
    lca_candidates = [p for p in boundary_portals if is_lca(p)]
    if len(lca_candidates) != 1:
        raise AssertionError(
            f"region has {len(lca_candidates)} LCA portals (Lemma 53 violated)"
        )
    lca = lca_candidates[0]
    ordered = [v for v in boundary if v.portal == lca] + [
        v for v in boundary if v.portal != lca
    ]

    # Regions are connected by construction (components of the split
    # portal graph, adjacent vertices sharing connector edges), so the
    # trusted constructor skips the O(n) re-validation flood fill.
    sub_structure = AmoebotStructure.from_validated(region.nodes)
    forest: Optional[Forest] = None
    for vertex in ordered:
        line_nodes = list(vertex.nodes)
        line_sources = [u for u in line_nodes if u in source_set]
        if not line_sources:
            continue
        partial = line_forest(
            engine, line_nodes, line_sources, section=f"{section}:line"
        )
        partial = propagate_forest(
            engine,
            sub_structure,
            line_nodes,
            partial,
            axis=axis,
            section=f"{section}:base_propagate",
        )
        forest = (
            partial
            if forest is None
            else merge_forests(engine, forest, partial, section=f"{section}:base_merge")
        )
    return forest


# ----------------------------------------------------------------------
# merging along one portal (§5.4.3)
# ----------------------------------------------------------------------


def _merge_at_portal(
    engine: CircuitEngine,
    decomposition: RegionDecomposition,
    portal: Portal,
    source_set: Set[Node],
    axis: Axis,
    section: str,
) -> None:
    """Lemma 55: merge all regions touching ``portal`` into one."""
    merged_inputs: List[Region] = []
    side_regions: Dict[str, Optional[Region]] = {}
    for side in ("N", "S"):
        vertices = decomposition.side_vertices(portal, side)
        region, consumed = _merge_side(
            engine, decomposition, portal, side, vertices, source_set, axis, section
        )
        side_regions[side] = region
        merged_inputs.extend(consumed)

    north = side_regions["N"]
    south = side_regions["S"]
    assert north is not None and south is not None

    # Phase 2: merge the two sides across the portal with two
    # propagations and a merge (or fewer when a side has no sources).
    combined_nodes = north.nodes | south.nodes
    overlap = north.nodes & south.nodes
    if not set(portal.nodes) <= overlap:
        raise AssertionError("portal is not shared by both side regions")
    # Both side regions are connected and share the portal, so their
    # union is connected: the trusted constructor applies.
    structure = AmoebotStructure.from_validated(combined_nodes)

    forests = []
    for forest in (north.forest, south.forest):
        if forest is None:
            continue
        forests.append(
            propagate_forest(
                engine,
                structure,
                list(portal.nodes),
                forest,
                axis=axis,
                section=f"{section}:merge_propagate",
            )
        )
    if len(forests) == 2:
        merged_forest: Optional[Forest] = merge_forests(
            engine, forests[0], forests[1], section=f"{section}:merge_merge"
        )
    elif len(forests) == 1:
        merged_forest = forests[0]
    else:
        merged_forest = None

    merged_region = Region(
        vertices=north.vertices + [v for v in south.vertices if v not in north.vertices],
        nodes=combined_nodes,
        forest=merged_forest,
    )
    decomposition.replace_regions(merged_inputs + [north, south], merged_region)


def _merge_side(
    engine: CircuitEngine,
    decomposition: RegionDecomposition,
    portal: Portal,
    side: str,
    vertices: Sequence[SubPortal],
    source_set: Set[Node],
    axis: Axis,
    section: str,
) -> Tuple[Region, List[Region]]:
    """Phase 1 of Lemma 55 for one side of the portal.

    Iteratively pair-merges the side's regions across the marked
    amoebots using the PASC-parity pairing until one region remains.
    Returns the surviving region and the list of consumed input regions.
    """
    groups: List[Region] = []
    for vertex in vertices:
        region = decomposition.region_of_vertex(vertex)
        if not groups or groups[-1] is not region:
            groups.append(region)
    consumed = list(groups)
    marks = [
        portal.nodes[i] for i in decomposition.marks.get((portal, side), [])
    ]
    if len(marks) != len(groups) - 1:
        raise AssertionError("marks and side regions are inconsistent")

    while marks:
        # Termination test + one PASC iteration for the parity pairing.
        # Charged through the engine (not the raw counter) so an
        # event-driven engine simulates the activation epochs too.
        engine.charge_local_round(1)  # beep: are marked amoebots left?
        engine.charge_local_round(2)  # one PASC iteration on P with M
        # M' = the odd-parity marks (every other one, starting with the
        # westernmost); pair the regions around each of them.
        with engine.rounds.parallel() as group:
            merged_pairs: Dict[int, Region] = {}
            for j in range(0, len(marks), 2):
                west, east = groups[j], groups[j + 1]
                with group.branch():
                    merged_pairs[j] = _merge_pair(
                        engine, west, east, marks[j], source_set, section
                    )
        rebuilt: List[Region] = []
        new_marks: List[Node] = []
        for j in range(0, len(marks), 2):
            rebuilt.append(merged_pairs[j])
            if j + 1 < len(marks):
                new_marks.append(marks[j + 1])
        if len(marks) % 2 == 0:
            rebuilt.append(groups[-1])
        groups = rebuilt
        marks = new_marks
    engine.charge_local_round(1)  # final silence on the termination circuit
    return groups[0], consumed


def _merge_pair(
    engine: CircuitEngine,
    west: Region,
    east: Region,
    mark: Node,
    source_set: Set[Node],
    section: str,
) -> Region:
    """Merge two regions sharing exactly the marked amoebot (§5.4.3).

    Every shortest path between the regions passes the marked amoebot,
    so each forest extends into the other region via a shortest path
    tree rooted there (Theorem 39), and the merging algorithm combines
    the two extensions (Lemma 42).
    """
    overlap = west.nodes & east.nodes
    if mark not in overlap:
        raise AssertionError("paired regions do not share their marked amoebot")
    combined = west.nodes | east.nodes

    def extend(forest: Optional[Forest], into: Region) -> Optional[Forest]:
        if forest is None:
            return None
        target_nodes = into.nodes
        # A region's node set is connected (see _base_case).
        sub = AmoebotStructure.from_validated(target_nodes)
        spt = shortest_path_tree(
            engine, sub, mark, target_nodes, section=f"{section}:pair_spt"
        )
        parent = dict(forest.parent)
        parent.update(spt.parent)
        return Forest(sources=set(forest.sources), parent=parent, members=combined)

    extended_west = extend(west.forest, east)
    extended_east = extend(east.forest, west)
    if extended_west is not None and extended_east is not None:
        forest: Optional[Forest] = merge_forests(
            engine, extended_west, extended_east, section=f"{section}:pair_merge"
        )
    else:
        forest = extended_west or extended_east

    return Region(
        vertices=west.vertices + [v for v in east.vertices if v not in west.vertices],
        nodes=combined,
        forest=forest,
    )


# ----------------------------------------------------------------------
# final pruning (Corollary 57)
# ----------------------------------------------------------------------


def _prune_to_destinations(
    engine: CircuitEngine,
    forest: Forest,
    destinations: Set[Node],
    section: str,
) -> Forest:
    """Batched root-and-prune on every tree with Q = D (Corollary 57)."""
    ops: List[Tuple[Node, RootPruneOp]] = []
    with engine.rounds.section(f"{section}:prune"):
        for source, parent_map in forest.tree_parent_maps().items():
            tree_nodes = {source} | set(parent_map)
            q = (destinations & tree_nodes) | {source}
            edges = [(u, p) for u, p in parent_map.items()]
            adjacency = adjacency_from_edges(edges) if edges else {source: []}
            tour = build_euler_tour(source, adjacency)
            ops.append((source, RootPruneOp(tour, q, tag=f"pr{source.x}_{source.y}")))
        chains = [op.ett_op.chain for _s, op in ops if op.ett_op.chain is not None]
        if chains:
            run_pasc(engine, chains, section=f"{section}:prune_pasc")

    parent: Dict[Node, Node] = {}
    members: Set[Node] = set(forest.sources)
    for source, op in ops:
        result = op.result()
        for u in result.in_vq:
            members.add(u)
            if u != source:
                parent[u] = result.parent[u]
    return Forest(sources=set(forest.sources), parent=parent, members=members)
