"""The merging algorithm (Section 5.2, Lemma 42).

Given an S1-forest and an S2-forest over the same member set, PASC on
each forest's trees computes ``dist(S1, u)`` and ``dist(S2, u)`` for
every amoebot ``u`` (tree depth = source distance, Corollary 5); each
amoebot then keeps the parent from the forest whose sources are closer
(Lemma 41 shows that parent is feasible for ``S1 ∪ S2``).  All tree PASC
executions run in parallel: ``O(log n)`` rounds.
"""

from __future__ import annotations

from typing import Dict, List

from repro.grid.coords import Node
from repro.pasc.runner import run_pasc
from repro.pasc.tree import PascTreeRun
from repro.sim.engine import CircuitEngine
from repro.spf.types import Forest

_FOREST1_CHANNELS = (0, 1)
_FOREST2_CHANNELS = (2, 3)


def forest_distances(
    engine: CircuitEngine,
    forest: Forest,
    channels=(0, 1),
    tag: str = "fd",
    section: str = "forest_distances",
) -> Dict[Node, int]:
    """``dist(S, u)`` for every member via parallel tree PASC runs."""
    runs = _forest_runs(forest, channels, tag)
    if runs:
        run_pasc(engine, runs, section=section)
    return _collect(runs, forest)


def _forest_runs(forest: Forest, channels, tag: str) -> List[PascTreeRun]:
    runs = []
    for source, parent_map in forest.tree_parent_maps().items():
        runs.append(
            PascTreeRun(
                source,
                parent_map,
                tag=f"{tag}:{source.x}:{source.y}",
                primary_channel=channels[0],
                secondary_channel=channels[1],
            )
        )
    return runs


def _collect(runs: List[PascTreeRun], forest: Forest) -> Dict[Node, int]:
    dist: Dict[Node, int] = {}
    for run in runs:
        dist.update(run.values())
    missing = forest.members - set(dist)
    if missing:
        raise AssertionError(f"forest distance missing for {sorted(missing)[:3]}")
    return dist


def merge_forests(
    engine: CircuitEngine,
    forest1: Forest,
    forest2: Forest,
    section: str = "merge",
) -> Forest:
    """Merge two forests over the same members (Lemma 42).

    Every amoebot closer to ``S1`` keeps its ``forest1`` parent, every
    amoebot closer to ``S2`` its ``forest2`` parent (ties favor
    ``forest1`` — both are feasible by Lemma 41).
    """
    if forest1.members != forest2.members:
        raise ValueError("merging requires identical member sets")

    with engine.rounds.section(section):
        runs1 = _forest_runs(forest1, _FOREST1_CHANNELS, "m1")
        runs2 = _forest_runs(forest2, _FOREST2_CHANNELS, "m2")
        if runs1 or runs2:
            run_pasc(engine, runs1 + runs2, section=f"{section}:pasc")
        dist1 = _collect(runs1, forest1)
        dist2 = _collect(runs2, forest2)
        engine.charge_local_round()  # the local parent comparison

    sources = forest1.sources | forest2.sources
    parent: Dict[Node, Node] = {}
    for u in forest1.members:
        if u in sources:
            continue
        if dist1[u] <= dist2[u]:
            parent[u] = forest1.parent[u]
        else:
            parent[u] = forest2.parent[u]
    return Forest(sources=sources, parent=parent, members=set(forest1.members))
