"""Public entry point for the (k, l)-shortest path forest problem.

Quickstart (the unified facade)::

    from repro import Session, SolveRequest, hexagon, solve_spf

    structure = hexagon(4)
    nodes = sorted(structure.nodes)

    # One-shot: the classic free function.
    solution = solve_spf(structure, [nodes[0]], nodes[-5:])

    # Reusing hot state across solves: a Session owns the engine
    # configuration (backend, scheduler, layout caches) and hands the
    # same engine policy to every call.
    session = Session(scheduler="random:1")
    solution = solve_spf(structure, [nodes[0]], nodes[-5:], session=session)
    print(solution.rounds, solution.activations)

    # Fully declarative (what `repro serve` executes): requests are
    # serializable, content-hashed, and cached by the session's store.
    report = session.run(SolveRequest(shape="hexagon:4", k=1, l=5))

The ``scheduler=`` kwarg below is a deprecated alias for
``session=Session(scheduler=...)`` and will be removed after one
release.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Optional, Set, Union

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure
from repro.sim.engine import CircuitEngine
from repro.spf.forest import shortest_path_forest
from repro.spf.spt import shortest_path_tree
from repro.spf.types import Forest


@dataclass
class SPFSolution:
    """Result of :func:`solve_spf`.

    Attributes
    ----------
    forest:
        The computed (S, D)-shortest path forest.
    rounds:
        Synchronous rounds spent (preprocessing for compass/chirality
        and leader agreement — ``O(log n)`` w.h.p. by Theorems 1/2 —
        is assumed done, exactly as in the paper).
    algorithm:
        ``"spt"`` (Section 4) for ``k = 1``; ``"forest"`` (Section 5)
        otherwise.
    activations:
        Amoebot activations spent; ``n * rounds`` under the synchronous
        engine, the real wake-up count under an event-driven one
        (:mod:`repro.sched`).
    """

    forest: Forest
    rounds: int
    algorithm: str
    activations: int = 0


def solve_spf(
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Iterable[Node],
    engine: Optional[CircuitEngine] = None,
    allow_holes: bool = False,
    scheduler: Optional[Union[str, object]] = None,
    *,
    session: Optional[object] = None,
) -> SPFSolution:
    """Solve (k, l)-SPF on an amoebot structure.

    Dispatches to the shortest path tree algorithm (Theorem 39,
    ``O(log l)`` rounds) for a single source and to the divide & conquer
    forest algorithm (Theorem 56, ``O(log n log² k)`` rounds) otherwise.

    Both polylogarithmic algorithms require a hole-free structure
    (Lemmas 9 and 11 fail otherwise — the paper's stated open problem).
    With ``allow_holes=True`` a structure with holes is handled by the
    circuit-free BFS wave instead: still a correct (S, D)-shortest path
    forest, but at ``Θ(max_d dist(S, d))`` rounds.  The returned
    ``algorithm`` field says which path was taken.

    ``session`` (a :class:`repro.api.Session`) supplies the engine —
    backend, scheduler, and shared layout caches in one object; the
    session's ``allow_holes`` policy applies when the kwarg is left at
    its default.  ``engine`` remains the low-level composition hook for
    callers that manage an engine's lifecycle themselves (the dynamics
    layer, the campaign runner); it is mutually exclusive with
    ``session``.

    .. deprecated::
        ``scheduler=`` — pass ``session=Session(scheduler=...)``
        instead.  The alias warns and will be removed after one
        release.
    """
    source_set = set(sources)
    dest_set = set(destinations)
    if not source_set or not dest_set:
        raise ValueError("sources and destinations must be non-empty")
    if scheduler is not None:
        warnings.warn(
            "solve_spf(scheduler=...) is deprecated; pass "
            "session=Session(scheduler=...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if engine is not None or session is not None:
            raise ValueError("pass one of engine, scheduler, or session — not both at once")
        from repro.sched import ActivationEngine

        engine = ActivationEngine(structure, scheduler=scheduler)
    if session is not None:
        if engine is not None:
            raise ValueError("pass either engine or session, not both")
        engine = session.engine_for(structure)
        allow_holes = allow_holes or getattr(session, "allow_holes", False)
    if engine is None:
        engine = CircuitEngine(structure)
    start = engine.rounds.total
    start_activations = engine.rounds.activations

    from repro.grid.holes import has_holes

    if has_holes(structure.nodes):
        if not allow_holes:
            raise ValueError(
                "structure has holes; the polylogarithmic algorithms "
                "require hole-free structures (pass allow_holes=True "
                "for the O(diam) wave fallback)"
            )
        forest = _wave_fallback(engine, structure, source_set, dest_set)
        algorithm = "wave-fallback"
    elif len(source_set) == 1:
        source = next(iter(source_set))
        spt = shortest_path_tree(engine, structure, source, dest_set)
        forest = Forest(
            sources={source}, parent=spt.parent, members=set(spt.members)
        )
        algorithm = "spt"
    else:
        forest = shortest_path_forest(engine, structure, source_set, dest_set)
        algorithm = "forest"

    return SPFSolution(
        forest=forest,
        rounds=engine.rounds.total - start,
        algorithm=algorithm,
        activations=engine.rounds.activations - start_activations,
    )


def _wave_fallback(
    engine: CircuitEngine,
    structure: AmoebotStructure,
    sources: Set[Node],
    destinations: Set[Node],
) -> Forest:
    """BFS wave + pruning: correct on any structure, Θ(diam) rounds."""
    from repro.baselines.bfs_wave import bfs_wave_forest

    wave = bfs_wave_forest(engine, structure, sources, destinations)
    # Prune branches that do not lead to a destination so the result
    # satisfies forest property 2 (every leaf in S ∪ D).
    keep: Set[Node] = set(sources)
    for d in destinations:
        cur = d
        while cur not in keep:
            keep.add(cur)
            cur = wave.parent[cur]
    parent = {u: p for u, p in wave.parent.items() if u in keep}
    return Forest(sources=set(sources), parent=parent, members=keep)
