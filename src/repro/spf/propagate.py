"""The propagation algorithm (Section 5.3, Lemma 50).

A portal ``P`` divides the structure into the side ``A ∪ P`` already
covered by a forest (``S ⊆ A ∪ P``) and the remainder ``B``; the
algorithm extends the forest into ``B`` in ``O(log n)`` rounds.  ``B``
is simply the set of amoebots not yet in the forest — this also covers
structures that wrap around an end of ``P``.

Phase 1 — the visibility region ``B' = B ∩ vis(P)``:
  one beep round on the transversal (y-/z-) portal circuits (every
  ``p ∈ P`` beeps on both of its portals) tells every ``B``-amoebot
  whether it is visible along its y-portal, its z-portal, or both.
  Single-sided amoebots take the neighbor toward their sole projection
  as parent (Lemma 47).  Double-sided amoebots learn
  ``dist(S, proj_y)`` and ``dist(S, proj_z)`` — PASC over the existing
  forest computes ``dist(S, ·)`` and the portal circuits forward the
  bits in the same iterations — and take the neighbor toward the closer
  projection (Lemma 46).

Phase 2 — the shadowed remainder ``B'' = B \\ vis(P)``:
  every connected component ``Z`` of ``B''`` is reached through the
  gateway amoebot ``s_Z`` of ``Z`` closest to ``P``'s grid line (Lemmas
  48/49); ``s_Z`` hooks onto its closest-to-``P`` visible neighbor and a
  shortest path tree with source ``s_Z`` covers ``Z`` (Theorem 39).
  All components run in parallel.

Scheduler contract: all round costs are charged through the engine's
hooks (``run_round_indexed`` / ``charge_local_round``), so the
propagation runs unchanged under the event-driven engines of
:mod:`repro.sched` — delayed amoebots delay epochs, never outcomes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from repro.grid.coords import Node
from repro.grid.directions import Axis, Direction
from repro.grid.structure import AmoebotStructure
from repro.portals.portals import PortalSystem
from repro.sim.engine import CircuitEngine
from repro.spf.merge import forest_distances
from repro.spf.types import Forest


def _line_coordinate(node: Node, axis: Axis) -> int:
    """Coordinate identifying the ``axis``-parallel line of a node."""
    return node.axis_coordinate(axis)


def _toward_direction(axis: Axis, other: Axis, gap_sign: int) -> Direction:
    """Direction along ``other`` that moves toward the portal's line.

    ``gap_sign`` is the sign of ``coord(u) - coord(P)`` on ``axis``;
    stepping in the returned direction shrinks the gap.
    """
    pos, neg = other.directions
    pos_delta = _line_coordinate(Node(0, 0).neighbor(pos), axis)
    if pos_delta == -gap_sign:
        return pos
    return neg


def propagate_forest(
    engine: CircuitEngine,
    structure: AmoebotStructure,
    portal_nodes: Sequence[Node],
    forest: Forest,
    axis: Axis = Axis.X,
    section: str = "propagate",
) -> Forest:
    """Extend an ``A ∪ P`` forest across portal ``P`` into the rest.

    ``portal_nodes`` is the portal run ``P`` inside ``structure`` (all
    on one ``axis``-parallel line, all forest members).  ``B`` is the
    complement of the forest's members.  Returns an S-forest covering
    the whole structure (Lemma 50).
    """
    portal = list(portal_nodes)
    if not portal:
        raise ValueError("portal must be non-empty")
    line = _line_coordinate(portal[0], axis)
    if any(_line_coordinate(p, axis) != line for p in portal):
        raise ValueError("portal nodes do not share a grid line")
    portal_set = set(portal)
    if not portal_set <= forest.members:
        raise ValueError("the portal must be covered by the forest")
    if not forest.members <= structure.nodes:
        raise ValueError("forest members outside the structure")

    b_nodes = structure.nodes - forest.members
    if not b_nodes:
        return forest

    other_axes = axis.others
    systems = {d: PortalSystem(structure, d) for d in other_axes}

    with engine.rounds.section(section):
        # ---- Phase 1: visibility + parents inside B' ------------------
        # One beep round: every p in P beeps on its two transversal
        # portal circuits; a B-amoebot hears per axis iff its portal
        # meets P (executed as a real round; the projection bookkeeping
        # below mirrors what each amoebot reads locally).
        from repro.portals.primitives import portal_runs_key

        circuit_edges = []
        for d in other_axes:
            for run in systems[d].portals:
                circuit_edges.extend(zip(run.nodes, run.nodes[1:]))
        layout = engine.edge_subset_layout(
            circuit_edges,
            label="vis",
            channel=4,
            key=portal_runs_key(
                engine,
                ((d, p) for d in other_axes for p in systems[d].portals),
            ),
        )
        # Charged for its cost; the projection bookkeeping below mirrors
        # what each amoebot reads locally, so nothing is materialized.
        engine.run_round_indexed(
            layout,
            layout.compiled().index.indices(((p, "vis") for p in portal), "beep on"),
            (),
        )

        # Where each transversal portal first meets P, computed in one
        # pass per axis over the portal runs (instead of re-scanning a
        # run for every B-amoebot on it).
        meets: Dict[Axis, List[Optional[Node]]] = {}
        for d in other_axes:
            meets[d] = [
                next((p for p in run.nodes if p in portal_set), None)
                for run in systems[d].portals
            ]

        grid = structure.grid_index()
        visible: Dict[Node, Dict[Axis, Node]] = {}
        for u in sorted(b_nodes):
            nid = grid.id_of(u)
            hits: Dict[Axis, Node] = {}
            for d in other_axes:
                meet = meets[d][systems[d].portal_index_of_id[nid]]
                if meet is not None:
                    hits[d] = meet
            if hits:
                visible[u] = hits
        b_prime = set(visible)
        b_shadow = b_nodes - b_prime

        parent: Dict[Node, Node] = dict(forest.parent)

        # Distances on P via PASC over the existing forest; the portal
        # circuits forward the bits to doubly-visible amoebots within
        # the same iterations (no extra rounds, per the paper).
        needs_distance = any(len(hits) == 2 for hits in visible.values())
        dist_on_p: Dict[Node, int] = {}
        if needs_distance:
            all_dist = forest_distances(
                engine, forest, channels=(0, 1), tag="prop", section=f"{section}:pasc"
            )
            dist_on_p = {p: all_dist[p] for p in portal}

        for u, hits in visible.items():
            gap_sign = 1 if _line_coordinate(u, axis) > line else -1
            if len(hits) == 1:
                (d, _proj) = next(iter(hits.items()))
                parent[u] = u.neighbor(_toward_direction(axis, d, gap_sign))
            else:
                (d1, p1), (d2, p2) = sorted(hits.items())
                # Prefer the first transversal axis on ties, matching the
                # paper's "chooses n_y(u) if dist(S, proj_y) <= dist(S,
                # proj_z)".
                if dist_on_p[p1] <= dist_on_p[p2]:
                    parent[u] = u.neighbor(_toward_direction(axis, d1, gap_sign))
                else:
                    parent[u] = u.neighbor(_toward_direction(axis, d2, gap_sign))
        engine.charge_local_round()

        # ---- Phase 2: shadowed components -----------------------------
        components = _shadow_components(structure, b_shadow)
        with engine.rounds.parallel() as group:
            for component in components:
                with group.branch():
                    _propagate_into_shadow(
                        engine,
                        structure,
                        component,
                        b_prime,
                        parent,
                        axis,
                        line,
                        section=section,
                    )

    return Forest(
        sources=set(forest.sources),
        parent=parent,
        members=set(structure.nodes),
    )


def _shadow_components(
    structure: AmoebotStructure, shadow: Set[Node]
) -> List[Set[Node]]:
    """Connected components of ``B''`` inside the structure."""
    remaining = set(shadow)
    components = []
    while remaining:
        start = remaining.pop()
        component = {start}
        stack = [start]
        while stack:
            u = stack.pop()
            for v in structure.neighbors(u):
                if v in remaining:
                    remaining.discard(v)
                    component.add(v)
                    stack.append(v)
        components.append(component)
    return components


def _propagate_into_shadow(
    engine: CircuitEngine,
    structure: AmoebotStructure,
    component: Set[Node],
    b_prime: Set[Node],
    parent: Dict[Node, Node],
    axis: Axis,
    line: int,
    section: str,
) -> None:
    """Phase 2 for one shadowed component ``Z`` (mutates ``parent``)."""
    # Local import: propagate and spt call each other across the two
    # halves of the algorithm (SPT never propagates, so no cycle).
    from repro.spf.spt import shortest_path_tree

    def level(u: Node) -> int:
        return abs(_line_coordinate(u, axis) - line)

    gateway_candidates = {
        u for u in component if any(v in b_prime for v in structure.neighbors(u))
    }
    if not gateway_candidates:
        raise AssertionError("shadow component without visible neighbors")
    s_z = min(gateway_candidates, key=lambda u: (level(u), u.x, u.y))
    visible_neighbors = [v for v in structure.neighbors(s_z) if v in b_prime]
    b_z = min(visible_neighbors, key=lambda v: (level(v), v.x, v.y))
    parent[s_z] = b_z

    if len(component) == 1:
        engine.charge_local_round()
        return

    # Shortest path tree with source s_Z inside Z (Theorem 39 on the
    # component sub-structure, destinations = all of Z).  The component
    # was flood-filled, so it is connected and the trusted constructor
    # skips re-validation.
    sub = AmoebotStructure.from_validated(component)
    spt = shortest_path_tree(
        engine,
        sub,
        s_z,
        component,
        section=f"{section}:shadow_spt",
    )
    for u, p in spt.parent.items():
        parent[u] = p
