"""Shared forest representation for the Section 5 algorithms."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Set

from repro.grid.coords import Node


@dataclass
class Forest:
    """An S-shortest-path forest over a set of member amoebots.

    ``parent`` maps every member except the sources to its tree parent;
    every parent chain ends at a source.  This is exactly the knowledge
    the model requires of the amoebots ("each amoebot knows its parent").
    """

    sources: Set[Node]
    parent: Dict[Node, Node]
    members: Set[Node]

    def __post_init__(self) -> None:
        if not self.sources:
            raise ValueError("a forest needs at least one source")
        if not self.sources <= self.members:
            raise ValueError("sources must be members")
        missing = self.members - self.sources - set(self.parent)
        if missing:
            raise ValueError(
                f"non-source members without parent: {sorted(missing)[:3]}"
            )

    def root_of(self, node: Node) -> Node:
        """The source at the top of ``node``'s parent chain."""
        steps = 0
        cur = node
        while cur not in self.sources:
            cur = self.parent[cur]
            steps += 1
            if steps > len(self.members):
                raise ValueError("parent pointers contain a cycle")
        return cur

    def depth_of(self, node: Node) -> int:
        """Tree depth of ``node`` (= its distance from its source)."""
        depth = 0
        cur = node
        while cur not in self.sources:
            cur = self.parent[cur]
            depth += 1
            if depth > len(self.members):
                raise ValueError("parent pointers contain a cycle")
        return depth

    def children(self) -> Dict[Node, List[Node]]:
        """Child lists per member (sources included)."""
        result: Dict[Node, List[Node]] = {u: [] for u in self.members}
        for u, p in self.parent.items():
            result[p].append(u)
        return result

    def tree_parent_maps(self) -> Dict[Node, Dict[Node, Node]]:
        """Per-source parent maps (node-disjoint trees)."""
        trees: Dict[Node, Dict[Node, Node]] = {s: {} for s in self.sources}
        for u in self.parent:
            trees[self.root_of(u)][u] = self.parent[u]
        return trees

    def restricted_to(self, nodes: Set[Node]) -> "Forest":
        """The forest induced on ``nodes`` (which must be parent-closed)."""
        parent = {u: p for u, p in self.parent.items() if u in nodes}
        dangling = {p for p in parent.values() if p not in nodes}
        if dangling:
            raise ValueError("restriction cuts parent chains")
        return Forest(
            sources=self.sources & nodes,
            parent=parent,
            members=self.members & nodes,
        )

    def __iter__(self) -> Iterator[Node]:
        return iter(self.members)
