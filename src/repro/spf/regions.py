"""Region decomposition for the divide & conquer algorithm (§5.4.1).

The structure is split along the source-bearing portals ``Q' = Q ∪ A_Q``
of one chosen axis:

1. every portal ``P ∈ Q'`` is duplicated into a north copy and a south
   copy, taking along the portal-tree edges on its side (``P`` itself
   belongs to both sides);
2. within each side, ``P`` marks its connector amoebot toward every
   adjacent ``V_Q``-portal, unmarks the westernmost mark, and splits
   into *subportals* at the remaining marks (marked amoebots belong to
   both neighboring subportals); each incident portal-tree edge is
   assigned to the subportal interval containing its connector, with
   boundary (marked) connectors assigned eastward.

Regions are the connected components of the resulting split portal
graph; each intersects one or two ``Q'`` (sub)portals (Lemma 52).  The
bookkeeping lives in the driver — every amoebot could maintain its
region memberships with O(1) local flags — while all round costs of the
construction are the primitives charged by the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.grid.coords import Node
from repro.portals.portals import Portal, PortalSystem
from repro.portals.primitives import _is_north_side
from repro.spf.types import Forest


@dataclass(frozen=True, eq=False)
class SubPortal:
    """One (sub)portal vertex of the split portal graph.

    Vertices are created exactly once per decomposition (``eq=False``):
    identity comparison and hashing keep the split-graph adjacency and
    the region bookkeeping free of portal-length tuple hashing.
    """

    portal: Portal
    side: Optional[str]  # "N"/"S" for Q' portals, None for ordinary ones
    index: int  # interval index within the side
    start: int  # first node index within the portal (inclusive)
    end: int  # last node index (inclusive)

    @property
    def nodes(self) -> Tuple[Node, ...]:
        """The amoebots of this (sub)portal interval."""
        return self.portal.nodes[self.start : self.end + 1]

    @property
    def is_boundary(self) -> bool:
        """Whether this vertex is a piece of a Q' portal."""
        return self.side is not None


@dataclass
class Region:
    """A region: a connected set of (sub)portals with its node set."""

    vertices: List[SubPortal]
    nodes: Set[Node] = field(default_factory=set)
    forest: Optional[Forest] = None

    def __post_init__(self) -> None:
        if not self.nodes:
            for v in self.vertices:
                self.nodes.update(v.nodes)

    def boundary_vertices(self) -> List[SubPortal]:
        """The region's Q'-(sub)portal vertices."""
        return [v for v in self.vertices if v.is_boundary]

    def boundary_portals(self) -> Set[Portal]:
        """The distinct Q' portals the region touches."""
        return {v.portal for v in self.boundary_vertices()}


class RegionDecomposition:
    """The split portal graph, its regions, and the merge bookkeeping."""

    def __init__(
        self,
        system: PortalSystem,
        q_prime: Set[Portal],
        vq: Set[Portal],
    ):
        self.system = system
        self.q_prime = set(q_prime)
        self.vq = set(vq)
        #: subportal vertices per portal: {portal: {side: [SubPortal...]}}
        self.vertices_of: Dict[Portal, Dict[Optional[str], List[SubPortal]]] = {}
        #: marks per Q' portal and side: node indices splitting the side
        self.marks: Dict[Tuple[Portal, str], List[int]] = {}
        self.regions: List[Region] = []
        self._region_of_vertex: Dict[SubPortal, int] = {}
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _side_of(self, p1: Portal, p2: Portal) -> str:
        """Side ("N"/"S") of adjacent portal ``p2`` as seen from ``p1``."""
        u, v = self.system.connector[(p1, p2)]
        return "N" if _is_north_side(self.system, u, v) else "S"

    def _node_index(self, portal: Portal, node: Node) -> int:
        nid = self.system.structure.grid_index().id_of(node)
        if nid is not None and self.system.portal_offset_of_id[nid] >= 0:
            return self.system.portal_offset_of_id[nid]
        return portal.nodes.index(node)

    def _build(self) -> None:
        # 1. subportal vertices.
        for portal in self.system.portals:
            if portal not in self.q_prime:
                self.vertices_of[portal] = {
                    None: [SubPortal(portal, None, 0, 0, len(portal.nodes) - 1)]
                }
                continue
            sides: Dict[Optional[str], List[SubPortal]] = {}
            for side in ("N", "S"):
                vq_connectors = []
                for p2 in self.system.portal_adjacency[portal]:
                    if p2 in self.vq and self._side_of(portal, p2) == side:
                        u, _v = self.system.connector[(portal, p2)]
                        vq_connectors.append(self._node_index(portal, u))
                vq_connectors.sort()
                # Unmark the westernmost connector; split at the rest.
                marks = vq_connectors[1:]
                self.marks[(portal, side)] = marks
                boundaries = [0] + marks + [len(portal.nodes) - 1]
                intervals: List[SubPortal] = []
                if marks:
                    for i in range(len(marks) + 1):
                        start = boundaries[0] if i == 0 else marks[i - 1]
                        end = (
                            marks[i] if i < len(marks) else len(portal.nodes) - 1
                        )
                        intervals.append(SubPortal(portal, side, i, start, end))
                else:
                    intervals.append(
                        SubPortal(portal, side, 0, 0, len(portal.nodes) - 1)
                    )
                sides[side] = intervals
            self.vertices_of[portal] = sides

    def _vertex_for_edge(self, p1: Portal, p2: Portal) -> SubPortal:
        """The (sub)portal vertex of ``p1`` owning the edge to ``p2``."""
        sides = self.vertices_of[p1]
        if p1 not in self.q_prime:
            return sides[None][0]
        side = self._side_of(p1, p2)
        u, _v = self.system.connector[(p1, p2)]
        idx = self._node_index(p1, u)
        intervals = sides[side]
        marks = self.marks[(p1, side)]
        # Boundary (marked) connectors are assigned eastward: the
        # interval that *starts* at the mark.
        for i, interval in enumerate(intervals):
            if i > 0 and idx == interval.start:
                return interval
            if interval.start <= idx <= interval.end:
                if idx == interval.end and idx in marks:
                    continue  # belongs to the next (eastward) interval
                return interval
        raise AssertionError("connector index outside all intervals")

    def build_regions(self) -> List[Region]:
        """Connected components of the split portal graph."""
        adjacency: Dict[SubPortal, List[SubPortal]] = {}
        for portal, sides in self.vertices_of.items():
            for vertex_list in sides.values():
                for vertex in vertex_list:
                    adjacency.setdefault(vertex, [])
        for p1 in self.system.portals:
            for p2 in self.system.portal_adjacency[p1]:
                if p1 >= p2:
                    continue
                v1 = self._vertex_for_edge(p1, p2)
                v2 = self._vertex_for_edge(p2, p1)
                adjacency[v1].append(v2)
                adjacency[v2].append(v1)

        seen: Set[SubPortal] = set()
        self.regions = []
        for start in adjacency:
            if start in seen:
                continue
            component = [start]
            seen.add(start)
            stack = [start]
            while stack:
                v = stack.pop()
                for w in adjacency[v]:
                    if w not in seen:
                        seen.add(w)
                        component.append(w)
                        stack.append(w)
            region = Region(vertices=component)
            boundary = region.boundary_portals()
            if len(boundary) > 2:
                raise AssertionError(
                    f"region intersects {len(boundary)} Q' portals; "
                    "Lemma 52 violated"
                )
            index = len(self.regions)
            self.regions.append(region)
            for v in component:
                self._region_of_vertex[v] = index
        return self.regions

    # ------------------------------------------------------------------
    # merge bookkeeping
    # ------------------------------------------------------------------
    def region_of_vertex(self, vertex: SubPortal) -> Region:
        """Current region owning a (sub)portal vertex."""
        return self.regions[self._region_of_vertex[vertex]]

    def side_vertices(self, portal: Portal, side: str) -> List[SubPortal]:
        """The subportal intervals of one side, west to east."""
        if portal not in self.q_prime:
            raise KeyError("only Q' portals have sides")
        return list(self.vertices_of[portal][side])

    def replace_regions(self, old: List[Region], merged: Region) -> None:
        """Install a merged region in place of the given ones."""
        old_ids = {id(r) for r in old}
        index = len(self.regions)
        self.regions.append(merged)
        for vertex, region_index in list(self._region_of_vertex.items()):
            if id(self.regions[region_index]) in old_ids:
                self._region_of_vertex[vertex] = index
