"""The line algorithm (Section 5.1, Lemma 40).

On a chain of amoebots the closest source of any amoebot is the nearest
source in one of the two directions, so it suffices to run PASC from
every source in both directions up to the next source: every non-source
amoebot reads its distance to the nearest source on its west and on its
east (where they exist) and points its parent at the closer one.  All
``2k`` PASC executions share their rounds: ``O(log n)`` total.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from repro.grid.coords import Node
from repro.pasc.chain import PascChainRun, chain_links_for_nodes
from repro.pasc.runner import run_pasc
from repro.sim.engine import CircuitEngine
from repro.spf.types import Forest

#: Channel pairs for the two directions of the line.
_EAST_CHANNELS = (0, 1)
_WEST_CHANNELS = (2, 3)


def line_forest(
    engine: CircuitEngine,
    chain: Sequence[Node],
    sources: Sequence[Node],
    section: str = "line",
) -> Forest:
    """Compute an S-shortest-path forest on a chain of amoebots.

    ``chain`` lists the amoebots in order (consecutive entries adjacent);
    ``sources`` must all lie on the chain.  Ties between two equidistant
    sources break toward the front of the chain (deterministic, so
    neighboring amoebots agree).
    """
    nodes = list(chain)
    if not nodes:
        raise ValueError("chain must be non-empty")
    index = {u: i for i, u in enumerate(nodes)}
    if len(index) != len(nodes):
        raise ValueError("chain visits an amoebot twice")
    for u, v in zip(nodes, nodes[1:]):
        if not u.is_adjacent(v):
            raise ValueError(f"chain entries {u}, {v} are not adjacent")
    source_set: Set[Node] = set(sources)
    if not source_set:
        raise ValueError("need at least one source")
    unknown = source_set.difference(index)
    if unknown:
        raise ValueError(f"sources not on the chain: {sorted(unknown)[:3]}")

    source_positions = sorted(index[s] for s in source_set)

    # Segments between consecutive sources (and the chain ends); PASC
    # runs from each source toward the next one in both directions.
    runs: List[PascChainRun] = []
    east_runs: Dict[int, PascChainRun] = {}  # keyed by segment start pos
    west_runs: Dict[int, PascChainRun] = {}
    for i, pos in enumerate(source_positions):
        east_end = (
            source_positions[i + 1]
            if i + 1 < len(source_positions)
            else len(nodes) - 1
        )
        if east_end > pos:
            seg = nodes[pos : east_end + 1]
            run = PascChainRun(
                [(u, "e") for u in seg],
                chain_links_for_nodes(seg, *_EAST_CHANNELS),
                tag=f"line_e{pos}",
            )
            runs.append(run)
            east_runs[pos] = run
        west_end = source_positions[i - 1] if i > 0 else 0
        if west_end < pos:
            seg = list(reversed(nodes[west_end : pos + 1]))
            run = PascChainRun(
                [(u, "w") for u in seg],
                chain_links_for_nodes(seg, *_WEST_CHANNELS),
                tag=f"line_w{pos}",
            )
            runs.append(run)
            west_runs[pos] = run

    if runs:
        run_pasc(engine, runs, section=section)

    # Each amoebot compares its two distances and points at the closer
    # source's direction (a purely local decision).
    dist_from_west: Dict[Node, int] = {}
    dist_from_east: Dict[Node, int] = {}
    for run in east_runs.values():
        for (u, _uid), value in run.values().items():
            dist_from_west[u] = value
    for run in west_runs.values():
        for (u, _uid), value in run.values().items():
            dist_from_east[u] = value
    engine.charge_local_round()

    parent: Dict[Node, Node] = {}
    for i, u in enumerate(nodes):
        if u in source_set:
            continue
        dw = dist_from_west.get(u)
        de = dist_from_east.get(u)
        if dw is not None and (de is None or dw <= de):
            parent[u] = nodes[i - 1]
        elif de is not None:
            parent[u] = nodes[i + 1]
        else:  # pragma: no cover - impossible with a non-empty source set
            raise AssertionError(f"{u} saw no source in either direction")
    return Forest(sources=source_set, parent=parent, members=set(nodes))
