"""The shortest path tree algorithm for a single source (Section 4).

Pipeline (Theorem 39, ``O(log l)`` rounds overall):

1. One beep round per axis marks the portals containing destinations.
2. For each of the three axes, the portal root-and-prune primitive roots
   the portal tree at the source's portal and prunes subtrees without
   destination portals (Lemma 33).
3. Every amoebot picks a *feasible parent* locally: neighbor ``v`` is
   feasible iff, for both axes not parallel to the edge ``(u, v)``,
   ``v``'s portal is the parent of ``u``'s portal (Equation 1 via
   Lemma 11).  Amoebots on source-destination shortest paths always find
   one (Lemma 38); others may not, or may form stray subtrees.
4. The chosen parent edges form a forest in which distances to the
   source strictly decrease along parents; a node-level root-and-prune
   on the source's component extracts the shortest path tree and prunes
   subtrees without destinations.  Components not containing the source
   hear no signals during that pass and drop out.

Scheduler contract: every step runs through the engine's round hooks
(``run_round_indexed`` for beep rounds, ``charge_local_round`` for pure
local recomputation), never the raw counter — so executing on an
event-driven :class:`~repro.sched.ActivationEngine` simulates one
activation epoch per round and the algorithm is correct under any
scheduler via round synchronization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.grid.coords import Node
from repro.grid.directions import Axis
from repro.grid.structure import AmoebotStructure
from repro.ett.tour import adjacency_from_edges
from repro.portals.portals import Portal, PortalSystem
from repro.portals.primitives import PortalScope, portal_root_and_prune
from repro.primitives.root_prune import root_and_prune
from repro.sim.engine import CircuitEngine


@dataclass
class SPTResult:
    """Output of the shortest path tree algorithm."""

    source: Node
    destinations: Set[Node]
    parent: Dict[Node, Node]
    members: Set[Node]
    #: Parent choices before the final pruning pass (Figure 5b); kept for
    #: figures and white-box tests.
    raw_parent: Dict[Node, Node] = field(default_factory=dict)

    def path_from(self, node: Node) -> List[Node]:
        """The tree path from ``node`` up to the source."""
        path = [node]
        while path[-1] != self.source:
            path.append(self.parent[path[-1]])
        return path


def _mark_destination_portals(
    engine: CircuitEngine,
    system: PortalSystem,
    destinations: Set[Node],
    scope: PortalScope,
) -> Set[Portal]:
    """One beep round: every destination beeps on its portal circuit."""
    layout = scope.portal_circuit_layout(engine, label="portal:dst")
    beeps = layout.compiled().index.indices(
        ((d, "portal:dst") for d in destinations), "beep on"
    )
    engine.run_round_indexed(layout, beeps, ())
    return {system.portal_of[d] for d in destinations}


def feasible_parents(
    structure: AmoebotStructure,
    systems: Dict[Axis, PortalSystem],
    portal_parents: Dict[Axis, Dict[Portal, Portal]],
    node: Node,
) -> List[Node]:
    """All feasible parents of ``node`` per Equation 1.

    The edge to neighbor ``v`` is parallel to exactly one axis, on which
    both endpoints share a portal; ``v`` is feasible iff on the two
    remaining axes the parent of ``node``'s portal is ``v``'s portal.
    """
    result = []
    for v in structure.neighbors(node):
        edge_axis = node.direction_to(v).axis
        ok = True
        for axis in edge_axis.others:
            parents = portal_parents[axis]
            pu = systems[axis].portal_of[node]
            pv = systems[axis].portal_of[v]
            if parents.get(pu) != pv:
                ok = False
                break
        if ok:
            result.append(v)
    return result


def shortest_path_tree(
    engine: CircuitEngine,
    structure: AmoebotStructure,
    source: Node,
    destinations: Iterable[Node],
    systems: Optional[Dict[Axis, PortalSystem]] = None,
    section: str = "spt",
) -> SPTResult:
    """Compute an ``({s}, D)``-shortest path forest (Theorem 39).

    ``systems`` may carry precomputed portal systems (the forest
    algorithm reuses them across many invocations on sub-structures).
    """
    dest_set = set(destinations)
    if not dest_set:
        raise ValueError("destination set must be non-empty")
    if source not in structure:
        raise ValueError("source must belong to the structure")
    missing = {d for d in dest_set if d not in structure}
    if missing:
        raise ValueError(f"destinations outside the structure: {sorted(missing)[:3]}")
    if systems is None:
        systems = {axis: PortalSystem(structure, axis) for axis in Axis}

    with engine.rounds.section(section):
        portal_parents: Dict[Axis, Dict[Portal, Portal]] = {}
        for axis in Axis:
            system = systems[axis]
            scope = PortalScope(system)
            q_portals = _mark_destination_portals(engine, system, dest_set, scope)
            # The source's portal must count as populated even without
            # destinations so the root is never pruned away.
            rp = portal_root_and_prune(
                engine,
                system,
                system.portal_of[source],
                q_portals | {system.portal_of[source]},
                scope=scope,
                section=f"{section}:portal_rp",
            )
            portal_parents[axis] = rp.parent

        # Local parent choice (one local round: no beeps involved),
        # evaluated over the grid index: Equation 1 becomes a handful
        # of integer array reads per (node, neighbor) pair.  Equivalent
        # to calling :func:`feasible_parents` per node and taking the
        # first hit — neighbor ids ascend in direction order, which is
        # exactly the ccw-from-East order ``structure.neighbors`` uses.
        grid = structure.grid_index()
        nbr = grid.nbr
        nodes_of = grid.nodes
        portal_idx = [systems[axis].portal_index_of_id for axis in Axis]
        parent_idx: List[List[int]] = []
        for axis in Axis:
            portals = systems[axis].portals
            position = {p: i for i, p in enumerate(portals)}
            row = [-1] * len(portals)
            for child, par in portal_parents[axis].items():
                row[position[child]] = position[par]
            parent_idx.append(row)
        raw_parent: Dict[Node, Node] = {}
        source_id = grid.id_of(source)
        for nid in grid.live_ids():
            if nid == source_id:
                continue
            base = nid * 6
            for d in range(6):
                vid = nbr[base + d]
                if vid < 0:
                    continue
                # The edge's axis value is d % 3; the two other axes
                # must both see v's portal as the parent of u's.
                edge_axis = d % 3
                feasible = True
                for axis_value in (0, 1, 2):
                    if axis_value == edge_axis:
                        continue
                    idx = portal_idx[axis_value]
                    if parent_idx[axis_value][idx[nid]] != idx[vid]:
                        feasible = False
                        break
                if feasible:
                    raw_parent[nodes_of[nid]] = nodes_of[vid]
                    break
        engine.charge_local_round()

        # Final pruning: root-and-prune on the source's parent-edge
        # component with Q = D ∪ {s} (the source must stay in V_Q even
        # when it is not a destination).
        component = _component_of(source, raw_parent)
        edges = [
            (u, p) for u, p in raw_parent.items() if u in component and p in component
        ]
        if edges:
            adjacency = adjacency_from_edges(edges)
        else:
            adjacency = {source: []}
        rp = root_and_prune(
            engine,
            source,
            adjacency,
            (dest_set & component) | {source},
            section=f"{section}:final_rp",
        )

        parent = {u: raw_parent[u] for u in rp.in_vq if u != source}
        members = set(rp.in_vq) | {source}

    unreached = dest_set - members
    if unreached:
        raise AssertionError(
            f"destinations missing from the shortest path tree: {sorted(unreached)[:3]}"
        )
    return SPTResult(
        source=source,
        destinations=dest_set,
        parent=parent,
        members=members,
        raw_parent=raw_parent,
    )


def _component_of(source: Node, parent: Dict[Node, Node]) -> Set[Node]:
    """Nodes connected to ``source`` in the undirected parent-edge graph."""
    adjacency: Dict[Node, List[Node]] = {}
    for u, p in parent.items():
        adjacency.setdefault(u, []).append(p)
        adjacency.setdefault(p, []).append(u)
    component = {source}
    stack = [source]
    while stack:
        u = stack.pop()
        for v in adjacency.get(u, []):
            if v not in component:
                component.add(v)
                stack.append(v)
    return component
