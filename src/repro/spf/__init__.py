"""The paper's shortest path algorithms (Sections 4 and 5).

* :func:`shortest_path_tree` — the (1, l)-SPF algorithm of Section 4:
  three portal root-and-prune passes orient the portal trees at the
  source, every amoebot picks a feasible parent locally via the distance
  decomposition (Lemma 11 / Equation 1), and a final node-level
  root-and-prune extracts the pruned shortest path tree.  ``O(log l)``
  rounds (Theorem 39); SPSP in ``O(1)`` and SSSP in ``O(log n)`` follow
  as special cases.
* :func:`line_forest` — the line algorithm of Section 5.1.
* :func:`merge_forests` — the merging algorithm of Section 5.2.
* :func:`propagate_forest` — the propagation algorithm of Section 5.3.
* :func:`shortest_path_forest` — the divide & conquer (k, l)-SPF
  algorithm of Section 5.4, ``O(log n log² k)`` rounds (Theorem 56).
* :func:`solve_spf` — the public entry point dispatching on ``k``.
"""

from repro.spf.spt import SPTResult, shortest_path_tree
from repro.spf.line import line_forest
from repro.spf.merge import merge_forests
from repro.spf.propagate import propagate_forest
from repro.spf.forest import shortest_path_forest
from repro.spf.api import solve_spf, SPFSolution

__all__ = [
    "SPTResult",
    "shortest_path_tree",
    "line_forest",
    "merge_forests",
    "propagate_forest",
    "shortest_path_forest",
    "solve_spf",
    "SPFSolution",
]
