"""Centralized reference versions of the Section 3 tree primitives."""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Set, Tuple

Adjacency = Dict[Hashable, List[Hashable]]


def _rooted_children(
    adjacency: Adjacency, root: Hashable
) -> Tuple[Dict[Hashable, Hashable], Dict[Hashable, List[Hashable]]]:
    """Parent and child maps of the tree rooted at ``root``."""
    parent: Dict[Hashable, Hashable] = {}
    children: Dict[Hashable, List[Hashable]] = {u: [] for u in adjacency}
    order = [root]
    seen = {root}
    for u in order:
        for v in adjacency[u]:
            if v not in seen:
                seen.add(v)
                parent[v] = u
                children[u].append(v)
                order.append(v)
    if len(seen) != len(adjacency):
        raise ValueError("adjacency is not a connected tree")
    return parent, children


def ref_subtree_counts(
    adjacency: Adjacency, root: Hashable, q: Iterable[Hashable]
) -> Dict[Hashable, int]:
    """``|subtree(u) ∩ Q|`` for every node (the quantity of Lemma 17)."""
    q_set = set(q)
    _parent, children = _rooted_children(adjacency, root)
    counts: Dict[Hashable, int] = {}

    def fill(u: Hashable) -> int:
        total = 1 if u in q_set else 0
        for c in children[u]:
            total += fill(c)
        counts[u] = total
        return total

    import sys

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, 4 * len(adjacency) + 100))
    try:
        fill(root)
    finally:
        sys.setrecursionlimit(old_limit)
    return counts


def ref_root_and_prune(
    adjacency: Adjacency, root: Hashable, q: Iterable[Hashable]
) -> Tuple[Set[Hashable], Dict[Hashable, Hashable]]:
    """``(V_Q, parents restricted to V_Q)`` — the outcome of Lemma 20."""
    counts = ref_subtree_counts(adjacency, root, q)
    parent, _children = _rooted_children(adjacency, root)
    in_vq = {u for u, c in counts.items() if c > 0}
    pruned_parent = {u: parent[u] for u in in_vq if u != root}
    return in_vq, pruned_parent


def ref_augmentation(
    adjacency: Adjacency, root: Hashable, q: Iterable[Hashable]
) -> Set[Hashable]:
    """The augmentation set ``A_Q`` (nodes of ``T_Q``-degree >= 3)."""
    q_set = set(q)
    in_vq, pruned_parent = ref_root_and_prune(adjacency, root, q_set)
    degree: Dict[Hashable, int] = {u: 0 for u in in_vq}
    for child, par in pruned_parent.items():
        degree[child] += 1
        degree[par] += 1
    return {u for u, d in degree.items() if d >= 3}


def ref_q_centroids(
    adjacency: Adjacency, q: Iterable[Hashable]
) -> Set[Hashable]:
    """The Q-centroid(s): component Q-counts after removal all <= |Q|/2."""
    q_set = set(q)
    q_size = len(q_set)
    result: Set[Hashable] = set()
    for u in q_set:
        worst = 0
        for start in adjacency[u]:
            component = {start}
            stack = [start]
            while stack:
                a = stack.pop()
                for b in adjacency[a]:
                    if b not in component and b != u:
                        component.add(b)
                        stack.append(b)
            worst = max(worst, len(component & q_set))
        if 2 * worst <= q_size:
            result.add(u)
    return result


def ref_centroid_decomposition_depths(
    adjacency: Adjacency, q_prime: Set[Hashable]
) -> Dict[Hashable, int]:
    """Depth of each Q'-node in *a* centroid decomposition tree.

    The strict primitive elects a specific centroid when two exist, so
    exact tree equality is not guaranteed across implementations; what
    is invariant — and what this reference computes for validation — is
    that depths are at most ``ceil(log2 |Q'|)`` and children's subtrees
    halve their Q'-count.  The returned depths come from always picking
    the smallest eligible centroid (deterministic for tests).
    """
    depths: Dict[Hashable, int] = {}

    def recurse(nodes: Set[Hashable], q: Set[Hashable], depth: int) -> None:
        if not q:
            return
        sub_adjacency = {u: [v for v in adjacency[u] if v in nodes] for u in nodes}
        centroids = ref_q_centroids(sub_adjacency, q)
        if not centroids:
            raise ValueError("Q' is not augmented: a recursion lacks a centroid")
        choice = min(centroids)
        depths[choice] = depth
        for start in sub_adjacency[choice]:
            component = {start}
            stack = [start]
            while stack:
                a = stack.pop()
                for b in sub_adjacency[a]:
                    if b not in component and b != choice:
                        component.add(b)
                        stack.append(b)
            recurse(component, (q - {choice}) & component, depth + 1)

    recurse(set(adjacency), set(q_prime), 0)
    return depths
