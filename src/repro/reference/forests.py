"""Centralized reference versions of the shortest path algorithms."""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, Sequence, Set

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure
from repro.spf.types import Forest


def ref_shortest_path_forest(
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Iterable[Node] | None = None,
) -> Forest:
    """A multi-source BFS forest, pruned to the destinations.

    Ties (equidistant sources) resolve by BFS queue order from sorted
    sources, which the forest checker explicitly does not compare — any
    closest source is acceptable.
    """
    source_list = sorted(set(sources))
    if not source_list:
        raise ValueError("need at least one source")
    dest_set = (
        set(structure.nodes) if destinations is None else set(destinations)
    )

    parent: Dict[Node, Node] = {}
    dist: Dict[Node, int] = {s: 0 for s in source_list}
    queue = deque(source_list)
    while queue:
        u = queue.popleft()
        for v in structure.neighbors(u):
            if v not in dist:
                dist[v] = dist[u] + 1
                parent[v] = u
                queue.append(v)

    keep: Set[Node] = set(source_list)
    for d in dest_set:
        cur = d
        while cur not in keep:
            keep.add(cur)
            cur = parent[cur]
    return Forest(
        sources=set(source_list),
        parent={u: p for u, p in parent.items() if u in keep},
        members=keep,
    )


def ref_shortest_path_tree(
    structure: AmoebotStructure,
    source: Node,
    destinations: Iterable[Node],
) -> Forest:
    """Single-source reference tree (k = 1 case of the forest)."""
    return ref_shortest_path_forest(structure, [source], destinations)


def ref_line_forest(chain: Sequence[Node], sources: Iterable[Node]) -> Forest:
    """Reference line algorithm: point at the closer source, ties west."""
    nodes = list(chain)
    index = {u: i for i, u in enumerate(nodes)}
    source_positions = sorted(index[s] for s in set(sources))
    if not source_positions:
        raise ValueError("need at least one source")
    parent: Dict[Node, Node] = {}
    for i, u in enumerate(nodes):
        if i in source_positions:
            continue
        west = max((p for p in source_positions if p < i), default=None)
        east = min((p for p in source_positions if p > i), default=None)
        dw = i - west if west is not None else None
        de = east - i if east is not None else None
        if dw is not None and (de is None or dw <= de):
            parent[u] = nodes[i - 1]
        else:
            parent[u] = nodes[i + 1]
    return Forest(
        sources={nodes[p] for p in source_positions},
        parent=parent,
        members=set(nodes),
    )
