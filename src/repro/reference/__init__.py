"""Fast reference implementations (the ``fast`` fidelity level).

Every strict, beep-level primitive in this repository has a counterpart
here implemented as a plain centralized graph computation.  They exist
for three reasons:

1. **cross-validation** — the test suite asserts strict == fast on
   randomized instances, so a wiring bug in the simulator cannot hide
   behind an algorithmic bug or vice versa;
2. **oracle duty** — checkers and benches need ground truth that does
   not share code with the system under test;
3. **speed** — experiments that only need *outputs* (not round counts)
   can run orders of magnitude faster.

None of these functions touch the circuit engine and none consume
rounds.
"""

from repro.reference.trees import (
    ref_subtree_counts,
    ref_root_and_prune,
    ref_q_centroids,
    ref_augmentation,
    ref_centroid_decomposition_depths,
)
from repro.reference.forests import (
    ref_shortest_path_tree,
    ref_shortest_path_forest,
    ref_line_forest,
)

__all__ = [
    "ref_subtree_counts",
    "ref_root_and_prune",
    "ref_q_centroids",
    "ref_augmentation",
    "ref_centroid_decomposition_depths",
    "ref_shortest_path_tree",
    "ref_shortest_path_forest",
    "ref_line_forest",
]
