"""repro — reproduction of "Polylogarithmic Time Algorithms for Shortest
Path Forests in Programmable Matter" (Padalkin & Scheideler, PODC 2024).

The package implements the geometric amoebot model with the
reconfigurable circuit extension, the PASC algorithm, the Euler tour
technique, tree and portal primitives, and the paper's shortest path
tree / shortest path forest algorithms, all executed as synchronous
beep rounds on a faithful circuit simulator.

Quickstart — the :mod:`repro.api` facade is the supported entry point
(one request object, one session, every solver path)::

    from repro import Session, SolveRequest

    session = Session()
    report = session.run(SolveRequest(shape="hexagon:4", k=1, l=5))
    print(report.rounds, "synchronous rounds")
    assert session.run(SolveRequest(shape="hexagon:4", k=1, l=5)).cached

The low-level functional surface remains::

    from repro import hexagon, solve_spf

    structure = hexagon(4)
    nodes = sorted(structure.nodes)
    solution = solve_spf(structure, sources=[nodes[0]], destinations=nodes[-5:])
    print(solution.rounds, "synchronous rounds")

Experiment campaigns (:mod:`repro.experiments`) scale this to grids of
scenarios executed in parallel with a persistent, content-addressed
result store::

    from repro import ResultStore, get_campaign, run_campaign

    report = run_campaign(get_campaign("forest"),
                          store=ResultStore("campaigns/forest.jsonl"),
                          workers=4)
    print(report.summary())  # re-running serves every trial from cache
"""

from repro.api import (
    RequestError,
    Session,
    SolveReport,
    SolveRequest,
)
from repro.backend import (
    backend_info,
    set_default_backend,
    use_backend,
)
from repro.dynamics import (
    DynamicSPF,
    EditBatch,
    EditScript,
    FaultInjector,
    generate_churn,
)
from repro.experiments import (
    CampaignRunner,
    CampaignSpec,
    ResultStore,
    ScenarioSpec,
    TrialSpec,
    campaign_names,
    get_campaign,
    run_campaign,
)
from repro.grid import (
    AmoebotStructure,
    Axis,
    Direction,
    Node,
    bfs_distances,
    grid_distance,
    structure_diameter,
)
from repro.metrics import RoundCounter
from repro.sim import CircuitEngine
from repro.spf import (
    SPFSolution,
    line_forest,
    merge_forests,
    propagate_forest,
    shortest_path_forest,
    shortest_path_tree,
    solve_spf,
)
from repro.spf.types import Forest
from repro.verify import assert_valid_forest, check_forest
from repro.workloads import (
    build_structure,
    comb,
    hexagon,
    line_structure,
    lollipop,
    parallelogram,
    random_hole_free,
    sample_sources_destinations,
    spread_nodes,
    staircase,
    triangle,
)

__version__ = "1.0.0"

__all__ = [
    "Session",
    "SolveRequest",
    "SolveReport",
    "RequestError",
    "backend_info",
    "set_default_backend",
    "use_backend",
    "AmoebotStructure",
    "Axis",
    "Direction",
    "Node",
    "bfs_distances",
    "grid_distance",
    "structure_diameter",
    "RoundCounter",
    "CircuitEngine",
    "Forest",
    "SPFSolution",
    "line_forest",
    "merge_forests",
    "propagate_forest",
    "shortest_path_forest",
    "shortest_path_tree",
    "solve_spf",
    "assert_valid_forest",
    "check_forest",
    "DynamicSPF",
    "EditBatch",
    "EditScript",
    "FaultInjector",
    "generate_churn",
    "CampaignRunner",
    "CampaignSpec",
    "ResultStore",
    "ScenarioSpec",
    "TrialSpec",
    "campaign_names",
    "get_campaign",
    "run_campaign",
    "build_structure",
    "comb",
    "hexagon",
    "line_structure",
    "lollipop",
    "parallelogram",
    "random_hole_free",
    "sample_sources_destinations",
    "spread_nodes",
    "staircase",
    "triangle",
    "__version__",
]
