"""Circuit statistics for layouts (engineering observability).

Summarizes a frozen :class:`~repro.sim.circuits.CircuitLayout`: how many
circuits it forms, their sizes, and how many channels each physical edge
actually uses.  Benches report these to substantiate the constant pin
budget claims (Remark 16), and debugging sessions use them to spot
accidentally merged or orphaned circuits.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Tuple

from repro.grid.coords import Node
from repro.sim.circuits import CircuitLayout


@dataclass
class LayoutStats:
    """Summary of one layout's circuits and channel usage."""

    partition_sets: int
    circuits: int
    largest_circuit: int
    singleton_circuits: int
    max_channels_per_edge: int

    def __str__(self) -> str:  # pragma: no cover - convenience
        return (
            f"{self.circuits} circuits over {self.partition_sets} partition "
            f"sets (largest {self.largest_circuit}, "
            f"{self.singleton_circuits} singletons, "
            f"<= {self.max_channels_per_edge} channels/edge)"
        )


def layout_stats(layout: CircuitLayout) -> LayoutStats:
    """Compute the statistics of a (possibly unfrozen) layout."""
    layout.freeze()
    circuits = layout.circuits()
    sizes = [len(c) for c in circuits]

    channel_use: Counter = Counter()
    for pin in layout.pin_assignments():  # simulator-side observability
        a, b = pin.node, pin.node.neighbor(pin.direction)
        edge: Tuple[Node, Node] = (a, b) if (a, b) <= (b, a) else (b, a)
        channel_use[(edge, pin.channel)] += 1
    per_edge: Counter = Counter()
    for (edge, _channel), _count in channel_use.items():
        per_edge[edge] += 1

    return LayoutStats(
        partition_sets=len(layout.partition_sets()),
        circuits=len(circuits),
        largest_circuit=max(sizes, default=0),
        singleton_circuits=sum(1 for s in sizes if s == 1),
        max_channels_per_edge=max(per_edge.values(), default=0),
    )
