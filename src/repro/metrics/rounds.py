"""Synchronous-round accounting.

The complexity measure of the reconfigurable circuit model is the number
of fully synchronous rounds (Section 1.2).  Every beep round executed by
the :class:`~repro.sim.engine.CircuitEngine` ticks a :class:`RoundCounter`
once; controller steps that the paper charges a constant number of rounds
for (e.g. "each portal establishes a circuit and sources beep") tick it
explicitly.  Sections attribute rounds to named phases so benches can
report per-primitive budgets.
"""

from __future__ import annotations

import contextlib
from collections import Counter
from typing import Callable, Dict, Iterator, List, Optional


class RoundCounter:
    """Counts synchronous rounds, with nested named sections.

    Besides rounds, the counter tracks *activations* — individual
    amoebot wake-ups.  Under the synchronous scheduler every amoebot
    activates exactly once per round, so engines set
    :attr:`activations_per_round` to the structure size and every tick
    charges ``rounds * n_active`` activations automatically (the
    invariant ``activations == n_active * rounds``).  Event-driven
    engines (:mod:`repro.sched`) set it to zero and charge the real
    per-epoch activation counts through :meth:`charge_activations`.
    """

    def __init__(self) -> None:
        self._total = 0
        self._activations = 0
        self._per_section: Counter = Counter()
        self._stack: List[str] = []
        #: Activations charged implicitly per ticked round.  Owned by
        #: whichever engine drives this counter.
        self.activations_per_round = 0
        #: Optional observer called after every tick with the new round
        #: total — the hook the service layer uses to stream round-by-
        #: round progress without touching the engines.  Must be cheap;
        #: exceptions propagate to the ticking engine.
        self.on_tick: Optional[Callable[[int], None]] = None

    @property
    def total(self) -> int:
        """Total number of synchronous rounds elapsed."""
        return self._total

    @property
    def activations(self) -> int:
        """Total number of amoebot activations elapsed."""
        return self._activations

    def tick(self, rounds: int = 1) -> None:
        """Advance the clock by ``rounds`` synchronous rounds."""
        if rounds < 0:
            raise ValueError("cannot tick a negative number of rounds")
        self._total += rounds
        self._activations += rounds * self.activations_per_round
        for name in self._stack:
            self._per_section[name] += rounds
        if self.on_tick is not None:
            self.on_tick(self._total)

    def charge_activations(self, count: int) -> None:
        """Charge ``count`` explicit activations (event-driven engines)."""
        if count < 0:
            raise ValueError("cannot charge a negative number of activations")
        self._activations += count

    @contextlib.contextmanager
    def section(self, name: str) -> Iterator[None]:
        """Attribute all rounds ticked inside the block to ``name``.

        Sections nest; an inner round is attributed to every enclosing
        section, so section totals are inclusive.
        """
        self._stack.append(name)
        try:
            yield
        finally:
            self._stack.pop()

    def section_total(self, name: str) -> int:
        """Rounds attributed to section ``name`` so far."""
        return self._per_section.get(name, 0)

    def breakdown(self) -> Dict[str, int]:
        """Mapping of section name to attributed rounds."""
        return dict(self._per_section)

    def reset(self) -> None:
        """Zero the clock, the activation count and all section totals."""
        self._total = 0
        self._activations = 0
        self._per_section.clear()

    def parallel(self) -> "ParallelGroup":
        """Model concurrent execution of operations on disjoint amoebots.

        The simulator executes such operations one after another for
        simplicity, but in the model they run in the *same* synchronous
        rounds (e.g. the base-case computations of all regions, or the
        merges along all same-depth centroid portals).  Branches entered
        through the returned group are each measured, rolled back, and
        the group finally charges the maximum branch cost once::

            with counter.parallel() as group:
                for region in regions:
                    with group.branch():
                        process(region)
        """
        return ParallelGroup(self)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"RoundCounter(total={self._total})"


class ParallelGroup:
    """Charges the maximum of its branches to the underlying counter.

    Only valid for branches operating on disjoint amoebot sets with
    disjoint circuits — the caller asserts that by using the group.
    """

    def __init__(self, counter: RoundCounter):
        self._counter = counter
        self._max_branch = 0
        self._max_act_branch = 0
        self._open = False

    def __enter__(self) -> "ParallelGroup":
        self._open = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._open = False
        if exc_type is None:
            # Charge rounds and activations independently: the final
            # tick must not auto-charge activations on top of the
            # rolled-back branch maxima.
            apr = self._counter.activations_per_round
            self._counter.activations_per_round = 0
            try:
                self._counter.tick(self._max_branch)
            finally:
                self._counter.activations_per_round = apr
            self._counter.charge_activations(self._max_act_branch)

    @contextlib.contextmanager
    def branch(self) -> Iterator[None]:
        """One concurrently-running operation."""
        if not self._open:
            raise RuntimeError("branch() outside the parallel group")
        start = self._counter._total
        act_start = self._counter._activations
        try:
            yield
        finally:
            used = self._counter._total - start
            used_act = self._counter._activations - act_start
            self._max_branch = max(self._max_branch, used)
            self._max_act_branch = max(self._max_act_branch, used_act)
            # Roll back: the final group tick charges the max once.  Keep
            # the per-section attribution of the branch (sections remain
            # informative even if they over-count parallel work).
            self._counter._total = start
            self._counter._activations = act_start
