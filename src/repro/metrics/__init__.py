"""Round accounting and experiment records."""

from repro.metrics.rounds import RoundCounter
from repro.metrics.records import ExperimentRecord, ResultTable
from repro.metrics.circuit_stats import LayoutStats, layout_stats

__all__ = [
    "RoundCounter",
    "ExperimentRecord",
    "ResultTable",
    "LayoutStats",
    "layout_stats",
]
