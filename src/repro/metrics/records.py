"""Lightweight experiment records and text tables for benches.

The benchmark harness prints, for every experiment of DESIGN.md's index,
a table of measured round counts next to the paper's asymptotic claim.
``ResultTable`` renders aligned monospace tables; ``ExperimentRecord``
carries one row worth of data plus fitted-model diagnostics.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence


@dataclass
class ExperimentRecord:
    """One measured configuration of an experiment."""

    experiment: str
    params: Dict[str, object]
    rounds: int
    extras: Dict[str, object] = field(default_factory=dict)

    def row(self) -> Dict[str, object]:
        """Flatten into a single mapping for table rendering."""
        merged: Dict[str, object] = {"experiment": self.experiment}
        merged.update(self.params)
        merged["rounds"] = self.rounds
        merged.update(self.extras)
        return merged


class ResultTable:
    """Accumulates rows and renders an aligned monospace table."""

    def __init__(self, title: str, columns: Sequence[str]):
        self.title = title
        self.columns = list(columns)
        self.rows: List[List[str]] = []

    def add(self, *values: object) -> None:
        """Append one row (one value per column)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append([_fmt(v) for v in values])

    def render(self) -> str:
        """Render the aligned monospace table."""
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
        lines.append(rule)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def log_fit_slope(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Least-squares slope of ``y`` against ``log2 x``.

    Benches use this to check that measured round counts grow
    logarithmically: for a true ``a*log2(x)+b`` relationship the slope
    recovers ``a``.  Returns ``None`` when underdetermined.
    """
    pairs = [(math.log2(x), y) for x, y in zip(xs, ys) if x > 0]
    if len(pairs) < 2:
        return None
    n = len(pairs)
    mean_x = sum(p[0] for p in pairs) / n
    mean_y = sum(p[1] for p in pairs) / n
    var = sum((p[0] - mean_x) ** 2 for p in pairs)
    if var == 0:
        return None
    cov = sum((p[0] - mean_x) * (p[1] - mean_y) for p in pairs)
    return cov / var


def growth_ratio(xs: Sequence[float], ys: Sequence[float]) -> Optional[float]:
    """Ratio ``y_last / y_first`` guarded against empty input."""
    if not ys:
        return None
    return ys[-1] / max(ys[0], 1e-12)
