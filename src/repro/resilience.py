"""Shared resilience primitives: deadlines, retries, circuit breaking.

Three small, dependency-free building blocks used across the service
stack (:mod:`repro.service`), the campaign runner
(:mod:`repro.experiments.runner`), and the :mod:`repro.api` session:

* :class:`CancellationToken` — cooperative cancellation with an
  optional deadline.  The token is *checked*, never enforced: the
  session checks it at round and phase boundaries (via its event
  stream), the campaign runner between trials.  A tripped check raises
  :class:`Cancelled` / :class:`DeadlineExceeded` carrying whatever
  partial progress the checker recorded, so a timed-out job can report
  how far it got instead of vanishing.

* :class:`RetryPolicy` — a frozen description of an exponential-backoff
  retry schedule with *deterministic seeded jitter*: two policies with
  equal fields produce byte-identical delay sequences, which keeps
  retry behavior reproducible in tests and chaos drills.  Retrying a
  solver request is always safe because requests are content-hashed —
  resubmitting the same key is idempotent by construction.

* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine bounding how hard a client hammers a dead daemon.  Purely
  clock-driven (injectable clock, trivially testable), thread-safe.

Everything here is deliberately free of imports from the rest of the
package so any layer may depend on it without cycles.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple, Type

__all__ = [
    "Cancelled",
    "DeadlineExceeded",
    "CancellationToken",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpen",
]


class Cancelled(RuntimeError):
    """Cooperative cancellation tripped (see :class:`CancellationToken`).

    :attr:`partial` carries the progress snapshot recorded by whoever
    called :meth:`CancellationToken.check` — for a solver run that is
    the rounds completed so far.
    """

    def __init__(self, message: str, partial: Optional[Dict[str, object]] = None):
        super().__init__(message)
        self.partial: Dict[str, object] = dict(partial or {})


class DeadlineExceeded(Cancelled):
    """A :class:`CancellationToken` deadline expired."""

    def __init__(
        self, deadline_s: float, partial: Optional[Dict[str, object]] = None
    ):
        super().__init__(f"deadline of {deadline_s:g}s exceeded", partial)
        self.deadline_s = deadline_s


class CancellationToken:
    """Cooperative cancellation handle with an optional deadline.

    The token never interrupts anything by itself — cancellation is a
    contract between the creator (who may :meth:`cancel` or set a
    ``deadline_s``) and the executor (who calls :meth:`check` at
    natural boundaries: after a structure build, per beep round, per
    churn batch, per campaign trial).  A check costs one monotonic
    clock read when a deadline is armed, nothing otherwise.
    """

    def __init__(
        self,
        deadline_s: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if deadline_s is not None and deadline_s <= 0:
            raise ValueError(
                f"deadline_s must be positive (or None for no deadline), "
                f"got {deadline_s}"
            )
        self._clock = clock
        self.deadline_s = deadline_s
        self.started = clock()
        self.expires_at = (
            self.started + deadline_s if deadline_s is not None else None
        )
        self._cancelled: Optional[str] = None

    def cancel(self, reason: str = "cancelled") -> None:
        """Trip the token; the next :meth:`check` raises :class:`Cancelled`."""
        self._cancelled = reason

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._cancelled is not None

    @property
    def expired(self) -> bool:
        """Whether the deadline (if any) has passed."""
        return self.expires_at is not None and self._clock() >= self.expires_at

    def remaining_s(self) -> Optional[float]:
        """Seconds left before the deadline, or ``None`` without one."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self._clock())

    def check(self, **progress: object) -> None:
        """Raise if cancelled or past deadline; otherwise a no-op.

        ``progress`` keyword arguments are attached to the raised
        exception's ``partial`` dict (callers usually pass nothing and
        let the catcher fill in a richer snapshot).
        """
        if self._cancelled is not None:
            raise Cancelled(self._cancelled, progress)
        if self.expired:
            raise DeadlineExceeded(self.deadline_s, progress)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    ``attempts`` is the *total* number of tries (1 = no retries).  Delay
    before retry *i* (0-based) is
    ``min(max_delay_s, base_delay_s * multiplier**i)`` scaled by a
    jitter factor drawn from ``Random(seed)`` — so the full delay
    sequence is a pure function of the policy's fields, and tests can
    assert it exactly.
    """

    attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.base_delay_s < 0:
            raise ValueError(
                f"base_delay_s must be >= 0, got {self.base_delay_s}"
            )
        if self.max_delay_s < self.base_delay_s:
            raise ValueError(
                f"max_delay_s ({self.max_delay_s}) must be >= base_delay_s "
                f"({self.base_delay_s})"
            )
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def delays(self) -> List[float]:
        """The deterministic backoff sequence (``attempts - 1`` entries)."""
        rng = random.Random(self.seed)
        out: List[float] = []
        for i in range(self.attempts - 1):
            delay = min(self.max_delay_s, self.base_delay_s * self.multiplier**i)
            if self.jitter:
                delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
            out.append(round(max(0.0, delay), 6))
        return out

    def call(
        self,
        fn: Callable[[], object],
        retry_on: Tuple[Type[BaseException], ...] = (Exception,),
        sleep: Callable[[float], None] = time.sleep,
        on_retry: Optional[Callable[[int, BaseException, float], None]] = None,
    ) -> object:
        """Run ``fn`` under this policy; re-raise after the last attempt.

        ``on_retry(attempt, exc, delay)`` (1-based attempt that just
        failed) observes each retry — the service client uses it to
        count retries into metrics.
        """
        delays: Iterable[Optional[float]] = [*self.delays(), None]
        for attempt, delay in enumerate(delays, start=1):
            try:
                return fn()
            except retry_on as exc:
                if delay is None:
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc, delay)
                sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover


class CircuitOpen(RuntimeError):
    """The breaker is open: calls are refused without hitting the target."""


class CircuitBreaker:
    """Closed → open → half-open breaker over any callable boundary.

    After ``failure_threshold`` consecutive failures the breaker opens
    and :meth:`allow` refuses everything for ``reset_timeout_s``; then
    one probe call is let through (half-open).  A successful probe
    closes the breaker, a failed one re-opens it for a fresh timeout.
    Thread-safe; the clock is injectable so tests advance time
    synthetically.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        reset_timeout_s: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if reset_timeout_s <= 0:
            raise ValueError(
                f"reset_timeout_s must be positive, got {reset_timeout_s}"
            )
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    @property
    def state(self) -> str:
        """Current state (``closed``/``open``/``half_open``)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = self.HALF_OPEN
            self._probing = False

    def allow(self) -> bool:
        """Whether a call may proceed right now (claims the probe slot)."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """Note a successful call: closes the breaker, clears failures."""
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        """Note a failed call; may trip the breaker open."""
        with self._lock:
            self._failures += 1
            if (
                self._state == self.HALF_OPEN
                or self._failures >= self.failure_threshold
            ):
                self._state = self.OPEN
                self._opened_at = self._clock()
                self._probing = False

    def call(self, fn: Callable[[], object]) -> object:
        """Run ``fn`` through the breaker (refuses with :class:`CircuitOpen`)."""
        if not self.allow():
            raise CircuitOpen(
                f"circuit open after {self._failures} consecutive failures "
                f"(retry in <= {self.reset_timeout_s:g}s)"
            )
        try:
            result = fn()
        except Exception:
            self.record_failure()
            raise
        self.record_success()
        return result
