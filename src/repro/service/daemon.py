"""The solver daemon core: one hot session, a queue, a worker pool.

:class:`SolverService` is the transport-free heart of ``repro serve``:
it owns a single long-lived :class:`~repro.api.Session` (hot structure
LRU, shared layout cache, persistent result store) and executes
submitted :class:`~repro.service.jobs.JobSpec` s on a pool of worker
threads.  The HTTP layer (:mod:`repro.service.http`) is a thin shell
over this class; tests and benchmarks drive it in-process.

Determinism: a job's randomness comes entirely from the seeds inside
its spec (``SolveRequest.seed``, per-trial campaign seeds), never from
which worker picks it up or in what order — so a job's result is a pure
function of its content key, which is what makes the store-backed cache
and killed-daemon resume sound.
"""

from __future__ import annotations

import logging
import queue
import threading
import time
import traceback
from typing import Dict, Iterator, List, Optional

from repro.api import Session, SolveReport
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshotter,
    Tracer,
    register_process_views,
    use_tracer,
)
from repro.resilience import Cancelled, CancellationToken
from repro.service.jobs import JobSpec

logger = logging.getLogger("repro.service.daemon")

_QUEUED, _RUNNING, _DONE, _FAILED, _CANCELLED, _TIMEOUT, _SHED = (
    "queued",
    "running",
    "done",
    "failed",
    "cancelled",
    "timeout",
    "shed",
)


class ServiceClosed(RuntimeError):
    """Raised by :meth:`SolverService.submit` after shutdown began."""


class ServiceOverloaded(RuntimeError):
    """The bounded job queue is full and the work has no warm result.

    Carries the shed :class:`Job` (terminal state ``shed``) and a
    ``retry_after_s`` hint derived from observed job latency — the HTTP
    layer maps this to ``429`` + ``Retry-After``.
    """

    def __init__(self, message: str, retry_after_s: int, job: "Job"):
        super().__init__(message)
        self.retry_after_s = retry_after_s
        self.job = job


class Job:
    """Runtime record of one submitted job: state, result, event stream.

    Events are JSON-ready dicts buffered in order; :meth:`events` is a
    blocking iterator over them (this is what the HTTP layer streams as
    chunked JSONL).  Terminal states are ``done``, ``failed``,
    ``cancelled``, ``timeout``, and ``shed``; :attr:`finished` is set
    exactly once, on entry to a terminal state.
    """

    def __init__(self, job_id: str, spec: JobSpec):
        self.id = job_id
        self.spec = spec
        self.key = spec.key()
        self.state = _QUEUED
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.submitted_s = time.time()
        self.started_s: Optional[float] = None
        self.elapsed_s: Optional[float] = None
        #: Cooperative cancellation handle, armed at submission when the
        #: spec carries a deadline (so queue wait counts against it).
        self.token: Optional[CancellationToken] = None
        self.finished = threading.Event()
        #: Span records of this job's execution (set on completion;
        #: served by ``GET /jobs/<id>/trace``).
        self.trace: Optional[List[dict]] = None
        self._events: List[dict] = []
        self._cond = threading.Condition()

    # -- event stream ---------------------------------------------------
    def emit(self, event: dict) -> None:
        """Append one progress event and wake blocked streamers."""
        with self._cond:
            self._events.append(dict(event))
            self._cond.notify_all()

    def events(
        self, start: int = 0, timeout: Optional[float] = None
    ) -> Iterator[dict]:
        """Yield events from ``start`` until the job reaches a terminal
        state and the buffer is drained.

        ``timeout`` bounds each *wait* for the next event (not the whole
        stream); on expiry the iterator stops early.
        """
        index = start
        while True:
            with self._cond:
                while index >= len(self._events):
                    if self.finished.is_set():
                        return
                    if not self._cond.wait(timeout=timeout):
                        return
                event = self._events[index]
            index += 1
            yield event

    def _finish(self, state: str) -> None:
        with self._cond:
            self.state = state
            if self.started_s is not None:
                self.elapsed_s = round(time.time() - self.started_s, 6)
            self.finished.set()
            self._cond.notify_all()

    # -- views ----------------------------------------------------------
    def snapshot(self) -> dict:
        """JSON-ready status view (the ``GET /jobs/<id>`` body)."""
        out = {
            "id": self.id,
            "key": self.key,
            "kind": self.spec.kind,
            "state": self.state,
            "events": len(self._events),
            "submitted_s": round(self.submitted_s, 3),
        }
        if self.elapsed_s is not None:
            out["elapsed_s"] = self.elapsed_s
        if self.error is not None:
            out["error"] = self.error
        return out


class SolverService:
    """Queue + worker pool over one shared :class:`~repro.api.Session`.

    Parameters
    ----------
    session:
        The hot session; built from ``store`` when omitted.
    store:
        Result store (or JSONL path) for the default session — this is
        what makes a restarted daemon resume finished work.
    workers:
        Worker thread count (jobs execute concurrently up to this).
    max_queue:
        Bound on queued-but-unstarted jobs.  At the bound, cold
        submissions are shed (:class:`ServiceOverloaded` → HTTP 429)
        while warm cache hits are still served inline — degraded, not
        down.  The bound is enforced by a depth counter rather than
        ``Queue(maxsize=...)`` so shutdown sentinels never block.
    metrics_interval:
        When positive and the result store is file-backed, a
        :class:`~repro.obs.MetricsSnapshotter` appends one registry
        snapshot per interval to ``metrics.jsonl`` next to the store.
    """

    def __init__(
        self,
        session: Optional[Session] = None,
        store: Optional[object] = None,
        workers: int = 2,
        max_queue: int = 64,
        metrics_interval: float = 0.0,
    ):
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.session = session if session is not None else Session(store=store)
        self.store = self.session.store
        self.workers = workers
        self.max_queue = max_queue
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._depth = 0  # queued-but-unstarted jobs, guarded by _lock
        self._jobs: "Dict[str, Job]" = {}
        self._seq = 0
        self._lock = threading.Lock()
        self._closed = False
        self.started_s = time.time()
        #: Per-service metrics registry: process-global stat views plus
        #: this service's own instruments.  Private per instance so
        #: parallel test daemons never share counter state.
        self.metrics = register_process_views(MetricsRegistry())
        self.metrics.register_view(
            "session", self.session.stats.to_dict, "repro_session"
        )
        self._jobs_total = self.metrics.counter(
            "repro_jobs_total", "Jobs reaching a terminal state, by state."
        )
        #: Bounded replacement for the historical unbounded per-job
        #: latency list: exponential buckets, fixed memory forever.
        self._job_latency = self.metrics.histogram(
            "repro_job_latency_seconds",
            "Completed job wall-clock latency, by kind and cache outcome.",
        )
        self._sheds_total = self.metrics.counter(
            "repro_sheds_total", "Cold submissions shed at a full queue."
        )
        self._timeouts_total = self.metrics.counter(
            "repro_timeouts_total", "Jobs cancelled at their deadline."
        )
        self._trial_retries_total = self.metrics.counter(
            "repro_trial_retries_total",
            "Campaign trials retried after a worker-process crash.",
        )
        self._quarantined_total = self.metrics.counter(
            "repro_quarantined_total",
            "Campaign trials quarantined after exhausting their retry budget.",
        )
        self._snapshotter: Optional[MetricsSnapshotter] = None
        store_path = getattr(self.store, "path", None)
        if metrics_interval > 0 and store_path is not None:
            self._snapshotter = MetricsSnapshotter(
                self.metrics,
                store_path.parent / "metrics.jsonl",
                interval_s=metrics_interval,
            ).start()
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"repro-worker-{i}", daemon=True
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        logger.info(
            "service started", extra={"workers": workers, "store": str(store_path)}
        )

    # ------------------------------------------------------------------
    # submission & queries
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> Job:
        """Queue one job; returns its :class:`Job` immediately.

        Job ids are ``<key12>-<seq>``: the content-hash prefix makes
        identical work visibly identical across submissions, the
        sequence number keeps ids unique when the same spec is
        submitted twice.

        Backpressure: with :attr:`max_queue` jobs already waiting, a
        submission whose result is warm in the store is served inline
        (the degraded mode keeps cache hits cheap and available), and
        anything cold is shed — the job finishes in state ``shed`` and
        :class:`ServiceOverloaded` tells the caller when to retry.
        """
        if not isinstance(spec, JobSpec):
            raise TypeError(f"submit() takes a JobSpec, got {type(spec).__name__}")
        with self._lock:
            if self._closed:
                raise ServiceClosed("service is shutting down")
            self._seq += 1
            job = Job(f"{spec.key()[:12]}-{self._seq}", spec)
            self._jobs[job.id] = job
            full = self._depth >= self.max_queue
            if not full:
                self._depth += 1
        if full:
            warm = self._serve_warm(job)
            if warm is not None:
                return warm
            retry_after = self._retry_after_s()
            job.error = (
                f"queue full ({self.max_queue} jobs waiting); "
                f"retry in ~{retry_after}s"
            )
            job.emit(
                {"event": "shed", "id": job.id, "retry_after_s": retry_after}
            )
            job._finish(_SHED)
            self._jobs_total.inc(state=_SHED)
            self._sheds_total.inc()
            logger.warning(
                "job shed",
                extra={"job": job.id, "kind": spec.kind, "retry_after_s": retry_after},
            )
            raise ServiceOverloaded(job.error, retry_after, job)
        deadline = spec.effective_deadline_s
        if deadline is not None:
            job.token = CancellationToken(deadline_s=deadline)
        job.emit({"event": "queued", "id": job.id, "key": job.key})
        logger.info(
            "job accepted",
            extra={"job": job.id, "kind": spec.kind, "key": job.key},
        )
        self._queue.put(job)
        return job

    def _serve_warm(self, job: Job) -> Optional[Job]:
        """Serve a cache hit inline on the caller's thread, or ``None``.

        Used only when the queue is full: a warm result costs one store
        lookup, so degraded mode answers it directly from the record
        instead of shedding — the cache-hit path must survive overload.
        """
        spec = job.spec
        if spec.request is None or spec.fresh:
            return None
        try:
            record = self.store.get(job.key)
        except Exception:  # noqa: BLE001 - a flaky store is a cache miss
            return None
        if record is None or record.get("record") != SolveReport.RECORD:
            return None
        job.state = _RUNNING
        job.started_s = time.time()
        result = dict(record)
        result["cached"] = True
        job.result = result
        job.emit({"event": "cached", "key": job.key, "rounds": record.get("rounds")})
        job._finish(_DONE)
        if job.elapsed_s is not None:
            self._job_latency.observe(
                job.elapsed_s, kind=spec.kind, cached="true"
            )
        self._jobs_total.inc(state=_DONE)
        return job

    def _retry_after_s(self) -> int:
        """Retry hint for shed callers: observed p50 scaled by backlog."""
        p50 = 0.0
        if self._job_latency.total_count():
            p50 = self._job_latency.quantile(0.50) or 0.0
        base = p50 if p50 > 0 else 1.0
        estimate = base * max(1.0, self._depth / max(1, self.workers))
        return int(min(60, max(1, round(estimate))))

    def health(self) -> dict:
        """Load-aware health: ``ok`` | ``degraded`` | ``overloaded``.

        ``degraded`` begins at half queue depth (cold work still
        accepted, but latency is climbing); ``overloaded`` means cold
        submissions are being shed and only warm hits are served.  The
        boolean ``ok`` stays true while cold work is accepted.
        """
        with self._lock:
            depth = self._depth
            closed = self._closed
        if closed or depth >= self.max_queue:
            status = "overloaded"
        elif depth * 2 >= self.max_queue:
            status = "degraded"
        else:
            status = "ok"
        return {
            "ok": status != "overloaded",
            "status": status,
            "queue_depth": depth,
            "queue_limit": self.max_queue,
            "workers": self.workers,
        }

    def queue_position(self, job_id: str) -> Optional[int]:
        """Queued jobs ahead of this one (``None`` once it leaves the queue)."""
        with self._lock:
            ahead = 0
            for jid, other in self._jobs.items():
                if jid == job_id:
                    return ahead if other.state == _QUEUED else None
                if other.state == _QUEUED:
                    ahead += 1
        raise KeyError(job_id)

    def job(self, job_id: str) -> Job:
        """The job with this id (raises ``KeyError`` if unknown)."""
        with self._lock:
            return self._jobs[job_id]

    def jobs(self) -> List[dict]:
        """Snapshots of every known job, in submission order."""
        with self._lock:
            return [job.snapshot() for job in self._jobs.values()]

    def wait(self, job_id: str, timeout: Optional[float] = None) -> Job:
        """Block until the job reaches a terminal state (or timeout)."""
        job = self.job(job_id)
        job.finished.wait(timeout=timeout)
        return job

    def stats(self) -> dict:
        """JSON-ready service health: jobs, caches, latencies, backend.

        Every sub-document is pulled through the metrics registry's
        views (the single collection path ``/metrics`` also renders),
        so ``/stats`` and the Prometheus exposition can never drift
        apart.  The latency summary is derived from the bounded
        histogram — no per-job samples are retained.
        """
        with self._lock:
            states: Dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        views = self.metrics.views_dict()
        health = self.health()
        return {
            "uptime_s": round(time.time() - self.started_s, 3),
            "workers": self.workers,
            "status": health["status"],
            "queue": {
                "depth": health["queue_depth"],
                "limit": health["queue_limit"],
            },
            "jobs": states,
            "session": views["session"],
            "store": {"records": len(self.store)},
            "layout_stats": views["layout_stats"],
            "grid_stats": views["grid_stats"],
            "backend": views["backend"],
            "latency": self._latency_summary(),
        }

    def _latency_summary(self) -> dict:
        """p50/p99 over completed jobs (histogram-derived), by outcome."""
        hist = self._job_latency
        out: dict = {"completed": hist.total_count()}
        if out["completed"]:
            out["p50_s"] = hist.quantile(0.50)
            out["p99_s"] = hist.quantile(0.99)
        warm = hist.count(cached="true")
        cold = hist.count(cached="false")
        if warm:
            out["warm"] = {"count": warm, "p50_s": hist.quantile(0.50, cached="true")}
        if cold:
            out["cold"] = {"count": cold, "p50_s": hist.quantile(0.50, cached="false")}
        return out

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:  # shutdown sentinel
                return
            with self._lock:
                self._depth -= 1
            if job.finished.is_set():  # cancelled while queued
                continue
            if job.token is not None and (
                job.token.cancelled or job.token.expired
            ):
                # The deadline elapsed while the job sat in the queue:
                # time it out without charging a worker at all.
                job.started_s = time.time()
                self._timeout(job, Cancelled("deadline expired in queue"))
                continue
            job.state = _RUNNING
            job.started_s = time.time()
            job.emit({"event": "running", "id": job.id})
            logger.info(
                "job started",
                extra={"job": job.id, "kind": job.spec.kind, "key": job.key},
            )
            tracer = Tracer()
            try:
                with use_tracer(tracer):
                    if job.spec.request is not None:
                        report = self.session.run(
                            job.spec.request,
                            resume=not job.spec.fresh,
                            on_event=job.emit,
                            token=job.token,
                        )
                        job.result = report.to_dict()
                        cached = report.cached
                    else:
                        job.result = self._run_campaign(job)
                        cached = False
                job.trace = tracer.records()
                job._finish(_DONE)
                if job.elapsed_s is not None:
                    self._job_latency.observe(
                        job.elapsed_s,
                        kind=job.spec.kind,
                        cached="true" if cached else "false",
                    )
                self._jobs_total.inc(state=_DONE)
                logger.info(
                    "job finished",
                    extra={
                        "job": job.id,
                        "kind": job.spec.kind,
                        "latency_s": job.elapsed_s,
                        "cached": cached,
                    },
                )
            except Cancelled as exc:
                job.trace = tracer.records()
                self._timeout(job, exc)
            except Exception as exc:  # noqa: BLE001 - jobs must not kill workers
                job.error = f"{type(exc).__name__}: {exc}"
                job.trace = tracer.records()
                job.emit(
                    {
                        "event": "error",
                        "id": job.id,
                        "error": job.error,
                        "traceback": traceback.format_exc(limit=8),
                    }
                )
                job._finish(_FAILED)
                self._jobs_total.inc(state=_FAILED)
                logger.error(
                    "job failed",
                    extra={"job": job.id, "kind": job.spec.kind, "error": job.error},
                )

    def _timeout(self, job: Job, exc: Cancelled) -> None:
        """Finish ``job`` in state ``timeout``, keeping partial progress."""
        job.error = f"{type(exc).__name__}: {exc}"
        job.result = {
            "record": "timeout",
            "key": job.key,
            "deadline_s": job.spec.effective_deadline_s,
            "partial": dict(exc.partial),
        }
        job.emit(
            {
                "event": "timeout",
                "id": job.id,
                "error": job.error,
                "partial": dict(exc.partial),
            }
        )
        job._finish(_TIMEOUT)
        self._jobs_total.inc(state=_TIMEOUT)
        self._timeouts_total.inc()
        logger.warning(
            "job timed out",
            extra={
                "job": job.id,
                "kind": job.spec.kind,
                "deadline_s": job.spec.effective_deadline_s,
            },
        )

    def _run_campaign(self, job: Job) -> dict:
        """Execute a campaign job against the shared result store."""
        from repro.experiments import (
            CampaignRunner,
            CampaignSpec,
            get_campaign,
        )

        spec = job.spec.campaign
        campaign = (
            get_campaign(spec)
            if isinstance(spec, str)
            else CampaignSpec.from_dict(spec)
        )

        def progress(trial, result, done, total):
            job.emit(
                {
                    "event": "trial",
                    "key": trial.key(),
                    "done": done,
                    "total": total,
                    "rounds": result.rounds,
                }
            )

        runner = CampaignRunner(store=self.store, workers=job.spec.workers)
        report = runner.run(
            campaign,
            resume=not job.spec.fresh,
            progress=progress,
            token=job.token,
        )
        if report.retries:
            self._trial_retries_total.inc(amount=report.retries)
        if report.quarantined:
            self._quarantined_total.inc(amount=len(report.quarantined))
        return {
            "record": "campaign-report",
            "campaign": report.campaign,
            "trials": report.total,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "retries": report.retries,
            "quarantined": len(report.quarantined),
            "elapsed_s": report.elapsed_s,
        }

    # ------------------------------------------------------------------
    # shutdown
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True) -> dict:
        """Stop accepting work, cancel queued jobs, drain the pool.

        In-flight jobs run to completion (worker threads cannot be
        interrupted mid-solve and a half-written result is worse than a
        late one); queued-but-unstarted jobs flip to ``cancelled``.
        With ``wait=True`` blocks until every worker has exited.
        Idempotent.  Returns ``{"cancelled": <count>}``.
        """
        with self._lock:
            already = self._closed
            self._closed = True
            pending = [j for j in self._jobs.values() if j.state == _QUEUED]
        cancelled = 0
        if not already:
            for job in pending:
                job.emit({"event": "cancelled", "id": job.id})
                job._finish(_CANCELLED)
                self._jobs_total.inc(state=_CANCELLED)
                cancelled += 1
            for _ in self._threads:
                self._queue.put(None)
        if wait:
            for thread in self._threads:
                thread.join()
        if not already:
            if self._snapshotter is not None:
                self._snapshotter.stop()
            logger.info("service stopped", extra={"cancelled": cancelled})
        return {"cancelled": cancelled}
