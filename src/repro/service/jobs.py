"""Jobs as data: the serializable envelope the daemon queues.

A :class:`JobSpec` wraps exactly one of

* a :class:`repro.api.SolveRequest` (kinds ``solve``/``route``/``churn``),
  executed by the daemon's shared :class:`~repro.api.Session`; or
* a *campaign* — a built-in name or an inline
  :class:`~repro.experiments.spec.CampaignSpec` mapping — executed by a
  :class:`~repro.experiments.runner.CampaignRunner` against the same
  result store.

Like every other unit of work in this repository, a job's identity is
its content hash (:meth:`JobSpec.key`): solve-family jobs share their
request's key, so a job submitted over HTTP, a ``repro solve`` CLI
invocation, and a library ``session.run(...)`` all hit the same cached
record.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Union

from repro.api import RequestError, SolveRequest
from repro.experiments.spec import content_key


@dataclass(frozen=True)
class JobSpec:
    """One daemon job: a solve-family request or a campaign.

    ``fresh=True`` bypasses the result-store cache (the job's identity
    is unchanged — ``fresh`` asks for recomputation of the same work).
    ``workers`` is the campaign fan-out (ignored for requests).
    ``deadline_s`` bounds wall-clock execution: a job still running
    past its deadline is cooperatively cancelled and finishes in state
    ``timeout`` (``None`` = inherit the request's own ``deadline_s``,
    or run unbounded).  Like the request-level field it never enters
    :meth:`key` — impatience does not change what the work is.
    """

    request: Optional[SolveRequest] = None
    campaign: Optional[Union[str, Mapping]] = None
    workers: int = 1
    fresh: bool = False
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.request is None) == (self.campaign is None):
            raise RequestError(
                "a job is exactly one of 'request' or 'campaign'"
            )
        if self.request is not None and not isinstance(self.request, SolveRequest):
            raise RequestError(
                f"job request must be a SolveRequest, got "
                f"{type(self.request).__name__}"
            )
        if self.campaign is not None and not isinstance(
            self.campaign, (str, Mapping)
        ):
            raise RequestError(
                "job campaign must be a built-in name or a campaign mapping"
            )
        if self.workers < 1:
            raise RequestError(f"workers must be positive, got {self.workers}")
        if self.deadline_s is not None:
            if not isinstance(self.deadline_s, (int, float)) or isinstance(
                self.deadline_s, bool
            ):
                raise RequestError(
                    f"deadline_s must be a number, got {self.deadline_s!r}"
                )
            if self.deadline_s <= 0:
                raise RequestError(
                    f"deadline_s must be positive, got {self.deadline_s}"
                )

    @property
    def kind(self) -> str:
        """``solve``/``route``/``churn`` for requests, else ``campaign``."""
        return self.request.kind if self.request is not None else "campaign"

    def key(self) -> str:
        """Content hash: the request's own key, or the campaign config's."""
        if self.request is not None:
            return self.request.key()
        spec = (
            self.campaign
            if isinstance(self.campaign, str)
            else dict(self.campaign)
        )
        return content_key({"job": "campaign", "campaign": spec})

    @property
    def effective_deadline_s(self) -> Optional[float]:
        """The deadline that governs execution (job-level wins)."""
        if self.deadline_s is not None:
            return self.deadline_s
        if self.request is not None and self.request.deadline_s:
            return self.request.deadline_s
        return None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        out: Dict[str, object] = {"fresh": self.fresh}
        if self.request is not None:
            out["request"] = self.request.to_dict()
        else:
            out["campaign"] = (
                self.campaign
                if isinstance(self.campaign, str)
                else dict(self.campaign)
            )
            out["workers"] = self.workers
        if self.deadline_s is not None:
            out["deadline_s"] = self.deadline_s
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobSpec":
        """Parse and validate a job mapping (an HTTP POST body)."""
        if not isinstance(data, Mapping):
            raise RequestError(f"job must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {
            "request", "campaign", "workers", "fresh", "deadline_s"
        }
        if unknown:
            raise RequestError(f"unknown job fields: {sorted(unknown)}")
        request = data.get("request")
        if request is not None:
            request = SolveRequest.from_dict(request)
        workers = data.get("workers", 1)
        if not isinstance(workers, int) or isinstance(workers, bool):
            raise RequestError(f"workers must be an int, got {workers!r}")
        fresh = data.get("fresh", False)
        if not isinstance(fresh, bool):
            raise RequestError(f"fresh must be a bool, got {fresh!r}")
        return cls(
            request=request,
            campaign=data.get("campaign"),
            workers=workers,
            fresh=fresh,
            deadline_s=data.get("deadline_s"),
        )
