"""Solver-as-a-service: a persistent daemon over the ``repro.api`` facade.

``repro serve`` keeps one long-lived :class:`repro.api.Session` — hot
:class:`~repro.grid.compiled.GridIndex` es, the shared
:class:`~repro.sim.circuits.LayoutCache`, compiled layouts — across
requests, accepts jobs-as-data over HTTP (stdlib ``http.server``
threads, zero new dependencies), executes them on a worker pool, streams
round-by-round progress as chunked JSONL, and persists every result
through the content-hash :class:`~repro.experiments.store.ResultStore`,
so a killed-and-restarted daemon serves finished work from its log
instead of recomputing it.

Layers (each importable on its own):

* :mod:`repro.service.jobs` — :class:`JobSpec`, the serializable job
  envelope (a :class:`~repro.api.SolveRequest` or a campaign), and
  :class:`Job`, the runtime record with its event stream.
* :mod:`repro.service.daemon` — :class:`SolverService`, the queue +
  worker pool + registry (usable in-process, no HTTP required).
* :mod:`repro.service.http` — the HTTP surface
  (:class:`ServiceHTTPServer`, :func:`serve`).
* :mod:`repro.service.client` — :class:`ServiceClient`, a stdlib
  client used by the CI smoke, benches, and tests.
"""

from repro.service.client import ServiceClient, ServiceError, TransportError
from repro.service.daemon import (
    Job,
    ServiceClosed,
    ServiceOverloaded,
    SolverService,
)
from repro.service.http import ServiceHTTPServer, serve
from repro.service.jobs import JobSpec

__all__ = [
    "Job",
    "JobSpec",
    "ServiceClient",
    "ServiceClosed",
    "ServiceError",
    "ServiceHTTPServer",
    "ServiceOverloaded",
    "SolverService",
    "TransportError",
    "serve",
]
