"""Stdlib client for the solver daemon.

:class:`ServiceClient` wraps :mod:`http.client` (which transparently
de-chunks ``Transfer-Encoding: chunked``, so the JSONL stream surfaces
as plain lines).  It is what the CLI smoke, the service benchmark, and
the tests drive — and a reasonable template for user code, though any
HTTP client works against the daemon.

Quickstart::

    from repro import SolveRequest
    from repro.service import JobSpec, ServiceClient

    client = ServiceClient("127.0.0.1", 8100)
    job = client.submit(JobSpec(request=SolveRequest(shape="hexagon:6")))
    for event in client.stream(job["id"]):
        print(event)                      # queued/running/round/.../done
    result = client.result(job["id"])     # the SolveReport dict
"""

from __future__ import annotations

import http.client
import json
from typing import Dict, Iterator, Optional, Union

from repro.service.jobs import JobSpec


class ServiceError(RuntimeError):
    """A non-2xx daemon response (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Thin blocking client; one short-lived connection per call.

    Streaming holds its own dedicated connection open for the life of
    the job, so a client can stream one job while submitting others.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 8100,
                 timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing -------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout
        )

    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        conn = self._connect()
        try:
            payload = json.dumps(body).encode("utf-8") if body is not None else None
            headers = {"Content-Type": "application/json"} if payload else {}
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = json.loads(response.read().decode("utf-8"))
            if response.status >= 400:
                raise ServiceError(
                    response.status, data.get("error", "unknown error")
                )
            return data
        finally:
            conn.close()

    # -- API ------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text body (not JSON)."""
        conn = self._connect()
        try:
            conn.request("GET", "/metrics")
            response = conn.getresponse()
            body = response.read().decode("utf-8")
            if response.status >= 400:
                raise ServiceError(response.status, body.strip())
            return body
        finally:
            conn.close()

    def trace(self, job_id: str) -> dict:
        """``GET /jobs/<id>/trace`` — the job's span records."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def submit(self, spec: Union[JobSpec, Dict]) -> dict:
        """``POST /jobs`` — returns the job snapshot (with its ``id``)."""
        body = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        return self._request("POST", "/jobs", body=body)

    def jobs(self) -> list:
        """``GET /jobs`` — snapshots of every known job."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — one snapshot."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """``GET /jobs/<id>/result`` — block until terminal, return it.

        ``timeout`` bounds the *server-side* wait; the raised
        :class:`ServiceError` has ``status == 408`` on expiry.
        """
        path = f"/jobs/{job_id}/result"
        if timeout is not None:
            path += f"?timeout={timeout}"
        return self._request("GET", path)

    def stream(self, job_id: str) -> Iterator[dict]:
        """``GET /jobs/<id>/stream`` — yield progress events as dicts.

        Ends after the terminal ``{"event": "end", "state": ...}`` line.
        """
        conn = self._connect()
        try:
            conn.request("GET", f"/jobs/{job_id}/stream")
            response = conn.getresponse()
            if response.status >= 400:
                data = json.loads(response.read().decode("utf-8"))
                raise ServiceError(
                    response.status, data.get("error", "unknown error")
                )
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            conn.close()

    def run(self, spec: Union[JobSpec, Dict],
            timeout: Optional[float] = None) -> dict:
        """Submit and block for the result (submit + ``/result``)."""
        job = self.submit(spec)
        return self.result(job["id"], timeout=timeout)

    def shutdown(self) -> dict:
        """``POST /shutdown`` — ask the daemon to stop gracefully."""
        return self._request("POST", "/shutdown")
