"""Stdlib client for the solver daemon.

:class:`ServiceClient` wraps :mod:`http.client` (which transparently
de-chunks ``Transfer-Encoding: chunked``, so the JSONL stream surfaces
as plain lines).  It is what the CLI smoke, the service benchmark, and
the tests drive — and a reasonable template for user code, though any
HTTP client works against the daemon.

Failure surface: every transport-level problem (refused connection,
daemon death mid-response, idle-read timeout, truncated stream) raises
:class:`TransportError` — a :class:`ServiceError` with ``status == 0``
— so callers catch one exception family whether the daemon answered
with an error or never answered at all.  Connect and idle-read
timeouts are split: connecting to a dead host fails fast while a
long-running stream may stay silent for much longer between events.

Resilience is opt-in: pass a :class:`~repro.resilience.RetryPolicy`
and idempotent requests (submission is content-hashed, so resubmitting
is safe by construction) are retried on transport errors and on
``429``/``503`` — honoring the daemon's ``Retry-After`` hint — and a
:class:`~repro.resilience.CircuitBreaker` stops a client from hammering
a daemon that keeps failing.

Quickstart::

    from repro import SolveRequest
    from repro.service import JobSpec, ServiceClient

    client = ServiceClient("127.0.0.1", 8100)
    job = client.submit(JobSpec(request=SolveRequest(shape="hexagon:6")))
    for event in client.stream(job["id"]):
        print(event)                      # queued/running/round/.../done
    result = client.result(job["id"])     # the SolveReport dict
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from typing import Dict, Iterator, Optional, Union

from repro.resilience import CircuitBreaker, CircuitOpen, RetryPolicy
from repro.service.jobs import JobSpec

#: Statuses worth retrying: shed load (the daemon said when to come
#: back) and transient unavailability.
RETRYABLE_STATUSES = (429, 503)


class ServiceError(RuntimeError):
    """A non-2xx daemon response (carries the HTTP status and body)."""

    def __init__(self, status: int, message: str, payload: Optional[dict] = None):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload if payload is not None else {}


class TransportError(ServiceError):
    """The daemon never (fully) answered: dead socket, timeout, truncation.

    ``status`` is 0 — there was no HTTP response to take one from.
    """

    def __init__(self, message: str):
        super().__init__(0, message)


class ServiceClient:
    """Thin blocking client; one short-lived connection per call.

    Streaming holds its own dedicated connection open for the life of
    the job, so a client can stream one job while submitting others.

    Parameters
    ----------
    timeout:
        Default for both timeouts below (back-compat single knob).
    connect_timeout:
        Bound on establishing the TCP connection.
    read_timeout:
        Bound on each *wait* for response bytes (per stream line, per
        response) — not the whole exchange.
    retry:
        When set, idempotent requests are retried per the policy on
        :class:`TransportError` and ``429``/``503`` responses.
    breaker:
        When set, every attempt passes through the circuit breaker
        (transport errors and 5xx count as failures) and a tripped
        breaker raises :class:`~repro.resilience.CircuitOpen` without
        touching the network.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8100,
        timeout: Optional[float] = 60.0,
        connect_timeout: Optional[float] = None,
        read_timeout: Optional[float] = None,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.connect_timeout = (
            connect_timeout if connect_timeout is not None else timeout
        )
        self.read_timeout = read_timeout if read_timeout is not None else timeout
        self.retry = retry
        self.breaker = breaker

    # -- plumbing -------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(
            self.host, self.port, timeout=self.connect_timeout
        )

    def _arm_read_timeout(self, conn: http.client.HTTPConnection) -> None:
        # The connection was created with the connect timeout; once the
        # request is on the wire, every further read is an idle wait.
        if conn.sock is not None:
            conn.sock.settimeout(self.read_timeout)

    def _attempt(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> dict:
        """One request/response cycle; all transport faults typed."""
        conn = self._connect()
        try:
            payload = (
                json.dumps(body).encode("utf-8") if body is not None else None
            )
            headers = {"Content-Type": "application/json"} if payload else {}
            try:
                conn.request(method, path, body=payload, headers=headers)
                self._arm_read_timeout(conn)
                response = conn.getresponse()
                raw = response.read()
            except socket.timeout as exc:
                raise TransportError(
                    f"no response from {self.host}:{self.port} within "
                    f"{self.read_timeout}s (idle-read timeout)"
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                raise TransportError(
                    f"{method} {path} failed: {type(exc).__name__}: {exc}"
                ) from exc
            try:
                data = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise TransportError(
                    f"{method} {path}: truncated or non-JSON response "
                    f"({len(raw)} bytes)"
                ) from exc
            if response.status >= 400:
                raise ServiceError(
                    response.status,
                    data.get("error", "unknown error")
                    if isinstance(data, dict)
                    else "unknown error",
                    payload=data if isinstance(data, dict) else None,
                )
            return data
        finally:
            conn.close()

    def _guarded(self, method: str, path: str, body: Optional[dict]) -> dict:
        """One attempt through the circuit breaker (when configured)."""
        if self.breaker is None:
            return self._attempt(method, path, body)
        if not self.breaker.allow():
            raise CircuitOpen(
                f"circuit open for {self.host}:{self.port}; not sending "
                f"{method} {path}"
            )
        try:
            result = self._attempt(method, path, body)
        except TransportError:
            self.breaker.record_failure()
            raise
        except ServiceError as exc:
            # The daemon answered: only server-side breakage (5xx)
            # counts against the circuit; 4xx means *we* were wrong.
            if exc.status >= 500:
                self.breaker.record_failure()
            else:
                self.breaker.record_success()
            raise
        self.breaker.record_success()
        return result

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[dict] = None,
        idempotent: bool = True,
    ) -> dict:
        if self.retry is None or not idempotent:
            return self._guarded(method, path, body)
        delays = self.retry.delays()
        for attempt, delay in enumerate([*delays, None]):
            try:
                return self._guarded(method, path, body)
            except (TransportError, ServiceError) as exc:
                retryable = (
                    isinstance(exc, TransportError)
                    or exc.status in RETRYABLE_STATUSES
                )
                if not retryable or delay is None:
                    raise
                hint = exc.payload.get("retry_after_s")
                if isinstance(hint, (int, float)) and hint > 0:
                    # Honor the daemon's hint, but never beyond the
                    # policy's own ceiling (tests keep that tiny).
                    delay = min(max(delay, float(hint)), self.retry.max_delay_s)
                time.sleep(delay)
        raise AssertionError("unreachable")  # pragma: no cover

    # -- API ------------------------------------------------------------
    def health(self) -> dict:
        """``GET /healthz``."""
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        """``GET /stats``."""
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """``GET /metrics`` — the raw Prometheus text body (not JSON)."""
        conn = self._connect()
        try:
            try:
                conn.request("GET", "/metrics")
                self._arm_read_timeout(conn)
                response = conn.getresponse()
                body = response.read().decode("utf-8")
            except socket.timeout as exc:
                raise TransportError(
                    f"no /metrics response within {self.read_timeout}s"
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                raise TransportError(
                    f"GET /metrics failed: {type(exc).__name__}: {exc}"
                ) from exc
            if response.status >= 400:
                raise ServiceError(response.status, body.strip())
            return body
        finally:
            conn.close()

    def trace(self, job_id: str) -> dict:
        """``GET /jobs/<id>/trace`` — the job's span records."""
        return self._request("GET", f"/jobs/{job_id}/trace")

    def submit(self, spec: Union[JobSpec, Dict]) -> dict:
        """``POST /jobs`` — returns the job snapshot (with its ``id``).

        Safe to retry (and retried, when a policy is configured): job
        identity is the spec's content hash, so a resubmission after an
        ambiguous failure lands on the same cached work.
        """
        body = spec.to_dict() if isinstance(spec, JobSpec) else dict(spec)
        return self._request("POST", "/jobs", body=body)

    def jobs(self) -> list:
        """``GET /jobs`` — snapshots of every known job."""
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        """``GET /jobs/<id>`` — one snapshot."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str, timeout: Optional[float] = None) -> dict:
        """``GET /jobs/<id>/result`` — block until terminal, return it.

        ``timeout`` bounds the *server-side* wait; the raised
        :class:`ServiceError` has ``status == 408`` on expiry, with the
        job's current state and queue position in ``payload``.
        """
        path = f"/jobs/{job_id}/result"
        if timeout is not None:
            path += f"?timeout={timeout}"
        return self._request("GET", path)

    def stream(self, job_id: str) -> Iterator[dict]:
        """``GET /jobs/<id>/stream`` — yield progress events as dicts.

        Ends after the terminal ``{"event": "end", "state": ...}`` line.
        A daemon that dies mid-stream (socket cut, chunk truncated, or
        a clean close without the ``end`` event) raises
        :class:`TransportError`; an idle-read timeout does too.
        """
        conn = self._connect()
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/stream")
                self._arm_read_timeout(conn)
                response = conn.getresponse()
            except socket.timeout as exc:
                raise TransportError(
                    f"no stream response within {self.read_timeout}s"
                ) from exc
            except (OSError, http.client.HTTPException) as exc:
                raise TransportError(
                    f"stream connect failed: {type(exc).__name__}: {exc}"
                ) from exc
            if response.status >= 400:
                data = json.loads(response.read().decode("utf-8"))
                raise ServiceError(
                    response.status, data.get("error", "unknown error"),
                    payload=data,
                )
            while True:
                try:
                    line = response.readline()
                except socket.timeout as exc:
                    raise TransportError(
                        f"stream of job {job_id} idle for more than "
                        f"{self.read_timeout}s"
                    ) from exc
                except (OSError, http.client.HTTPException) as exc:
                    raise TransportError(
                        f"daemon died mid-stream of job {job_id}: "
                        f"{type(exc).__name__}: {exc}"
                    ) from exc
                if not line:
                    # A stream that closes cleanly but never sent the
                    # terminal line still means the daemon went away.
                    raise TransportError(
                        f"stream of job {job_id} ended without the "
                        "terminal 'end' event (daemon died mid-stream)"
                    )
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line.decode("utf-8"))
                except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                    raise TransportError(
                        f"stream of job {job_id} truncated mid-line"
                    ) from exc
                yield event
                if event.get("event") == "end":
                    return
        finally:
            conn.close()

    def run(self, spec: Union[JobSpec, Dict],
            timeout: Optional[float] = None) -> dict:
        """Submit and block for the result (submit + ``/result``)."""
        job = self.submit(spec)
        return self.result(job["id"], timeout=timeout)

    def shutdown(self) -> dict:
        """``POST /shutdown`` — ask the daemon to stop gracefully.

        Never retried: after an ambiguous failure the daemon may
        already be gone, and hammering it helps nobody.
        """
        return self._request("POST", "/shutdown", idempotent=False)
