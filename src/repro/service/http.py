"""HTTP surface of the solver daemon (stdlib ``http.server`` only).

A deliberately small JSON-over-HTTP API on a
:class:`~http.server.ThreadingHTTPServer` — one OS thread per in-flight
request, which is exactly right for a daemon whose requests either
return instantly (status, cached results) or block streaming a running
job.  No routing framework, no dependencies.

Endpoints::

    GET  /healthz                  {"ok": ..., "status": ok|degraded|overloaded}
    GET  /stats                    service + cache counters, latencies
    GET  /metrics                  Prometheus text exposition (0.0.4)
    GET  /jobs                     snapshots of every known job
    GET  /jobs/<id>                one job's snapshot
    GET  /jobs/<id>/result?timeout=S   block for the result (408 + state
                                   and queue position on timeout)
    GET  /jobs/<id>/stream         chunked JSONL progress events
    GET  /jobs/<id>/trace          the job's span records (JSON)
    POST /jobs                     submit a JobSpec body -> 202 + snapshot
                                   (429 + Retry-After when shedding load)
    POST /shutdown                 graceful stop (finishes in-flight jobs)

The stream endpoint writes one JSON object per line with
``Transfer-Encoding: chunked`` (hand-rolled — ``http.server`` does not
chunk for us), so clients see rounds as they happen without framing
ambiguity.
"""

from __future__ import annotations

import json
import logging
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.api import RequestError
from repro.service.daemon import ServiceClosed, ServiceOverloaded, SolverService
from repro.service.jobs import JobSpec

logger = logging.getLogger("repro.service.http")

#: Prometheus text exposition format content type (version 0.0.4).
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class ServiceHTTPServer(ThreadingHTTPServer):
    """A threading HTTP server bound to one :class:`SolverService`."""

    daemon_threads = True
    # The stdlib default listen backlog (5) makes a burst of concurrent
    # clients hit SYN retransmits (~1s latency spikes); a daemon built
    # for N simultaneous submitters needs headroom.
    request_queue_size = 128

    def __init__(self, address: Tuple[str, int], service: SolverService):
        super().__init__(address, _Handler)
        self.service = service

    def shutdown_service(self) -> dict:
        """Stop the worker pool, then the HTTP loop (idempotent)."""
        summary = self.service.shutdown(wait=True)
        # shutdown() blocks until the serve_forever loop exits, so it
        # must never run on a handler thread — callers spawn a thread.
        self.shutdown()
        return summary


class _Handler(BaseHTTPRequestHandler):
    # Chunked transfer encoding requires HTTP/1.1; it also gives every
    # non-streaming response keep-alive for free.
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> SolverService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # Routed through the repro logger at debug level: silent unless
        # ``repro serve --log-level debug`` (or a test) configures it.
        logger.debug("%s %s", self.address_string(), format % args)

    # -- plumbing -------------------------------------------------------
    def _send_json(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, str(value))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise RequestError("empty request body")
        try:
            data = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise RequestError(f"invalid JSON body: {exc}") from exc
        if not isinstance(data, dict):
            raise RequestError("request body must be a JSON object")
        return data

    # -- GET ------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - stdlib casing
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["healthz"]:
                self._send_json(200, self.service.health())
            elif parts == ["stats"]:
                self._send_json(200, self.service.stats())
            elif parts == ["metrics"]:
                self._send_metrics()
            elif parts == ["jobs"]:
                self._send_json(200, {"jobs": self.service.jobs()})
            elif len(parts) == 2 and parts[0] == "jobs":
                self._send_json(200, self.service.job(parts[1]).snapshot())
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
                self._get_result(parts[1], url.query)
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "stream":
                self._stream(parts[1])
            elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "trace":
                self._get_trace(parts[1])
            else:
                self._error(404, f"no such endpoint: {url.path}")
        except KeyError:
            self._error(404, f"no such job: {parts[1]}")
        except (BrokenPipeError, ConnectionResetError):  # pragma: no cover
            pass  # client went away mid-stream; nothing to clean up

    def _send_metrics(self) -> None:
        body = self.service.metrics.render_prometheus().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", PROMETHEUS_CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _get_trace(self, job_id: str) -> None:
        job = self.service.job(job_id)
        if job.trace is None:
            self._error(409, f"job {job_id} has no trace yet ({job.state})")
            return
        self._send_json(
            200, {"id": job.id, "state": job.state, "spans": job.trace}
        )

    def _get_result(self, job_id: str, query: str) -> None:
        params = parse_qs(query)
        timeout: Optional[float] = None
        if "timeout" in params:
            try:
                timeout = float(params["timeout"][0])
            except ValueError:
                self._error(400, "timeout must be a number")
                return
        job = self.service.job(job_id)
        job.finished.wait(timeout=timeout)
        if not job.finished.is_set():
            # Enough context to decide whether to keep waiting: current
            # state plus how many queued jobs are still ahead.
            self._send_json(
                408,
                {
                    "error": f"job {job_id} still {job.state}",
                    "id": job.id,
                    "state": job.state,
                    "queue_position": self.service.queue_position(job_id),
                },
            )
            return
        payload = job.snapshot()
        payload["result"] = job.result
        self._send_json(200, payload)

    def _stream(self, job_id: str) -> None:
        job = self.service.job(job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/jsonl")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(data: bytes) -> None:
            self.wfile.write(f"{len(data):x}\r\n".encode("ascii"))
            self.wfile.write(data)
            self.wfile.write(b"\r\n")
            self.wfile.flush()

        for event in job.events():
            chunk((json.dumps(event, sort_keys=True) + "\n").encode("utf-8"))
        final = {"event": "end", "id": job.id, "state": job.state}
        chunk((json.dumps(final, sort_keys=True) + "\n").encode("utf-8"))
        self.wfile.write(b"0\r\n\r\n")
        self.wfile.flush()

    # -- POST -----------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib casing
        url = urlparse(self.path)
        parts = [p for p in url.path.split("/") if p]
        if parts == ["jobs"]:
            try:
                spec = JobSpec.from_dict(self._read_body())
                job = self.service.submit(spec)
            except RequestError as exc:
                self._error(400, str(exc))
            except ServiceOverloaded as exc:
                payload = exc.job.snapshot()
                payload["error"] = str(exc)
                payload["retry_after_s"] = exc.retry_after_s
                self._send_json(
                    429, payload, headers={"Retry-After": exc.retry_after_s}
                )
            except ServiceClosed as exc:
                self._error(503, str(exc))
            else:
                self._send_json(202, job.snapshot())
        elif parts == ["shutdown"]:
            self._send_json(200, {"ok": True, "shutting_down": True})
            # Respond first, then stop: shutdown_service() joins the
            # serve_forever loop and would deadlock run on this thread.
            threading.Thread(
                target=self.server.shutdown_service,  # type: ignore[attr-defined]
                daemon=True,
            ).start()
        else:
            self._error(404, f"no such endpoint: {url.path}")


def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    service: Optional[SolverService] = None,
    **service_kw,
) -> ServiceHTTPServer:
    """Build a bound (not yet serving) daemon server.

    ``port=0`` binds an ephemeral port (see ``server_address[1]``) —
    what tests and the CI smoke use.  The caller owns the serve loop::

        server = serve(port=8100, workers=4, store="results.jsonl")
        try:
            server.serve_forever()
        finally:
            server.shutdown_service()
    """
    if service is None:
        service = SolverService(**service_kw)
    elif service_kw:
        raise TypeError("pass either a service or service kwargs, not both")
    return ServiceHTTPServer((host, port), service)
