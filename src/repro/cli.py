"""Command line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
``solve``
    Solve a (k, l)-SPF instance on a generated structure and print the
    result (rounds, assignments, optional ASCII rendering).
``route``
    Solve, then route tokens along the forest and report the
    :class:`~repro.motion.routing.RoutingStats` (steps, total moves,
    congestion overhead).
``churn``
    Dynamic SPF: apply a generated edit stream to the structure and
    repair the forest incrementally, reporting per-batch repair cost
    (optionally under injected faults).
``sweep``
    Quick round-complexity sweeps (spsp / sssp / forest) — thin
    wrappers over the built-in ``*-small`` campaigns.
``campaign``
    Declarative experiment campaigns: ``run`` / ``resume`` named or
    JSON-file campaigns in parallel with a persistent JSONL result
    store, ``list`` the built-ins, ``summarize`` a store.
``info``
    Describe a generated structure (portals, diameter, holes).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.backend import BACKEND_NAMES, BackendUnavailableError, set_default_backend
from repro.grid.directions import Axis
from repro.grid.oracle import structure_diameter
from repro.grid.structure import AmoebotStructure
from repro.spf.api import solve_spf
from repro.viz.ascii_art import render_forest_ascii
from repro.workloads import (
    sample_sources_destinations,
    spread_nodes,
)
from repro.workloads.specs import build_structure


def make_structure(spec: str) -> AmoebotStructure:
    """Build a structure from a CLI spec like ``hexagon:3`` or ``random:200:7``.

    Supported: ``hexagon:R``, ``parallelogram:W:H``, ``triangle:S``,
    ``line:N``, ``comb:T:L``, ``staircase:S:W``, ``lollipop:R:H``,
    ``random:N[:SEED]``, ``dendrite:N[:SEED]``.
    """
    try:
        return build_structure(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _scheduler_engine(structure: AmoebotStructure, spec: str):
    """Build an :class:`~repro.sched.ActivationEngine` from ``--scheduler``."""
    from repro.sched import ActivationEngine

    try:
        return ActivationEngine(structure, scheduler=spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _print_scheduler_report(engine) -> None:
    """One summary line for an event-driven run (``--scheduler``)."""
    st = engine.stats
    print(
        f"scheduler {engine.scheduler.name}: {st.activations} activations "
        f"over {st.epochs} epochs, simulated time {st.time:.1f}"
        + (f", {st.retransmissions} retransmissions" if st.retransmissions else "")
    )


def cmd_solve(args: argparse.Namespace) -> int:
    """Handle ``repro solve``."""
    structure = make_structure(args.shape)
    sources, destinations = _endpoints(structure, args)
    engine = _scheduler_engine(structure, args.scheduler) if args.scheduler else None
    solution = solve_spf(structure, sources, destinations, engine=engine)
    print(f"n = {len(structure)}, k = {args.k}, l = {args.l}")
    print(f"algorithm: {solution.algorithm}")
    print(f"synchronous rounds: {solution.rounds}")
    if engine is not None:
        _print_scheduler_report(engine)
    print(f"forest members: {len(solution.forest.members)}")
    for d in destinations:
        root = solution.forest.root_of(d)
        depth = solution.forest.depth_of(d)
        print(f"  {tuple(d)} -> {tuple(root)} ({depth} hops)")
    if args.ascii:
        print()
        print(
            render_forest_ascii(
                structure, sources, destinations, solution.forest.members
            )
        )
    return 0


def _endpoints(structure, args):
    """Shared source/destination selection for solve-style commands."""
    if args.k < 1 or args.l < 1:
        raise SystemExit("k and l must be at least 1")
    if getattr(args, "spread", False):
        sources = spread_nodes(structure, args.k)
        rest = [u for u in sorted(structure.nodes) if u not in set(sources)]
        destinations = rest[: args.l]
    else:
        sources, destinations = sample_sources_destinations(
            structure, args.k, args.l, seed=args.seed
        )
    return sources, destinations


def cmd_route(args: argparse.Namespace) -> int:
    """Handle ``repro route`` — token routing along a solved forest."""
    from repro.motion import RoutingPlan, route_tokens

    structure = make_structure(args.shape)
    sources, destinations = _endpoints(structure, args)
    solution = solve_spf(structure, sources, destinations)
    if args.tokens:
        members = sorted(solution.forest.members - set(sources))
        if not members:
            raise SystemExit("forest has no non-source members to seed tokens on")
        import random as _random

        rng = _random.Random(args.seed)
        origins = [members[i] for i in sorted(
            rng.sample(range(len(members)), min(args.tokens, len(members)))
        )]
    else:
        origins = list(destinations)
    stats = route_tokens(RoutingPlan(solution.forest, origins))
    print(f"n = {len(structure)}, k = {args.k}, l = {args.l}")
    print(f"algorithm: {solution.algorithm} ({solution.rounds} solve rounds)")
    print(f"tokens routed: {len(origins)}")
    print(f"steps (makespan): {stats.steps}")
    print(f"total moves: {stats.total_moves}")
    print(f"lower bound: {stats.lower_bound}")
    print(f"congestion overhead: {stats.congestion_overhead:.3f}")
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    """Handle ``repro churn`` — dynamic SPF repair under an edit stream."""
    from repro.dynamics import CHURN_KINDS, DynamicSPF, FaultInjector, generate_churn
    from repro.spf.api import solve_spf as _solve

    if args.kind not in CHURN_KINDS:
        raise SystemExit(
            f"unknown churn kind {args.kind!r} (choose from {', '.join(CHURN_KINDS)})"
        )
    structure = make_structure(args.shape)
    sources, destinations = _endpoints(structure, args)
    faults = None
    if args.crash or args.drop:
        import random as _random

        rng = _random.Random(args.seed + 1)
        pool = [u for u in sorted(structure.nodes) if u not in set(sources)]
        crashed = rng.sample(pool, min(args.crash, len(pool))) if args.crash else []
        faults = FaultInjector(crashed=crashed, drop_prob=args.drop, seed=args.seed)
    engine = _scheduler_engine(structure, args.scheduler) if args.scheduler else None
    dyn = DynamicSPF(
        structure,
        sources,
        destinations,
        threshold=args.threshold,
        faults=faults,
        engine=engine,
    )
    init_rounds = dyn.engine.rounds.total
    print(f"n = {len(structure)}, k = {args.k}, l = {args.l}")
    print(f"initial solve: {init_rounds} rounds, {len(dyn.forest.members)} members")
    script = generate_churn(
        structure,
        args.kind,
        steps=args.steps,
        batch_size=args.batch,
        seed=args.seed,
        protected=dyn.protected,
    )
    print(f"edit stream: {len(script)} batches, {script.total_ops} ops ({args.kind})")
    print(f"{'batch':>5} {'ops':>4} {'n':>5} {'region':>6} {'dirty':>6} "
          f"{'mode':>6} {'rounds':>6} {'wave':>5} {'healed':>6}")
    for i, batch in enumerate(script):
        st = dyn.apply(batch)
        print(f"{i:>5} {st.batch_ops:>4} {st.structure_size:>5} {st.region:>6} "
              f"{st.dirty:>6} {st.mode:>6} {st.rounds:>6} {st.wave_rounds:>5} "
              f"{st.corrected:>6}")
    repair_rounds = dyn.engine.rounds.total - init_rounds
    reference = _solve(
        dyn.structure,
        sources,
        destinations if destinations else list(dyn.structure.nodes),
    )
    print(f"repair total: {repair_rounds} rounds over {len(script)} batches "
          f"(one fresh solve on the final structure: {reference.rounds} rounds)")
    if engine is not None:
        _print_scheduler_report(dyn.engine)
    if faults is not None:
        fs = faults.stats
        print(f"faults: {fs.lost} beeps lost ({fs.suppressed} crashed, "
              f"{fs.dropped} dropped), {fs.missed_hears} missed hears detected")
    if args.ascii:
        from repro.viz.ascii_art import render_churn_ascii

        last = script.batches[-1]
        print()
        print(render_churn_ascii(
            dyn.structure,
            sources=sources,
            destinations=destinations,
            members=dyn.forest.members,
            added=[u for u in last.add if u in dyn.structure],
        ))
    return 0


#: sweep experiment -> (built-in campaign, sweep axis, table title)
_SWEEPS = {
    "spsp": ("spsp-small", "n", "SPSP rounds vs n"),
    "sssp": ("sssp-small", "n", "SSSP rounds vs n"),
    "forest": ("forest-small", "k", "forest rounds vs k (n = 200)"),
}


def cmd_sweep(args: argparse.Namespace) -> int:
    """Handle ``repro sweep`` — thin wrapper over built-in campaigns."""
    from repro.experiments import get_campaign, run_campaign, summary_table

    name, axis, title = _SWEEPS[args.experiment]
    report = run_campaign(get_campaign(name))
    table = summary_table(report.records(), x=axis, columns=("rounds",), title=title)
    print(table.render())
    return 0


def _load_campaign(args: argparse.Namespace):
    """Resolve ``--name`` (registry) or ``--spec`` (JSON file)."""
    from repro.experiments import CampaignSpec, SpecError, get_campaign

    if getattr(args, "spec", None):
        try:
            return CampaignSpec.from_json(Path(args.spec).read_text())
        except OSError as exc:
            raise SystemExit(f"cannot read campaign spec: {exc}") from exc
        except SpecError as exc:
            raise SystemExit(f"bad campaign spec: {exc}") from exc
    if getattr(args, "name", None):
        try:
            return get_campaign(args.name)
        except KeyError as exc:
            raise SystemExit(exc.args[0]) from exc
    raise SystemExit("one of --name or --spec is required")


def _store_path(args: argparse.Namespace, campaign_name: str) -> Path:
    if args.store:
        return Path(args.store)
    return Path("campaigns") / f"{campaign_name}.jsonl"


def _print_store_summary(records: List[dict]) -> None:
    from repro.experiments import group_records, growth_report, summary_table, sweep_axis

    for scenario, rows in sorted(group_records(records, "scenario").items()):
        axis = sweep_axis(rows)
        table = summary_table(
            rows,
            x=axis,
            columns=("rounds", "forest_members"),
            title=f"scenario {scenario!r}: mean rounds vs {axis}",
        )
        print()
        print(table.render())
        fit = growth_report(rows, x=axis)
        if fit is not None:
            print(f"growth vs {axis}: {fit.describe()}")


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """Handle ``repro campaign run`` and ``repro campaign resume``."""
    from repro.experiments import CampaignRunner, ResultStore

    campaign = _load_campaign(args)
    if getattr(args, "scheduler", None):
        import dataclasses

        from repro.experiments.spec import SpecError

        try:
            campaign = dataclasses.replace(
                campaign,
                scenarios=tuple(
                    dataclasses.replace(s, schedulers=(args.scheduler,))
                    for s in campaign.scenarios
                ),
            )
        except SpecError as exc:
            raise SystemExit(f"bad --scheduler: {exc}") from exc
    path = _store_path(args, campaign.name)
    if args.action == "resume" and not path.exists():
        raise SystemExit(f"no result store to resume at {path}")
    store = ResultStore(path)
    if args.action == "resume":
        reclaimed = store.compact()
        if reclaimed:
            print(f"compacted store: dropped {reclaimed} superseded line(s)")
    trials = campaign.trial_count()
    print(
        f"campaign {campaign.name!r}: {trials} trials, "
        f"{len(campaign.scenarios)} scenario(s), workers = {args.workers}"
    )
    print(f"store: {path} ({len(store)} prior records)")

    def progress(trial, result, done, total):
        print(
            f"[{done:>3}/{total}] {trial.scenario}: {trial.shape} "
            f"k={trial.k} l={trial.l} seed={trial.seed} -> "
            f"{result.rounds} rounds ({result.elapsed_s:.2f}s)"
        )
        sys.stdout.flush()

    runner = CampaignRunner(store=store, workers=args.workers)
    try:
        report = runner.run(
            campaign,
            resume=not args.fresh,
            progress=None if args.quiet else progress,
        )
    except ValueError as exc:
        raise SystemExit(f"campaign aborted: {exc}") from exc
    print(report.summary())
    print(f"executed {report.executed}, cache hits {report.cache_hits}")
    _print_store_summary(report.records())
    return 0


def cmd_campaign_list(args: argparse.Namespace) -> int:
    """Handle ``repro campaign list``."""
    from repro.experiments import campaign_names, get_campaign

    for name in campaign_names():
        campaign = get_campaign(name)
        print(
            f"{name:<14} {campaign.trial_count():>3} trials  "
            f"{campaign.description}"
        )
    return 0


def cmd_campaign_summarize(args: argparse.Namespace) -> int:
    """Handle ``repro campaign summarize``."""
    from repro.experiments import ResultStore

    if not args.store and not args.name:
        raise SystemExit("one of --store or --name is required")
    path = Path(args.store) if args.store else _store_path(args, args.name)
    if not path.exists():
        raise SystemExit(f"no result store at {path}")
    store = ResultStore(path)
    reclaimed = store.compact()
    if reclaimed:
        print(f"compacted store: dropped {reclaimed} superseded line(s)")
    records = store.records(scenario=args.scenario)
    if not records:
        raise SystemExit(f"store {path} has no matching records")
    print(f"store: {path} ({len(store)} records, scenarios: {store.scenarios()})")
    _print_store_summary(records)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Dispatch ``repro campaign <action>``."""
    if args.action in ("run", "resume"):
        return cmd_campaign_run(args)
    if args.action == "list":
        return cmd_campaign_list(args)
    return cmd_campaign_summarize(args)


def cmd_info(args: argparse.Namespace) -> int:
    """Handle ``repro info``."""
    structure = make_structure(args.shape)
    from repro.portals.portals import PortalSystem

    print(f"n = {len(structure)}")
    print(f"edges = {structure.edge_count()}")
    print(f"diameter = {structure_diameter(structure)}")
    for axis in Axis:
        system = PortalSystem(structure, axis)
        print(f"{axis.name}-portals: {system.portal_count()} "
              f"(tree: {system.is_portal_graph_tree()})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shortest path forests in programmable matter (PODC 2024 reproduction)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="auto",
        help="execution backend for compiled layouts and grid indexes "
        "(auto: numpy when importable; results are bit-identical either way)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a (k, l)-SPF instance")
    solve.add_argument("--shape", default="hexagon:4", help="e.g. hexagon:4, random:200:7")
    solve.add_argument("-k", type=int, default=2, help="number of sources")
    solve.add_argument("-l", type=int, default=5, help="number of destinations")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--spread", action="store_true", help="spread sources far apart")
    solve.add_argument(
        "--scheduler",
        default="",
        metavar="NAME[:PARAM]",
        help="event-driven activation scheduler: sync, random:SEED, "
        "adversarial:DELTA, weighted:SEED",
    )
    solve.add_argument("--ascii", action="store_true", help="render the forest")
    solve.set_defaults(func=cmd_solve)

    route = sub.add_parser(
        "route", help="route tokens along a solved shortest path forest"
    )
    route.add_argument("--shape", default="hexagon:4", help="e.g. hexagon:4, random:200:7")
    route.add_argument("-k", type=int, default=1, help="number of sources")
    route.add_argument("-l", type=int, default=5, help="number of destinations")
    route.add_argument("--seed", type=int, default=0)
    route.add_argument("--spread", action="store_true", help="spread sources far apart")
    route.add_argument(
        "--tokens",
        type=int,
        default=0,
        help="route this many tokens from random forest members "
        "(default: one token per destination)",
    )
    route.set_defaults(func=cmd_route)

    churn = sub.add_parser(
        "churn", help="dynamic SPF: edit stream + incremental repair"
    )
    churn.add_argument("--shape", default="random:200:1")
    churn.add_argument("-k", type=int, default=1, help="number of sources")
    churn.add_argument("-l", type=int, default=5, help="number of destinations")
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--spread", action="store_true", help="spread sources far apart")
    churn.add_argument(
        "--kind",
        default="mixed",
        help="edit flavor: growth, erosion, tunnel, block_move, mixed",
    )
    churn.add_argument("--steps", type=int, default=8, help="edit batches to apply")
    churn.add_argument("--batch", type=int, default=3, help="operations per batch")
    churn.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="dirty fraction that triggers a full re-solve",
    )
    churn.add_argument(
        "--crash", type=int, default=0, help="crash this many random amoebots"
    )
    churn.add_argument(
        "--drop", type=float, default=0.0, help="per-beep drop probability"
    )
    churn.add_argument(
        "--scheduler",
        default="",
        metavar="NAME[:PARAM]",
        help="event-driven activation scheduler (see 'solve --help')",
    )
    churn.add_argument("--ascii", action="store_true", help="render the final frame")
    churn.set_defaults(func=cmd_churn)

    sweep = sub.add_parser("sweep", help="round-complexity sweeps")
    sweep.add_argument("experiment", choices=["spsp", "sssp", "forest"])
    sweep.set_defaults(func=cmd_sweep)

    campaign = sub.add_parser(
        "campaign", help="declarative experiment campaigns"
    )
    campaign.add_argument(
        "action",
        choices=["run", "resume", "list", "summarize"],
        help="run/resume a campaign, list built-ins, summarize a store",
    )
    campaign.add_argument("--name", help="built-in campaign name (see 'list')")
    campaign.add_argument("--spec", help="path to a campaign JSON file")
    campaign.add_argument(
        "--store",
        help="JSONL result store path (default: campaigns/<name>.jsonl)",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    campaign.add_argument(
        "--fresh",
        action="store_true",
        help="ignore cached results and re-execute every trial",
    )
    campaign.add_argument(
        "--scenario", help="summarize: restrict to one scenario"
    )
    campaign.add_argument(
        "--scheduler",
        default="",
        metavar="NAME[:PARAM]",
        help="run/resume: override every scenario's scheduler axis",
    )
    campaign.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress lines"
    )
    campaign.set_defaults(func=cmd_campaign)

    info = sub.add_parser("info", help="describe a generated structure")
    info.add_argument("--shape", default="hexagon:3")
    info.set_defaults(func=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        set_default_backend(args.backend)
    except (ValueError, BackendUnavailableError) as exc:
        raise SystemExit(str(exc)) from exc
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro campaign summarize | head`
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
