"""Command line interface: ``python -m repro <command>`` (or ``repro``).

Commands
--------
``solve``
    Solve a (k, l)-SPF instance on a generated structure and print the
    result (rounds, assignments, optional ASCII rendering).
``route``
    Solve, then route tokens along the forest and report the
    :class:`~repro.motion.routing.RoutingStats` (steps, total moves,
    congestion overhead).
``churn``
    Dynamic SPF: apply a generated edit stream to the structure and
    repair the forest incrementally, reporting per-batch repair cost
    (optionally under injected faults).
``sweep``
    Quick round-complexity sweeps (spsp / sssp / forest) — thin
    wrappers over the built-in ``*-small`` campaigns.
``campaign``
    Declarative experiment campaigns: ``run`` / ``resume`` named or
    JSON-file campaigns in parallel with a persistent JSONL result
    store, ``list`` the built-ins, ``summarize`` a store.
``serve``
    Run the solver daemon: a long-lived :class:`~repro.api.Session`
    behind an HTTP job API with JSONL progress streaming and a
    persistent result store (see :mod:`repro.service`).
``chaos``
    Resilience smoke drill: drive the fault injectors in
    ``tests/chaos.py`` (flaky store writes, expiring deadlines, a full
    queue, worker processes killed mid-trial) and verify every
    guarantee of the resilience layer holds.
``trace``
    Render a JSONL span trace (written by ``solve --trace`` or a
    campaign's ``--trace-dir``) as a text flamegraph.
``info``
    Describe a generated structure (portals, diameter, holes).

The solve-family commands (``solve``/``route``/``churn``) are thin
translators: flags become a :class:`~repro.api.SolveRequest` executed
on a throwaway :class:`~repro.api.Session`, so a CLI invocation, a
library call, and a daemon job with the same parameters share one
content key and produce bit-identical results.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

from repro.backend import BACKEND_NAMES, BackendUnavailableError, set_default_backend
from repro.grid.directions import Axis
from repro.grid.oracle import structure_diameter
from repro.grid.structure import AmoebotStructure
from repro.viz.ascii_art import render_forest_ascii
from repro.workloads.specs import build_structure


def make_structure(spec: str) -> AmoebotStructure:
    """Build a structure from a CLI spec like ``hexagon:3`` or ``random:200:7``.

    Supported: ``hexagon:R``, ``parallelogram:W:H``, ``triangle:S``,
    ``line:N``, ``comb:T:L``, ``staircase:S:W``, ``lollipop:R:H``,
    ``random:N[:SEED]``, ``dendrite:N[:SEED]``.
    """
    try:
        return build_structure(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _request_from_args(args: argparse.Namespace, kind: str, **extra):
    """Translate solve-family flags into a :class:`SolveRequest`.

    The commands are thin: every knob lands in the request, and the
    request (not the flag set) is what executes — identically to a
    library call or an HTTP job with the same content key.
    """
    from repro.api import RequestError, SolveRequest

    if args.k < 1 or args.l < 1:
        raise SystemExit("k and l must be at least 1")
    try:
        return SolveRequest(
            kind=kind,
            shape=args.shape,
            k=args.k,
            l=args.l,
            seed=args.seed,
            placement="spread" if getattr(args, "spread", False) else "random",
            scheduler=getattr(args, "scheduler", "") or "",
            deadline_s=getattr(args, "deadline", 0.0) or 0.0,
            **extra,
        )
    except RequestError as exc:
        raise SystemExit(str(exc)) from exc


def _run_request(request, trace_path=None, trace_rounds=False):
    """Execute one request on a throwaway session (user errors exit).

    ``trace_path`` activates the span tracer for the run and dumps the
    JSONL trace there (render it with ``repro trace <file>``);
    ``trace_rounds`` additionally wraps every beep round in its own
    span.  Without a path, no tracer is installed and the run executes
    the uninstrumented fast path.
    """
    from repro.api import Session
    from repro.resilience import Cancelled

    try:
        if trace_path:
            from repro.obs import Tracer, use_tracer

            tracer = Tracer(trace_rounds=trace_rounds)
            with use_tracer(tracer):
                report = Session().run(request)
            count = tracer.dump(trace_path)
            print(f"trace: {count} spans -> {trace_path}", file=sys.stderr)
            return report
        return Session().run(request)
    except Cancelled as exc:
        rounds = exc.partial.get("rounds", 0)
        elapsed = exc.partial.get("elapsed_s", 0.0)
        raise SystemExit(
            f"{exc} after {elapsed}s ({rounds} rounds completed)"
        ) from exc
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _print_scheduler_report(sched: dict) -> None:
    """One summary line for an event-driven run (``--scheduler``)."""
    print(
        f"scheduler {sched['name']}: {sched['activations']} activations "
        f"over {sched['epochs']} epochs, simulated time {sched['time']:.1f}"
        + (
            f", {sched['retransmissions']} retransmissions"
            if sched["retransmissions"]
            else ""
        )
    )


def cmd_solve(args: argparse.Namespace) -> int:
    """Handle ``repro solve``."""
    report = _run_request(
        _request_from_args(args, "solve"),
        trace_path=args.trace,
        trace_rounds=args.trace_rounds,
    )
    print(f"n = {report.n}, k = {args.k}, l = {args.l}")
    print(f"algorithm: {report.algorithm}")
    print(f"synchronous rounds: {report.rounds}")
    if report.sched is not None:
        _print_scheduler_report(report.sched)
    print(f"forest members: {report.forest_members}")
    for d in report.destinations:
        root = report.forest.root_of(d)
        depth = report.forest.depth_of(d)
        print(f"  {tuple(d)} -> {tuple(root)} ({depth} hops)")
    if args.ascii:
        print()
        print(
            render_forest_ascii(
                report.structure,
                report.sources,
                report.destinations,
                report.forest.members,
            )
        )
    return 0


def cmd_route(args: argparse.Namespace) -> int:
    """Handle ``repro route`` — token routing along a solved forest."""
    report = _run_request(
        _request_from_args(args, "route", tokens=args.tokens),
        trace_path=args.trace,
        trace_rounds=args.trace_rounds,
    )
    routing = report.routing
    print(f"n = {report.n}, k = {args.k}, l = {args.l}")
    print(f"algorithm: {report.algorithm} ({report.rounds} solve rounds)")
    print(f"tokens routed: {routing['tokens']}")
    print(f"steps (makespan): {routing['steps']}")
    print(f"total moves: {routing['total_moves']}")
    print(f"lower bound: {routing['lower_bound']}")
    print(f"congestion overhead: {routing['congestion_overhead']:.3f}")
    return 0


def cmd_churn(args: argparse.Namespace) -> int:
    """Handle ``repro churn`` — dynamic SPF repair under an edit stream."""
    report = _run_request(
        _request_from_args(
            args,
            "churn",
            churn=args.kind,
            churn_steps=args.steps,
            churn_batch=args.batch,
            threshold=args.threshold,
            crash=args.crash,
            drop=args.drop,
        ),
        trace_path=args.trace,
        trace_rounds=args.trace_rounds,
    )
    repair = report.repair
    print(f"n = {repair['initial_n']}, k = {args.k}, l = {args.l}")
    print(f"initial solve: {repair['initial_rounds']} rounds, "
          f"{repair['initial_members']} members")
    print(f"edit stream: {repair['edit_batches']} batches, "
          f"{repair['edit_ops']} ops ({args.kind})")
    print(f"{'batch':>5} {'ops':>4} {'n':>5} {'region':>6} {'dirty':>6} "
          f"{'mode':>6} {'rounds':>6} {'wave':>5} {'healed':>6}")
    for i, b in enumerate(repair["batches"]):
        print(f"{i:>5} {b['ops']:>4} {b['n']:>5} {b['region']:>6} "
              f"{b['dirty']:>6} {b['mode']:>6} {b['rounds']:>6} {b['wave']:>5} "
              f"{b['healed']:>6}")
    print(f"repair total: {repair['repair_rounds']} rounds over "
          f"{repair['edit_batches']} batches "
          f"(one fresh solve on the final structure: {repair['fresh_rounds']} rounds)")
    if report.sched is not None:
        _print_scheduler_report(report.sched)
    if report.faults is not None:
        fs = report.faults
        print(f"faults: {fs['lost']} beeps lost ({fs['suppressed']} crashed, "
              f"{fs['dropped']} dropped), {fs['missed_hears']} missed hears detected")
    if args.ascii:
        from repro.viz.ascii_art import render_churn_ascii

        print()
        print(render_churn_ascii(
            report.structure,
            sources=report.sources,
            destinations=report.destinations,
            members=report.forest.members,
            added=report.added or [],
        ))
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Handle ``repro serve`` — the solver daemon (see :mod:`repro.service`)."""
    from repro.api import Session
    from repro.obs import configure_logging
    from repro.service import SolverService, serve

    try:
        configure_logging(level=args.log_level, fmt=args.log_format)
        session = Session(scheduler=args.scheduler, store=args.store)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    service = SolverService(
        session=session,
        workers=args.workers,
        max_queue=args.queue_depth,
        metrics_interval=args.metrics_interval,
    )
    server = serve(host=args.host, port=args.port, service=service)
    host, port = server.server_address[:2]
    print(f"repro serve: listening on http://{host}:{port} "
          f"({args.workers} workers)")
    if args.store:
        print(f"store: {args.store} ({len(service.store)} prior records)")
    sys.stdout.flush()
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down (finishing in-flight jobs)...")
    finally:
        summary = service.shutdown(wait=True)
        server.server_close()
        if summary["cancelled"]:
            print(f"cancelled {summary['cancelled']} queued job(s)")
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    """Handle ``repro chaos`` — the resilience smoke drill.

    Drives the fault injectors from ``tests/chaos.py`` against an
    in-process :class:`~repro.service.SolverService` and a real
    multi-process :class:`~repro.experiments.runner.CampaignRunner`:
    flaky store writes, a deadline that expires mid-run, a full queue
    shedding cold work while warm cache hits are still served, and
    worker processes killed mid-trial.  Prints what happened and exits
    nonzero if any resilience guarantee was violated.
    """
    import os
    import tempfile
    import time

    try:
        from tests.chaos import (
            CHAOS_DIR_ENV,
            FlakyStore,
            GatedSession,
            arm_crash_once,
            arm_poison,
            chaos_crash_trial,
        )
    except ImportError as exc:
        raise SystemExit(
            "repro chaos needs tests/chaos.py importable (run it from a "
            f"source checkout root): {exc}"
        ) from exc

    from repro.api import Session, SolveRequest
    from repro.experiments import CampaignRunner, ResultStore
    from repro.experiments.spec import CampaignSpec, ScenarioSpec
    from repro.resilience import RetryPolicy
    from repro.service import JobSpec, ServiceOverloaded, SolverService

    failures: List[str] = []

    def check(ok: bool, label: str) -> None:
        print(f"  [{'ok' if ok else 'FAIL'}] {label}")
        if not ok:
            failures.append(label)

    # -- phase 1: daemon drill (flaky store, deadline, backpressure) ----
    print("phase 1: solver daemon under chaos")
    store = FlakyStore(fail_every=2)
    warm_request = SolveRequest(shape="hexagon:3", k=1, l=3, seed=1)
    # Pre-warm the store through a plain session so the daemon has one
    # cacheable record (FlakyStore write #1 — the one that succeeds).
    Session(store=store).run(warm_request)

    gated = GatedSession(Session(store=store))
    service = SolverService(session=gated, workers=1, max_queue=1)
    try:
        # Cold job with a deadline: it blocks on the gate until the
        # deadline trips, so the worker frees itself without our help.
        doomed = service.submit(
            JobSpec(
                request=SolveRequest(shape="hexagon:4", k=2, l=4, seed=2),
                deadline_s=0.2,
            )
        )
        gated.entered.wait(timeout=5.0)
        # Second cold job fills the queue (depth 1 of 1)...
        queued = service.submit(
            JobSpec(request=SolveRequest(shape="hexagon:3", k=1, l=2, seed=3))
        )
        status = service.health()["status"]
        check(
            status in ("degraded", "overloaded"),
            f"/healthz degrades under load (status={status})",
        )
        # ...so the next cold submission must be shed with a hint...
        try:
            service.submit(
                JobSpec(
                    request=SolveRequest(shape="hexagon:3", k=1, l=2, seed=4)
                )
            )
            shed_info = "no ServiceOverloaded raised"
            shed_ok = False
        except ServiceOverloaded as exc:
            shed_info = f"retry_after_s={exc.retry_after_s}"
            shed_ok = exc.retry_after_s >= 1
        check(shed_ok, f"cold submission shed when full ({shed_info})")
        # ...while a warm cache hit is still served, never 500.
        warm = service.submit(JobSpec(request=warm_request))
        check(
            warm.state == "done" and warm.result.get("cached") is True,
            "warm cache hit served while overloaded",
        )
        timed_out = service.wait(doomed.id, timeout=10.0)
        check(
            timed_out.state == "timeout",
            f"deadline job reached state=timeout (state={timed_out.state})",
        )
        gated.release()
        finished = service.wait(queued.id, timeout=30.0)
        check(
            finished.state == "done",
            "queued job completes after the worker frees up",
        )
        check(
            gated.stats.store_failures >= 1,
            f"flaky store writes survived as store_failures="
            f"{gated.stats.store_failures}, not errors",
        )
        terminal = {"done", "failed", "timeout", "shed"}
        states = [job["state"] for job in service.jobs()]
        check(
            all(state in terminal for state in states),
            f"every job reached a terminal state ({states})",
        )
        print(
            "  counters: sheds={:g} timeouts={:g}".format(
                service._sheds_total.value(), service._timeouts_total.value()
            )
        )
    finally:
        service.shutdown(wait=True)

    # -- phase 2: campaign with crashing workers ------------------------
    print(f"phase 2: {args.trials}-trial campaign, workers killed mid-job")
    campaign = CampaignSpec(
        name="chaos-drill",
        scenarios=(
            ScenarioSpec(
                name="chaos",
                shape="random:30:1",
                ks=(1,),
                ls=(1,),
                seeds=tuple(range(args.trials)),
            ),
        ),
    )
    trials = campaign.trials()
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        for trial in trials[1:4]:
            arm_crash_once(tmp, trial)  # 3 transient worker crashes
        arm_poison(tmp, trials[0])  # 1 trial that always kills its worker
        os.environ[CHAOS_DIR_ENV] = tmp
        try:
            runner = CampaignRunner(
                store=ResultStore(Path(tmp) / "results.jsonl"),
                workers=args.workers,
                retry=RetryPolicy(attempts=3, base_delay_s=0.01,
                                  max_delay_s=0.05),
                trial_fn=chaos_crash_trial,
            )
            started = time.monotonic()
            report = runner.run(campaign, resume=False)
        finally:
            os.environ.pop(CHAOS_DIR_ENV, None)
    check(
        len(report.results) == args.trials - 1,
        f"{len(report.results)}/{args.trials} trials recovered "
        "(all but the poison trial)",
    )
    check(
        report.retries >= 3,
        f"crashed trials were retried on fresh workers "
        f"(retries={report.retries})",
    )
    quarantined_keys = {rec["key"] for rec in report.quarantined}
    check(
        quarantined_keys == {trials[0].key()},
        "exactly the poison trial was quarantined "
        f"({len(report.quarantined)} record(s))",
    )
    print(f"  campaign wall time: {time.monotonic() - started:.1f}s")

    if failures:
        print(f"chaos drill FAILED: {len(failures)} violation(s)")
        return 1
    print("chaos drill passed: all resilience guarantees held")
    return 0


#: sweep experiment -> (built-in campaign, sweep axis, table title)
_SWEEPS = {
    "spsp": ("spsp-small", "n", "SPSP rounds vs n"),
    "sssp": ("sssp-small", "n", "SSSP rounds vs n"),
    "forest": ("forest-small", "k", "forest rounds vs k (n = 200)"),
}


def cmd_sweep(args: argparse.Namespace) -> int:
    """Handle ``repro sweep`` — thin wrapper over built-in campaigns."""
    from repro.experiments import get_campaign, run_campaign, summary_table

    name, axis, title = _SWEEPS[args.experiment]
    report = run_campaign(get_campaign(name))
    table = summary_table(report.records(), x=axis, columns=("rounds",), title=title)
    print(table.render())
    return 0


def _load_campaign(args: argparse.Namespace):
    """Resolve ``--name`` (registry) or ``--spec`` (JSON file)."""
    from repro.experiments import CampaignSpec, SpecError, get_campaign

    if getattr(args, "spec", None):
        try:
            return CampaignSpec.from_json(Path(args.spec).read_text())
        except OSError as exc:
            raise SystemExit(f"cannot read campaign spec: {exc}") from exc
        except SpecError as exc:
            raise SystemExit(f"bad campaign spec: {exc}") from exc
    if getattr(args, "name", None):
        try:
            return get_campaign(args.name)
        except KeyError as exc:
            raise SystemExit(exc.args[0]) from exc
    raise SystemExit("one of --name or --spec is required")


def _store_path(args: argparse.Namespace, campaign_name: str) -> Path:
    if args.store:
        return Path(args.store)
    return Path("campaigns") / f"{campaign_name}.jsonl"


def _print_store_summary(records: List[dict]) -> None:
    from repro.experiments import group_records, growth_report, summary_table, sweep_axis

    for scenario, rows in sorted(group_records(records, "scenario").items()):
        axis = sweep_axis(rows)
        table = summary_table(
            rows,
            x=axis,
            columns=("rounds", "forest_members"),
            title=f"scenario {scenario!r}: mean rounds vs {axis}",
        )
        print()
        print(table.render())
        fit = growth_report(rows, x=axis)
        if fit is not None:
            print(f"growth vs {axis}: {fit.describe()}")


def cmd_campaign_run(args: argparse.Namespace) -> int:
    """Handle ``repro campaign run`` and ``repro campaign resume``."""
    from repro.experiments import CampaignRunner, ResultStore

    campaign = _load_campaign(args)
    if getattr(args, "scheduler", None):
        import dataclasses

        from repro.experiments.spec import SpecError

        try:
            campaign = dataclasses.replace(
                campaign,
                scenarios=tuple(
                    dataclasses.replace(s, schedulers=(args.scheduler,))
                    for s in campaign.scenarios
                ),
            )
        except SpecError as exc:
            raise SystemExit(f"bad --scheduler: {exc}") from exc
    path = _store_path(args, campaign.name)
    if args.action == "resume" and not path.exists():
        raise SystemExit(f"no result store to resume at {path}")
    store = ResultStore(path)
    if args.action == "resume":
        reclaimed = store.compact()
        if reclaimed:
            print(f"compacted store: dropped {reclaimed} superseded line(s)")
    trials = campaign.trial_count()
    print(
        f"campaign {campaign.name!r}: {trials} trials, "
        f"{len(campaign.scenarios)} scenario(s), workers = {args.workers}"
    )
    print(f"store: {path} ({len(store)} prior records)")

    def progress(trial, result, done, total):
        print(
            f"[{done:>3}/{total}] {trial.scenario}: {trial.shape} "
            f"k={trial.k} l={trial.l} seed={trial.seed} -> "
            f"{result.rounds} rounds ({result.elapsed_s:.2f}s)"
        )
        sys.stdout.flush()

    runner = CampaignRunner(
        store=store,
        workers=args.workers,
        trace_dir=getattr(args, "trace_dir", None),
    )
    try:
        report = runner.run(
            campaign,
            resume=not args.fresh,
            progress=None if args.quiet else progress,
        )
    except ValueError as exc:
        raise SystemExit(f"campaign aborted: {exc}") from exc
    print(report.summary())
    print(f"executed {report.executed}, cache hits {report.cache_hits}")
    _print_store_summary(report.records())
    return 0


def cmd_campaign_list(args: argparse.Namespace) -> int:
    """Handle ``repro campaign list``."""
    from repro.experiments import campaign_names, get_campaign

    for name in campaign_names():
        campaign = get_campaign(name)
        print(
            f"{name:<14} {campaign.trial_count():>3} trials  "
            f"{campaign.description}"
        )
    return 0


def cmd_campaign_summarize(args: argparse.Namespace) -> int:
    """Handle ``repro campaign summarize``."""
    from repro.experiments import ResultStore

    if not args.store and not args.name:
        raise SystemExit("one of --store or --name is required")
    path = Path(args.store) if args.store else _store_path(args, args.name)
    if not path.exists():
        raise SystemExit(f"no result store at {path}")
    store = ResultStore(path)
    reclaimed = store.compact()
    if reclaimed:
        print(f"compacted store: dropped {reclaimed} superseded line(s)")
    records = store.records(scenario=args.scenario)
    if not records:
        raise SystemExit(f"store {path} has no matching records")
    print(f"store: {path} ({len(store)} records, scenarios: {store.scenarios()})")
    _print_store_summary(records)
    return 0


def cmd_campaign(args: argparse.Namespace) -> int:
    """Dispatch ``repro campaign <action>``."""
    if args.action in ("run", "resume"):
        return cmd_campaign_run(args)
    if args.action == "list":
        return cmd_campaign_list(args)
    return cmd_campaign_summarize(args)


def cmd_trace(args: argparse.Namespace) -> int:
    """Handle ``repro trace`` — render a JSONL span trace as text."""
    from repro.obs import load_trace, render_trace

    try:
        records = load_trace(args.file)
    except (OSError, ValueError) as exc:
        raise SystemExit(str(exc)) from exc
    print(render_trace(records, width=args.width))
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Handle ``repro info``."""
    structure = make_structure(args.shape)
    from repro.portals.portals import PortalSystem

    print(f"n = {len(structure)}")
    print(f"edges = {structure.edge_count()}")
    print(f"diameter = {structure_diameter(structure)}")
    for axis in Axis:
        system = PortalSystem(structure, axis)
        print(f"{axis.name}-portals: {system.portal_count()} "
              f"(tree: {system.is_portal_graph_tree()})")
    return 0


def _add_trace_flags(parser: argparse.ArgumentParser) -> None:
    """Add the shared ``--trace`` / ``--trace-rounds`` flags."""
    parser.add_argument(
        "--trace",
        metavar="FILE",
        help="write a JSONL span trace of the run (view: repro trace FILE)",
    )
    parser.add_argument(
        "--trace-rounds",
        action="store_true",
        help="with --trace: one span per beep round (verbose, slower)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shortest path forests in programmable matter (PODC 2024 reproduction)",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKEND_NAMES),
        default="auto",
        help="execution backend for compiled layouts and grid indexes "
        "(auto: numpy when importable; results are bit-identical either way)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a (k, l)-SPF instance")
    solve.add_argument("--shape", default="hexagon:4", help="e.g. hexagon:4, random:200:7")
    solve.add_argument("-k", type=int, default=2, help="number of sources")
    solve.add_argument("-l", type=int, default=5, help="number of destinations")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--spread", action="store_true", help="spread sources far apart")
    solve.add_argument(
        "--scheduler",
        default="",
        metavar="NAME[:PARAM]",
        help="event-driven activation scheduler: sync, random:SEED, "
        "adversarial:DELTA, weighted:SEED",
    )
    solve.add_argument("--ascii", action="store_true", help="render the forest")
    solve.add_argument(
        "--deadline", type=float, default=0.0, metavar="SECONDS",
        help="give up after this much wall time (0 = unbounded)",
    )
    _add_trace_flags(solve)
    solve.set_defaults(func=cmd_solve)

    route = sub.add_parser(
        "route", help="route tokens along a solved shortest path forest"
    )
    route.add_argument("--shape", default="hexagon:4", help="e.g. hexagon:4, random:200:7")
    route.add_argument("-k", type=int, default=1, help="number of sources")
    route.add_argument("-l", type=int, default=5, help="number of destinations")
    route.add_argument("--seed", type=int, default=0)
    route.add_argument("--spread", action="store_true", help="spread sources far apart")
    route.add_argument(
        "--tokens",
        type=int,
        default=0,
        help="route this many tokens from random forest members "
        "(default: one token per destination)",
    )
    route.add_argument(
        "--deadline", type=float, default=0.0, metavar="SECONDS",
        help="give up after this much wall time (0 = unbounded)",
    )
    _add_trace_flags(route)
    route.set_defaults(func=cmd_route)

    churn = sub.add_parser(
        "churn", help="dynamic SPF: edit stream + incremental repair"
    )
    churn.add_argument("--shape", default="random:200:1")
    churn.add_argument("-k", type=int, default=1, help="number of sources")
    churn.add_argument("-l", type=int, default=5, help="number of destinations")
    churn.add_argument("--seed", type=int, default=0)
    churn.add_argument("--spread", action="store_true", help="spread sources far apart")
    churn.add_argument(
        "--kind",
        default="mixed",
        help="edit flavor: growth, erosion, tunnel, block_move, mixed",
    )
    churn.add_argument("--steps", type=int, default=8, help="edit batches to apply")
    churn.add_argument("--batch", type=int, default=3, help="operations per batch")
    churn.add_argument(
        "--threshold",
        type=float,
        default=0.2,
        help="dirty fraction that triggers a full re-solve",
    )
    churn.add_argument(
        "--crash", type=int, default=0, help="crash this many random amoebots"
    )
    churn.add_argument(
        "--drop", type=float, default=0.0, help="per-beep drop probability"
    )
    churn.add_argument(
        "--scheduler",
        default="",
        metavar="NAME[:PARAM]",
        help="event-driven activation scheduler (see 'solve --help')",
    )
    churn.add_argument("--ascii", action="store_true", help="render the final frame")
    churn.add_argument(
        "--deadline", type=float, default=0.0, metavar="SECONDS",
        help="give up after this much wall time (0 = unbounded)",
    )
    _add_trace_flags(churn)
    churn.set_defaults(func=cmd_churn)

    sweep = sub.add_parser("sweep", help="round-complexity sweeps")
    sweep.add_argument("experiment", choices=["spsp", "sssp", "forest"])
    sweep.set_defaults(func=cmd_sweep)

    campaign = sub.add_parser(
        "campaign", help="declarative experiment campaigns"
    )
    campaign.add_argument(
        "action",
        choices=["run", "resume", "list", "summarize"],
        help="run/resume a campaign, list built-ins, summarize a store",
    )
    campaign.add_argument("--name", help="built-in campaign name (see 'list')")
    campaign.add_argument("--spec", help="path to a campaign JSON file")
    campaign.add_argument(
        "--store",
        help="JSONL result store path (default: campaigns/<name>.jsonl)",
    )
    campaign.add_argument(
        "--workers", type=int, default=1, help="parallel worker processes"
    )
    campaign.add_argument(
        "--fresh",
        action="store_true",
        help="ignore cached results and re-execute every trial",
    )
    campaign.add_argument(
        "--scenario", help="summarize: restrict to one scenario"
    )
    campaign.add_argument(
        "--scheduler",
        default="",
        metavar="NAME[:PARAM]",
        help="run/resume: override every scenario's scheduler axis",
    )
    campaign.add_argument(
        "--quiet", action="store_true", help="suppress per-trial progress lines"
    )
    campaign.add_argument(
        "--trace-dir",
        help="run/resume: spool one JSONL span trace per worker into "
        "this directory (view: repro trace <dir>/trials-<pid>.jsonl)",
    )
    campaign.set_defaults(func=cmd_campaign)

    serve = sub.add_parser(
        "serve", help="run the solver daemon (HTTP job API, JSONL streaming)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8100,
                       help="listen port (0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker threads executing jobs")
    serve.add_argument(
        "--queue-depth", type=int, default=64, metavar="N",
        help="bound on queued jobs: beyond it cold submissions get "
        "429 + Retry-After while warm cache hits are still served",
    )
    serve.add_argument(
        "--store",
        help="JSONL result store path: results persist and a restarted "
        "daemon resumes from them (default: in-memory)",
    )
    serve.add_argument(
        "--scheduler",
        default="",
        metavar="NAME[:PARAM]",
        help="session-wide default activation scheduler (see 'solve --help')",
    )
    from repro.obs.logs import LOG_FORMATS, LOG_LEVELS

    serve.add_argument(
        "--log-level",
        choices=list(LOG_LEVELS),
        default="info",
        help="structured log verbosity on stderr (debug also logs HTTP access)",
    )
    serve.add_argument(
        "--log-format",
        choices=list(LOG_FORMATS),
        default="text",
        help="log line format: human text or one JSON object per line",
    )
    serve.add_argument(
        "--metrics-interval",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="with --store: append a metrics snapshot to metrics.jsonl "
        "next to the store every SECONDS (0 = off)",
    )
    serve.set_defaults(func=cmd_serve)

    chaos = sub.add_parser(
        "chaos",
        help="resilience smoke drill: flaky store, deadlines, "
        "backpressure, crashing workers",
    )
    chaos.add_argument(
        "--trials", type=int, default=12, metavar="N",
        help="campaign size for the worker-crash drill",
    )
    chaos.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="campaign process fan-out (crashes need workers >= 2)",
    )
    chaos.set_defaults(func=cmd_chaos)

    trace = sub.add_parser(
        "trace", help="render a JSONL span trace as a text flamegraph"
    )
    trace.add_argument("file", help="trace file written by --trace / --trace-dir")
    trace.add_argument(
        "--width", type=int, default=40, help="bar width of a 100%% span"
    )
    trace.set_defaults(func=cmd_trace)

    info = sub.add_parser("info", help="describe a generated structure")
    info.add_argument("--shape", default="hexagon:3")
    info.set_defaults(func=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        set_default_backend(args.backend)
    except (ValueError, BackendUnavailableError) as exc:
        raise SystemExit(str(exc)) from exc
    try:
        return args.func(args)
    except BrokenPipeError:  # e.g. `repro campaign summarize | head`
        try:
            sys.stdout.close()
        except BrokenPipeError:
            pass
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
