"""Command line interface: ``python -m repro <command>``.

Commands
--------
``solve``
    Solve a (k, l)-SPF instance on a generated structure and print the
    result (rounds, assignments, optional ASCII rendering).
``sweep``
    Quick round-complexity sweeps (spsp / sssp / forest) printing the
    same tables as the benchmark harness, at smaller sizes.
``info``
    Describe a generated structure (portals, diameter, holes).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.grid.directions import Axis
from repro.grid.oracle import structure_diameter
from repro.grid.structure import AmoebotStructure
from repro.metrics.records import ResultTable
from repro.sim.engine import CircuitEngine
from repro.spf.api import solve_spf
from repro.viz.ascii_art import render_forest_ascii
from repro.workloads import (
    comb,
    hexagon,
    line_structure,
    parallelogram,
    random_hole_free,
    sample_sources_destinations,
    spread_nodes,
    staircase,
    triangle,
)


def make_structure(spec: str) -> AmoebotStructure:
    """Build a structure from a CLI spec like ``hexagon:3`` or ``random:200:7``.

    Supported: ``hexagon:R``, ``parallelogram:W:H``, ``triangle:S``,
    ``line:N``, ``comb:T:L``, ``staircase:S:W``, ``random:N[:SEED]``,
    ``dendrite:N[:SEED]``.
    """
    name, *args = spec.split(":")
    values = [int(a) for a in args]
    try:
        if name == "hexagon":
            return hexagon(*values)
        if name == "parallelogram":
            return parallelogram(*values)
        if name == "triangle":
            return triangle(*values)
        if name == "line":
            return line_structure(*values)
        if name == "comb":
            return comb(*values)
        if name == "staircase":
            return staircase(*values)
        if name == "random":
            n = values[0]
            seed = values[1] if len(values) > 1 else 0
            return random_hole_free(n, seed=seed)
        if name == "dendrite":
            n = values[0]
            seed = values[1] if len(values) > 1 else 0
            return random_hole_free(n, seed=seed, compactness=0.05)
    except TypeError as exc:
        raise SystemExit(f"bad arguments for shape {name!r}: {exc}") from exc
    raise SystemExit(f"unknown shape {name!r}")


def cmd_solve(args: argparse.Namespace) -> int:
    """Handle ``repro solve``."""
    structure = make_structure(args.shape)
    if args.spread:
        sources = spread_nodes(structure, args.k)
        rest = [u for u in sorted(structure.nodes) if u not in set(sources)]
        destinations = rest[: args.l]
    else:
        sources, destinations = sample_sources_destinations(
            structure, args.k, args.l, seed=args.seed
        )
    solution = solve_spf(structure, sources, destinations)
    print(f"n = {len(structure)}, k = {args.k}, l = {args.l}")
    print(f"algorithm: {solution.algorithm}")
    print(f"synchronous rounds: {solution.rounds}")
    print(f"forest members: {len(solution.forest.members)}")
    for d in destinations:
        root = solution.forest.root_of(d)
        depth = solution.forest.depth_of(d)
        print(f"  {tuple(d)} -> {tuple(root)} ({depth} hops)")
    if args.ascii:
        print()
        print(
            render_forest_ascii(
                structure, sources, destinations, solution.forest.members
            )
        )
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    """Handle ``repro sweep``."""
    if args.experiment == "spsp":
        table = ResultTable("SPSP rounds vs n", ["n", "rounds"])
        for n in (50, 100, 200, 400):
            s = random_hole_free(n, seed=1)
            nodes = sorted(s.nodes)
            engine = CircuitEngine(s)
            from repro.spf.spt import shortest_path_tree

            shortest_path_tree(engine, s, nodes[0], [nodes[-1]])
            table.add(n, engine.rounds.total)
    elif args.experiment == "sssp":
        table = ResultTable("SSSP rounds vs n", ["n", "rounds"])
        for n in (50, 100, 200, 400):
            s = random_hole_free(n, seed=1)
            nodes = sorted(s.nodes)
            engine = CircuitEngine(s)
            from repro.spf.spt import shortest_path_tree

            shortest_path_tree(engine, s, nodes[0], nodes)
            table.add(n, engine.rounds.total)
    elif args.experiment == "forest":
        table = ResultTable("forest rounds vs k (n = 200)", ["k", "rounds"])
        s = random_hole_free(200, seed=1)
        for k in (2, 4, 8, 16):
            sources = spread_nodes(s, k)
            engine = CircuitEngine(s)
            from repro.spf.forest import shortest_path_forest

            shortest_path_forest(engine, s, sources)
            table.add(k, engine.rounds.total)
    else:  # pragma: no cover - argparse restricts choices
        raise SystemExit(f"unknown experiment {args.experiment!r}")
    print(table.render())
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    """Handle ``repro info``."""
    structure = make_structure(args.shape)
    from repro.portals.portals import PortalSystem

    print(f"n = {len(structure)}")
    print(f"edges = {structure.edge_count()}")
    print(f"diameter = {structure_diameter(structure)}")
    for axis in Axis:
        system = PortalSystem(structure, axis)
        print(f"{axis.name}-portals: {system.portal_count()} "
              f"(tree: {system.is_portal_graph_tree()})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Shortest path forests in programmable matter (PODC 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    solve = sub.add_parser("solve", help="solve a (k, l)-SPF instance")
    solve.add_argument("--shape", default="hexagon:4", help="e.g. hexagon:4, random:200:7")
    solve.add_argument("-k", type=int, default=2, help="number of sources")
    solve.add_argument("-l", type=int, default=5, help="number of destinations")
    solve.add_argument("--seed", type=int, default=0)
    solve.add_argument("--spread", action="store_true", help="spread sources far apart")
    solve.add_argument("--ascii", action="store_true", help="render the forest")
    solve.set_defaults(func=cmd_solve)

    sweep = sub.add_parser("sweep", help="round-complexity sweeps")
    sweep.add_argument("experiment", choices=["spsp", "sssp", "forest"])
    sweep.set_defaults(func=cmd_sweep)

    info = sub.add_parser("info", help="describe a generated structure")
    info.add_argument("--shape", default="hexagon:3")
    info.set_defaults(func=cmd_info)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
