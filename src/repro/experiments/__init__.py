"""Declarative scenario campaigns: specs, parallel runner, result store.

The experiment subsystem turns "one solve at a time" into a campaign
platform:

* :mod:`~repro.experiments.spec` — scenarios and campaigns as data
  (dataclasses round-trippable through JSON), expanded into
  content-hashed :class:`TrialSpec` grids.
* :mod:`~repro.experiments.runner` — a :class:`CampaignRunner` that
  executes trials inline or across a process pool with deterministic
  per-trial seeds.
* :mod:`~repro.experiments.store` — an append-only JSONL
  :class:`ResultStore`; re-running a campaign skips every trial whose
  content hash is already recorded.
* :mod:`~repro.experiments.aggregate` — groupby summaries and
  growth-shape fits (flat / log / polylog / linear) over records.
* :mod:`~repro.experiments.registry` — named built-in campaigns
  mirroring the paper's experiment index.

Quickstart::

    from repro.experiments import ResultStore, get_campaign, run_campaign

    store = ResultStore("campaigns/forest.jsonl")
    report = run_campaign(get_campaign("forest"), store=store, workers=4)
    print(report.summary())   # re-running reports every trial cached
"""

from repro.experiments.aggregate import (
    GrowthFit,
    classify_growth,
    group_records,
    growth_report,
    summarize,
    summary_table,
    sweep_axis,
)
from repro.experiments.registry import (
    campaign_names,
    get_campaign,
    register_campaign,
)
from repro.experiments.runner import (
    CampaignReport,
    CampaignRunner,
    TrialResult,
    execute_trial,
    run_campaign,
)
from repro.experiments.spec import (
    ALL_NODES,
    CampaignSpec,
    ScenarioSpec,
    SpecError,
    TrialSpec,
    expand_trials,
)
from repro.experiments.store import ResultStore

__all__ = [
    "ALL_NODES",
    "CampaignReport",
    "CampaignRunner",
    "CampaignSpec",
    "GrowthFit",
    "ResultStore",
    "ScenarioSpec",
    "SpecError",
    "TrialResult",
    "TrialSpec",
    "campaign_names",
    "classify_growth",
    "execute_trial",
    "expand_trials",
    "get_campaign",
    "group_records",
    "growth_report",
    "register_campaign",
    "run_campaign",
    "summarize",
    "summary_table",
    "sweep_axis",
]
