"""Campaign execution: expand specs into trials, run them in parallel.

The runner is deliberately split in two layers:

* :func:`execute_trial` — a pure, module-level function from
  :class:`TrialSpec` to :class:`TrialResult`.  Being top-level makes it
  picklable, so the same function body runs inline (``workers <= 1``)
  and inside :class:`~concurrent.futures.ProcessPoolExecutor` workers.
* :class:`CampaignRunner` — orchestration: cache lookups against a
  :class:`~repro.experiments.store.ResultStore`, worker fan-out, and
  progress reporting.

Determinism: a trial's source/destination sampling seed is derived from
its content hash (:meth:`TrialSpec.sampling_seed`), never from runner
state, so serial and parallel runs produce bit-identical records.
"""

from __future__ import annotations

import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.spec import ALL_NODES, CampaignSpec, TrialSpec, expand_trials
from repro.experiments.store import ResultStore
from repro.grid.coords import Node
from repro.grid.oracle import structure_diameter
from repro.grid.structure import AmoebotStructure
from repro.obs import Tracer, trace_span, use_tracer
from repro.sim.circuits import LayoutCache
from repro.sim.engine import CircuitEngine
from repro.workloads.samplers import sample_sources_destinations, spread_nodes
from repro.workloads.specs import build_structure

#: Directory per-trial span traces are spooled into, or ``None`` (off).
#: A module global (not runner state) because trials execute in worker
#: *processes*: the pool initializer sets it in each worker, and every
#: worker appends to its own ``trials-<pid>.jsonl`` — no cross-process
#: file contention, no pickling of tracer objects.
_TRACE_DIR: Optional[str] = None


def _set_trace_dir(path: Optional[str]) -> None:
    """Install the trace spool directory (process-pool initializer)."""
    global _TRACE_DIR
    _TRACE_DIR = path

#: Process-wide layout cache shared by every trial a worker executes.
#: Keys are scoped by the trial structure's node set, so trials over the
#: same shape (different seeds, algorithms, or endpoint placements) reuse
#: one frozen-and-compiled layout per wiring fingerprint instead of
#: rebuilding and recompiling it per trial.  Bounded LRU: long campaigns
#: with many distinct shapes cannot pin unbounded layout memory.
_WORKER_LAYOUTS = LayoutCache(maxsize=128)


def _trial_engine(structure: AmoebotStructure, scheduler: str = "") -> CircuitEngine:
    """An engine whose layout cache is shared across the worker's trials.

    A non-empty ``scheduler`` spec selects the event-driven
    :class:`~repro.sched.ActivationEngine` (activation counts and
    scheduler time become part of the trial record).
    """
    layouts = _WORKER_LAYOUTS.scoped(frozenset(structure.nodes))
    if scheduler:
        from repro.sched import ActivationEngine

        return ActivationEngine(structure, scheduler=scheduler, layouts=layouts)
    return CircuitEngine(structure, layouts=layouts)


@dataclass
class TrialResult:
    """Everything measured for one executed trial."""

    key: str
    scenario: str
    shape: str
    n: int
    k: int
    l: int
    seed: int
    algorithm: str
    resolved: str
    placement: str
    rounds: int
    forest_members: int
    elapsed_s: float
    diameter: Optional[int] = None
    sections: Dict[str, int] = field(default_factory=dict)
    cached: bool = False
    # Scheduler-axis extras (new keys appended to the record; every
    # pre-existing key above is untouched, so old stores keep loading).
    scheduler: str = ""
    activations: Optional[int] = None
    sched_time: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Flatten into the JSON-ready record the store persists."""
        return {
            "key": self.key,
            "scenario": self.scenario,
            "shape": self.shape,
            "n": self.n,
            "k": self.k,
            "l": self.l,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "resolved": self.resolved,
            "placement": self.placement,
            "rounds": self.rounds,
            "forest_members": self.forest_members,
            "elapsed_s": self.elapsed_s,
            "diameter": self.diameter,
            "sections": dict(self.sections),
            "cached": self.cached,
            "scheduler": self.scheduler,
            "activations": self.activations,
            "sched_time": self.sched_time,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrialResult":
        """Rebuild from a stored record, ignoring unknown fields."""
        known = {
            "key", "scenario", "shape", "n", "k", "l", "seed", "algorithm",
            "resolved", "placement", "rounds", "forest_members", "elapsed_s",
            "diameter", "sections", "cached", "scheduler", "activations",
            "sched_time",
        }
        kwargs = {name: data[name] for name in known if name in data}
        return cls(**kwargs)  # type: ignore[arg-type]


def _pick_endpoints(
    structure: AmoebotStructure, trial: TrialSpec
) -> Tuple[List[Node], List[Node]]:
    """Choose sources and destinations per the trial's placement policy."""
    ordered = sorted(structure.nodes)
    n = len(ordered)
    if trial.k > n:
        raise ValueError(
            f"trial {trial.key()}: k = {trial.k} exceeds structure size {n}"
        )
    want_all = trial.l == ALL_NODES
    if not want_all and trial.k + trial.l > n:
        # Reject rather than silently truncate: a record claiming l
        # destinations must have been measured with exactly l.
        raise ValueError(
            f"trial {trial.key()}: cannot pick {trial.k}+{trial.l} "
            f"disjoint nodes from {n}"
        )

    if trial.placement == "extremes":
        sources = ordered[: trial.k]
        destinations = list(ordered) if want_all else ordered[n - trial.l:]
    elif trial.placement == "spread":
        sources = spread_nodes(structure, trial.k)
        if want_all:
            destinations = list(ordered)
        else:
            chosen = set(sources)
            destinations = [u for u in ordered if u not in chosen][: trial.l]
    else:  # random
        if want_all:
            rng = random.Random(trial.sampling_seed())
            sources = rng.sample(ordered, trial.k)
            destinations = list(ordered)
        else:
            sources, destinations = sample_sources_destinations(
                structure, trial.k, trial.l, seed=trial.sampling_seed()
            )
    if not destinations:
        raise ValueError(f"trial {trial.key()}: no destinations (l = {trial.l})")
    return sources, destinations


def _execute_churn_trial(
    trial: TrialSpec,
    structure: AmoebotStructure,
    sources: List[Node],
    destinations: List[Node],
) -> Tuple[int, int, Dict[str, int], int, Optional[float]]:
    """Initial solve + churn/repair loop.

    Returns ``(members, rounds, extras, activations, sched_time)``.

    The dynamics engine owns its layout cache (the structure mutates
    every batch, so the worker-wide shape-keyed cache does not apply).
    Churn is seeded from the trial's content hash, so records are
    reproducible across runs and worker counts.
    """
    from repro.api import Session
    from repro.dynamics import DynamicSPF, generate_churn

    # A per-trial session: churn mutates the structure, so nothing is
    # shareable beyond the engine policy (scheduler spec, backend).
    dyn = DynamicSPF(
        structure,
        sources,
        destinations if trial.l != ALL_NODES else None,
        session=Session(scheduler=trial.scheduler),
    )
    script = generate_churn(
        structure,
        trial.churn,
        steps=trial.churn_steps,
        batch_size=trial.churn_batch,
        seed=trial.sampling_seed(),
        protected=dyn.protected,
    )
    stats = dyn.apply_script(script)
    extras: Dict[str, int] = {
        "edit_batches": len(stats),
        "edit_ops": sum(s.batch_ops for s in stats),
        "repairs_patch": sum(1 for s in stats if s.mode == "patch"),
        "repairs_full": sum(1 for s in stats if s.mode == "full"),
        "repair_rounds": sum(s.rounds for s in stats),
        "wave_rounds": sum(s.wave_rounds for s in stats),
        "dirty_nodes": sum(s.dirty for s in stats),
    }
    sched_stats = getattr(dyn.engine, "stats", None)
    sched_time = round(sched_stats.time, 6) if sched_stats is not None else None
    return (
        len(dyn.forest.members),
        dyn.engine.rounds.total,
        extras,
        dyn.engine.rounds.activations,
        sched_time,
    )


def execute_trial(trial: TrialSpec) -> TrialResult:
    """Run one trial and measure rounds, forest size and wall time.

    When a trace spool directory is installed (``--trace-dir``), the
    whole trial runs under a span tracer whose records are appended —
    tagged with the trial key — to this process's
    ``trials-<pid>.jsonl`` in that directory.
    """
    if _TRACE_DIR is None:
        return _run_trial(trial)
    tracer = Tracer()
    with use_tracer(tracer):
        with trace_span(
            "trial",
            scenario=trial.scenario,
            shape=trial.shape,
            seed=trial.seed,
            algorithm=trial.algorithm,
        ) as span:
            result = _run_trial(trial)
            span.set(rounds=result.rounds)
    tracer.dump(
        os.path.join(_TRACE_DIR, f"trials-{os.getpid()}.jsonl"),
        append=True,
        extra={"trial": trial.key()},
    )
    return result


def _run_trial(trial: TrialSpec) -> TrialResult:
    """The untraced trial body (see :func:`execute_trial`)."""
    with trace_span("build", shape=trial.shape):
        structure = build_structure(trial.shape)
        sources, destinations = _pick_endpoints(structure, trial)
    resolved = trial.algorithm
    start = time.perf_counter()

    if trial.churn:
        with trace_span("rounds", algorithm="dynamic") as churn_span:
            (
                members, total_rounds, extras, activations, sched_time,
            ) = _execute_churn_trial(trial, structure, sources, destinations)
            churn_span.set(rounds=total_rounds)
        elapsed = time.perf_counter() - start
        sections: Dict[str, int] = dict(extras)
        return TrialResult(
            key=trial.key(),
            scenario=trial.scenario,
            shape=trial.shape,
            n=len(structure),
            k=trial.k,
            l=trial.l,
            seed=trial.seed,
            algorithm=trial.algorithm,
            resolved="dynamic",
            placement=trial.placement,
            rounds=total_rounds,
            forest_members=members,
            elapsed_s=round(elapsed, 6),
            diameter=(
                structure_diameter(structure) if trial.measure_diameter else None
            ),
            sections=sections,
            scheduler=trial.scheduler,
            activations=activations,
            sched_time=sched_time,
        )

    engine = _trial_engine(structure, trial.scheduler)
    with trace_span("rounds", algorithm=trial.algorithm) as rounds_span:
        if trial.algorithm == "auto":
            from repro.spf.api import solve_spf

            solution = solve_spf(structure, sources, destinations, engine=engine)
            members = len(solution.forest.members)
            resolved = solution.algorithm
        elif trial.algorithm == "spt":
            from repro.spf.spt import shortest_path_tree

            spt = shortest_path_tree(engine, structure, sources[0], destinations)
            members = len(spt.members)
        elif trial.algorithm == "forest":
            from repro.spf.forest import shortest_path_forest

            forest = shortest_path_forest(
                engine,
                structure,
                sources,
                destinations if trial.l != ALL_NODES else None,
            )
            members = len(forest.members)
        elif trial.algorithm == "sequential":
            from repro.baselines.sequential_merge import sequential_merge_forest

            forest = sequential_merge_forest(engine, structure, sources)
            members = len(forest.members)
        elif trial.algorithm == "wave":
            from repro.baselines.bfs_wave import bfs_wave_forest

            forest = bfs_wave_forest(
                engine, structure, set(sources), set(destinations)
            )
            members = len(forest.members)
        else:  # pragma: no cover - spec validation rejects this earlier
            raise ValueError(f"unknown algorithm {trial.algorithm!r}")
        rounds_span.set(algorithm=resolved, rounds=engine.rounds.total)

    elapsed = time.perf_counter() - start
    sched_stats = getattr(engine, "stats", None)
    return TrialResult(
        key=trial.key(),
        scenario=trial.scenario,
        shape=trial.shape,
        n=len(structure),
        k=trial.k,
        l=trial.l,
        seed=trial.seed,
        algorithm=trial.algorithm,
        resolved=resolved,
        placement=trial.placement,
        rounds=engine.rounds.total,
        forest_members=members,
        elapsed_s=round(elapsed, 6),
        diameter=structure_diameter(structure) if trial.measure_diameter else None,
        sections=dict(engine.rounds.breakdown()),
        scheduler=trial.scheduler,
        activations=engine.rounds.activations,
        sched_time=(
            round(sched_stats.time, 6) if sched_stats is not None else None
        ),
    )


@dataclass
class CampaignReport:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    campaign: str
    results: List[TrialResult]
    executed: int
    cache_hits: int
    elapsed_s: float

    @property
    def total(self) -> int:
        """Total trials in the campaign (executed + cached)."""
        return len(self.results)

    def records(self) -> List[Dict[str, object]]:
        """All results as plain dicts (aggregate-ready)."""
        return [r.to_dict() for r in self.results]

    def summary(self) -> str:
        """One human-readable line: totals, cache hits, wall time."""
        return (
            f"campaign {self.campaign!r}: {self.total} trials, "
            f"{self.executed} executed, {self.cache_hits} cache hits "
            f"({self.elapsed_s:.2f}s)"
        )


ProgressFn = Callable[[TrialSpec, TrialResult, int, int], None]


class CampaignRunner:
    """Expands a campaign and executes its trials, possibly in parallel.

    Parameters
    ----------
    store:
        Result store consulted for cached trials and appended to as
        trials complete.  Defaults to a fresh in-memory store.
    workers:
        ``<= 1`` runs inline; otherwise a ``ProcessPoolExecutor`` with
        that many workers.  Results are identical either way.
    trace_dir:
        When set, every trial runs under a span tracer and each worker
        process appends its trials' spans to ``trials-<pid>.jsonl`` in
        this directory (created if missing).  ``None`` (default) runs
        the uninstrumented path.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        trace_dir: Optional[os.PathLike] = None,
    ):
        self.store = store if store is not None else ResultStore()
        self.workers = max(1, int(workers))
        self.trace_dir = str(trace_dir) if trace_dir else None
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)

    def run(
        self,
        campaign: CampaignSpec,
        resume: bool = True,
        progress: Optional[ProgressFn] = None,
    ) -> CampaignReport:
        """Execute every trial of ``campaign`` not already in the store.

        With ``resume=False`` cached records are ignored (and
        overwritten in the store's in-memory view; the JSONL log keeps
        both, last write wins on reload).
        """
        trials = expand_trials(campaign.trials())
        started = time.perf_counter()
        cached: Dict[str, TrialResult] = {}
        todo: List[TrialSpec] = []
        for trial in trials:
            record = self.store.get(trial.key()) if resume else None
            if record is not None:
                # Cached results keep their originally recorded scenario
                # label, so the report always matches the store contents
                # (a hit may come from another campaign's scenario).
                result = TrialResult.from_dict(record)
                result.cached = True
                cached[trial.key()] = result
            else:
                todo.append(trial)

        fresh = self._execute(todo, progress, total=len(trials), done=len(cached))

        results: List[TrialResult] = []
        for trial in trials:
            key = trial.key()
            results.append(cached[key] if key in cached else fresh[key])
        return CampaignReport(
            campaign=campaign.name,
            results=results,
            executed=len(fresh),
            cache_hits=len(cached),
            elapsed_s=round(time.perf_counter() - started, 6),
        )

    def _execute(
        self,
        todo: Sequence[TrialSpec],
        progress: Optional[ProgressFn],
        total: int,
        done: int,
    ) -> Dict[str, TrialResult]:
        out: Dict[str, TrialResult] = {}
        if not todo:
            return out

        def record(trial: TrialSpec, result: TrialResult, done: int) -> None:
            # Persist immediately so an interrupted campaign resumes
            # from the last completed trial, not from scratch.
            out[trial.key()] = result
            self.store.add(result.to_dict())
            if progress is not None:
                progress(trial, result, done, total)

        if self.workers == 1:
            previous = _TRACE_DIR
            _set_trace_dir(self.trace_dir or previous)
            try:
                for trial in todo:
                    done += 1
                    record(trial, execute_trial(trial), done)
            finally:
                _set_trace_dir(previous)
            return out
        with ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_set_trace_dir,
            initargs=(self.trace_dir,),
        ) as pool:
            futures = {pool.submit(execute_trial, trial): trial for trial in todo}
            for future in as_completed(futures):
                done += 1
                record(futures[future], future.result(), done)
        return out


def run_campaign(
    campaign: CampaignSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
) -> CampaignReport:
    """Convenience wrapper: ``CampaignRunner(store, workers).run(...)``."""
    return CampaignRunner(store=store, workers=workers).run(
        campaign, resume=resume, progress=progress
    )
