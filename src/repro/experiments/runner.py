"""Campaign execution: expand specs into trials, run them in parallel.

The runner is deliberately split in two layers:

* :func:`execute_trial` — a pure, module-level function from
  :class:`TrialSpec` to :class:`TrialResult`.  Being top-level makes it
  picklable, so the same function body runs inline (``workers <= 1``)
  and inside :class:`~concurrent.futures.ProcessPoolExecutor` workers.
* :class:`CampaignRunner` — orchestration: cache lookups against a
  :class:`~repro.experiments.store.ResultStore`, worker fan-out, and
  progress reporting.

Determinism: a trial's source/destination sampling seed is derived from
its content hash (:meth:`TrialSpec.sampling_seed`), never from runner
state, so serial and parallel runs produce bit-identical records.
"""

from __future__ import annotations

import logging
import os
import random
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.spec import ALL_NODES, CampaignSpec, TrialSpec, expand_trials
from repro.experiments.store import ResultStore
from repro.grid.coords import Node
from repro.grid.oracle import structure_diameter
from repro.grid.structure import AmoebotStructure
from repro.obs import Tracer, trace_span, use_tracer
from repro.resilience import CancellationToken, RetryPolicy
from repro.sim.circuits import LayoutCache
from repro.sim.engine import CircuitEngine
from repro.workloads.samplers import sample_sources_destinations, spread_nodes
from repro.workloads.specs import build_structure

logger = logging.getLogger("repro.experiments.runner")

#: ``record`` marker of the structured failure records a quarantined
#: trial leaves in the store.  Resume treats them as *not* cached — a
#: later run re-attempts the trial — but campaign reports surface them
#: so a poisoned trial is an accountable line item, not a lost abort.
QUARANTINE_RECORD = "quarantined-trial"

#: Directory per-trial span traces are spooled into, or ``None`` (off).
#: A module global (not runner state) because trials execute in worker
#: *processes*: the pool initializer sets it in each worker, and every
#: worker appends to its own ``trials-<pid>.jsonl`` — no cross-process
#: file contention, no pickling of tracer objects.
_TRACE_DIR: Optional[str] = None


def _set_trace_dir(path: Optional[str]) -> None:
    """Install the trace spool directory (process-pool initializer)."""
    global _TRACE_DIR
    _TRACE_DIR = path

#: Process-wide layout cache shared by every trial a worker executes.
#: Keys are scoped by the trial structure's node set, so trials over the
#: same shape (different seeds, algorithms, or endpoint placements) reuse
#: one frozen-and-compiled layout per wiring fingerprint instead of
#: rebuilding and recompiling it per trial.  Bounded LRU: long campaigns
#: with many distinct shapes cannot pin unbounded layout memory.
_WORKER_LAYOUTS = LayoutCache(maxsize=128)


def _trial_engine(structure: AmoebotStructure, scheduler: str = "") -> CircuitEngine:
    """An engine whose layout cache is shared across the worker's trials.

    A non-empty ``scheduler`` spec selects the event-driven
    :class:`~repro.sched.ActivationEngine` (activation counts and
    scheduler time become part of the trial record).
    """
    layouts = _WORKER_LAYOUTS.scoped(frozenset(structure.nodes))
    if scheduler:
        from repro.sched import ActivationEngine

        return ActivationEngine(structure, scheduler=scheduler, layouts=layouts)
    return CircuitEngine(structure, layouts=layouts)


@dataclass
class TrialResult:
    """Everything measured for one executed trial."""

    key: str
    scenario: str
    shape: str
    n: int
    k: int
    l: int
    seed: int
    algorithm: str
    resolved: str
    placement: str
    rounds: int
    forest_members: int
    elapsed_s: float
    diameter: Optional[int] = None
    sections: Dict[str, int] = field(default_factory=dict)
    cached: bool = False
    # Scheduler-axis extras (new keys appended to the record; every
    # pre-existing key above is untouched, so old stores keep loading).
    scheduler: str = ""
    activations: Optional[int] = None
    sched_time: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        """Flatten into the JSON-ready record the store persists."""
        return {
            "key": self.key,
            "scenario": self.scenario,
            "shape": self.shape,
            "n": self.n,
            "k": self.k,
            "l": self.l,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "resolved": self.resolved,
            "placement": self.placement,
            "rounds": self.rounds,
            "forest_members": self.forest_members,
            "elapsed_s": self.elapsed_s,
            "diameter": self.diameter,
            "sections": dict(self.sections),
            "cached": self.cached,
            "scheduler": self.scheduler,
            "activations": self.activations,
            "sched_time": self.sched_time,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrialResult":
        """Rebuild from a stored record, ignoring unknown fields."""
        known = {
            "key", "scenario", "shape", "n", "k", "l", "seed", "algorithm",
            "resolved", "placement", "rounds", "forest_members", "elapsed_s",
            "diameter", "sections", "cached", "scheduler", "activations",
            "sched_time",
        }
        kwargs = {name: data[name] for name in known if name in data}
        return cls(**kwargs)  # type: ignore[arg-type]


def _pick_endpoints(
    structure: AmoebotStructure, trial: TrialSpec
) -> Tuple[List[Node], List[Node]]:
    """Choose sources and destinations per the trial's placement policy."""
    ordered = sorted(structure.nodes)
    n = len(ordered)
    if trial.k > n:
        raise ValueError(
            f"trial {trial.key()}: k = {trial.k} exceeds structure size {n}"
        )
    want_all = trial.l == ALL_NODES
    if not want_all and trial.k + trial.l > n:
        # Reject rather than silently truncate: a record claiming l
        # destinations must have been measured with exactly l.
        raise ValueError(
            f"trial {trial.key()}: cannot pick {trial.k}+{trial.l} "
            f"disjoint nodes from {n}"
        )

    if trial.placement == "extremes":
        sources = ordered[: trial.k]
        destinations = list(ordered) if want_all else ordered[n - trial.l:]
    elif trial.placement == "spread":
        sources = spread_nodes(structure, trial.k)
        if want_all:
            destinations = list(ordered)
        else:
            chosen = set(sources)
            destinations = [u for u in ordered if u not in chosen][: trial.l]
    else:  # random
        if want_all:
            rng = random.Random(trial.sampling_seed())
            sources = rng.sample(ordered, trial.k)
            destinations = list(ordered)
        else:
            sources, destinations = sample_sources_destinations(
                structure, trial.k, trial.l, seed=trial.sampling_seed()
            )
    if not destinations:
        raise ValueError(f"trial {trial.key()}: no destinations (l = {trial.l})")
    return sources, destinations


def _execute_churn_trial(
    trial: TrialSpec,
    structure: AmoebotStructure,
    sources: List[Node],
    destinations: List[Node],
) -> Tuple[int, int, Dict[str, int], int, Optional[float]]:
    """Initial solve + churn/repair loop.

    Returns ``(members, rounds, extras, activations, sched_time)``.

    The dynamics engine owns its layout cache (the structure mutates
    every batch, so the worker-wide shape-keyed cache does not apply).
    Churn is seeded from the trial's content hash, so records are
    reproducible across runs and worker counts.
    """
    from repro.api import Session
    from repro.dynamics import DynamicSPF, generate_churn

    # A per-trial session: churn mutates the structure, so nothing is
    # shareable beyond the engine policy (scheduler spec, backend).
    dyn = DynamicSPF(
        structure,
        sources,
        destinations if trial.l != ALL_NODES else None,
        session=Session(scheduler=trial.scheduler),
    )
    script = generate_churn(
        structure,
        trial.churn,
        steps=trial.churn_steps,
        batch_size=trial.churn_batch,
        seed=trial.sampling_seed(),
        protected=dyn.protected,
    )
    stats = dyn.apply_script(script)
    extras: Dict[str, int] = {
        "edit_batches": len(stats),
        "edit_ops": sum(s.batch_ops for s in stats),
        "repairs_patch": sum(1 for s in stats if s.mode == "patch"),
        "repairs_full": sum(1 for s in stats if s.mode == "full"),
        "repair_rounds": sum(s.rounds for s in stats),
        "wave_rounds": sum(s.wave_rounds for s in stats),
        "dirty_nodes": sum(s.dirty for s in stats),
    }
    sched_stats = getattr(dyn.engine, "stats", None)
    sched_time = round(sched_stats.time, 6) if sched_stats is not None else None
    return (
        len(dyn.forest.members),
        dyn.engine.rounds.total,
        extras,
        dyn.engine.rounds.activations,
        sched_time,
    )


def execute_trial(trial: TrialSpec) -> TrialResult:
    """Run one trial and measure rounds, forest size and wall time.

    When a trace spool directory is installed (``--trace-dir``), the
    whole trial runs under a span tracer whose records are appended —
    tagged with the trial key — to this process's
    ``trials-<pid>.jsonl`` in that directory.
    """
    if _TRACE_DIR is None:
        return _run_trial(trial)
    tracer = Tracer()
    with use_tracer(tracer):
        with trace_span(
            "trial",
            scenario=trial.scenario,
            shape=trial.shape,
            seed=trial.seed,
            algorithm=trial.algorithm,
        ) as span:
            result = _run_trial(trial)
            span.set(rounds=result.rounds)
    tracer.dump(
        os.path.join(_TRACE_DIR, f"trials-{os.getpid()}.jsonl"),
        append=True,
        extra={"trial": trial.key()},
    )
    return result


def _run_trial(trial: TrialSpec) -> TrialResult:
    """The untraced trial body (see :func:`execute_trial`)."""
    with trace_span("build", shape=trial.shape):
        structure = build_structure(trial.shape)
        sources, destinations = _pick_endpoints(structure, trial)
    resolved = trial.algorithm
    start = time.perf_counter()

    if trial.churn:
        with trace_span("rounds", algorithm="dynamic") as churn_span:
            (
                members, total_rounds, extras, activations, sched_time,
            ) = _execute_churn_trial(trial, structure, sources, destinations)
            churn_span.set(rounds=total_rounds)
        elapsed = time.perf_counter() - start
        sections: Dict[str, int] = dict(extras)
        return TrialResult(
            key=trial.key(),
            scenario=trial.scenario,
            shape=trial.shape,
            n=len(structure),
            k=trial.k,
            l=trial.l,
            seed=trial.seed,
            algorithm=trial.algorithm,
            resolved="dynamic",
            placement=trial.placement,
            rounds=total_rounds,
            forest_members=members,
            elapsed_s=round(elapsed, 6),
            diameter=(
                structure_diameter(structure) if trial.measure_diameter else None
            ),
            sections=sections,
            scheduler=trial.scheduler,
            activations=activations,
            sched_time=sched_time,
        )

    engine = _trial_engine(structure, trial.scheduler)
    with trace_span("rounds", algorithm=trial.algorithm) as rounds_span:
        if trial.algorithm == "auto":
            from repro.spf.api import solve_spf

            solution = solve_spf(structure, sources, destinations, engine=engine)
            members = len(solution.forest.members)
            resolved = solution.algorithm
        elif trial.algorithm == "spt":
            from repro.spf.spt import shortest_path_tree

            spt = shortest_path_tree(engine, structure, sources[0], destinations)
            members = len(spt.members)
        elif trial.algorithm == "forest":
            from repro.spf.forest import shortest_path_forest

            forest = shortest_path_forest(
                engine,
                structure,
                sources,
                destinations if trial.l != ALL_NODES else None,
            )
            members = len(forest.members)
        elif trial.algorithm == "sequential":
            from repro.baselines.sequential_merge import sequential_merge_forest

            forest = sequential_merge_forest(engine, structure, sources)
            members = len(forest.members)
        elif trial.algorithm == "wave":
            from repro.baselines.bfs_wave import bfs_wave_forest

            forest = bfs_wave_forest(
                engine, structure, set(sources), set(destinations)
            )
            members = len(forest.members)
        else:  # pragma: no cover - spec validation rejects this earlier
            raise ValueError(f"unknown algorithm {trial.algorithm!r}")
        rounds_span.set(algorithm=resolved, rounds=engine.rounds.total)

    elapsed = time.perf_counter() - start
    sched_stats = getattr(engine, "stats", None)
    return TrialResult(
        key=trial.key(),
        scenario=trial.scenario,
        shape=trial.shape,
        n=len(structure),
        k=trial.k,
        l=trial.l,
        seed=trial.seed,
        algorithm=trial.algorithm,
        resolved=resolved,
        placement=trial.placement,
        rounds=engine.rounds.total,
        forest_members=members,
        elapsed_s=round(elapsed, 6),
        diameter=structure_diameter(structure) if trial.measure_diameter else None,
        sections=dict(engine.rounds.breakdown()),
        scheduler=trial.scheduler,
        activations=engine.rounds.activations,
        sched_time=(
            round(sched_stats.time, 6) if sched_stats is not None else None
        ),
    )


@dataclass
class CampaignReport:
    """Outcome of one :meth:`CampaignRunner.run` invocation."""

    campaign: str
    results: List[TrialResult]
    executed: int
    cache_hits: int
    elapsed_s: float
    #: Structured failure records of trials that exhausted their retry
    #: budget (see :data:`QUARANTINE_RECORD`); empty on a clean run.
    quarantined: List[Dict[str, object]] = field(default_factory=list)
    #: Trial re-executions after worker crashes or in-worker errors.
    retries: int = 0

    @property
    def total(self) -> int:
        """Total trials in the campaign (executed + cached + quarantined)."""
        return len(self.results) + len(self.quarantined)

    def records(self) -> List[Dict[str, object]]:
        """All results as plain dicts (aggregate-ready)."""
        return [r.to_dict() for r in self.results]

    def summary(self) -> str:
        """One human-readable line: totals, cache hits, wall time."""
        line = (
            f"campaign {self.campaign!r}: {self.total} trials, "
            f"{self.executed} executed, {self.cache_hits} cache hits "
            f"({self.elapsed_s:.2f}s)"
        )
        if self.retries or self.quarantined:
            line += (
                f" [{self.retries} retries, "
                f"{len(self.quarantined)} quarantined]"
            )
        return line


ProgressFn = Callable[[TrialSpec, TrialResult, int, int], None]


class CampaignRunner:
    """Expands a campaign and executes its trials, possibly in parallel.

    Parameters
    ----------
    store:
        Result store consulted for cached trials and appended to as
        trials complete.  Defaults to a fresh in-memory store.
    workers:
        ``<= 1`` runs inline; otherwise a ``ProcessPoolExecutor`` with
        that many workers.  Results are identical either way.
    trace_dir:
        When set, every trial runs under a span tracer and each worker
        process appends its trials' spans to ``trials-<pid>.jsonl`` in
        this directory (created if missing).  ``None`` (default) runs
        the uninstrumented path.
    retry:
        Retry budget for crashed or erroring trials
        (:class:`~repro.resilience.RetryPolicy`; ``attempts`` is total
        tries per trial).  A trial that exhausts the budget is
        *quarantined*: a structured failure record lands in the store
        and on :attr:`CampaignReport.quarantined`, and the rest of the
        campaign keeps running — a dead worker process
        (``BrokenProcessPool``) no longer aborts anything.
    trial_fn:
        The trial executor (module-level, hence picklable).  Chaos
        tests swap in fault-injecting wrappers; everyone else keeps
        :func:`execute_trial`.
    """

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: int = 1,
        trace_dir: Optional[os.PathLike] = None,
        retry: Optional[RetryPolicy] = None,
        trial_fn: Callable[[TrialSpec], TrialResult] = execute_trial,
    ):
        self.store = store if store is not None else ResultStore()
        self.workers = max(1, int(workers))
        self.trace_dir = str(trace_dir) if trace_dir else None
        if self.trace_dir:
            os.makedirs(self.trace_dir, exist_ok=True)
        self.retry = retry if retry is not None else RetryPolicy(
            attempts=3, base_delay_s=0.05, max_delay_s=0.5
        )
        self.trial_fn = trial_fn
        #: Store writes that failed (results are kept in memory and the
        #: campaign continues; see :meth:`_store_add`).
        self.store_failures = 0

    def run(
        self,
        campaign: CampaignSpec,
        resume: bool = True,
        progress: Optional[ProgressFn] = None,
        token: Optional[CancellationToken] = None,
    ) -> CampaignReport:
        """Execute every trial of ``campaign`` not already in the store.

        With ``resume=False`` cached records are ignored (and
        overwritten in the store's in-memory view; the JSONL log keeps
        both, last write wins on reload).  Quarantine records never
        count as cached — a re-run re-attempts those trials.

        ``token`` is checked at trial boundaries: a deadline or cancel
        raises :class:`~repro.resilience.Cancelled` mid-campaign, with
        everything completed so far already persisted in the store.
        """
        trials = expand_trials(campaign.trials())
        started = time.perf_counter()
        cached: Dict[str, TrialResult] = {}
        todo: List[TrialSpec] = []
        for trial in trials:
            record = self.store.get(trial.key()) if resume else None
            if record is not None and record.get("record") is None:
                # Cached results keep their originally recorded scenario
                # label, so the report always matches the store contents
                # (a hit may come from another campaign's scenario).
                # Marked records (quarantine entries) are not results.
                result = TrialResult.from_dict(record)
                result.cached = True
                cached[trial.key()] = result
            else:
                todo.append(trial)

        fresh, quarantined, retries = self._execute(
            todo, progress, total=len(trials), done=len(cached), token=token
        )

        results: List[TrialResult] = []
        for trial in trials:
            key = trial.key()
            if key in cached:
                results.append(cached[key])
            elif key in fresh:
                results.append(fresh[key])
            # else: quarantined — reported separately, not a result
        return CampaignReport(
            campaign=campaign.name,
            results=results,
            executed=len(fresh),
            cache_hits=len(cached),
            elapsed_s=round(time.perf_counter() - started, 6),
            quarantined=quarantined,
            retries=retries,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _store_add(self, record: Dict[str, object]) -> None:
        """Persist one record, tolerating store faults.

        A failed write costs a cache entry (and a resume point), never
        the in-memory result — campaigns outlive flaky disks.
        """
        try:
            self.store.add(record)
        except Exception:  # noqa: BLE001 - persistence is best-effort here
            self.store_failures += 1
            logger.warning(
                "store write failed for %s", record.get("key"), exc_info=True
            )

    def _quarantine(
        self, trial: TrialSpec, exc: BaseException, attempts: int
    ) -> Dict[str, object]:
        """Build + persist the structured failure record for one trial."""
        record = {
            "key": trial.key(),
            "record": QUARANTINE_RECORD,
            "scenario": trial.scenario,
            "shape": trial.shape,
            "seed": trial.seed,
            "algorithm": trial.algorithm,
            "error": f"{type(exc).__name__}: {exc}",
            "attempts": attempts,
        }
        self._store_add(record)
        logger.warning(
            "trial quarantined after %d attempts: %s (%s)",
            attempts,
            trial.key(),
            record["error"],
        )
        return record

    def _retry_delay(self, failures: int) -> float:
        """Backoff before re-attempting a trial that failed ``failures`` times."""
        delays = self.retry.delays()
        if not delays:
            return 0.0
        return delays[min(failures - 1, len(delays) - 1)]

    def _execute(
        self,
        todo: Sequence[TrialSpec],
        progress: Optional[ProgressFn],
        total: int,
        done: int,
        token: Optional[CancellationToken] = None,
    ) -> Tuple[Dict[str, TrialResult], List[Dict[str, object]], int]:
        out: Dict[str, TrialResult] = {}
        quarantined: List[Dict[str, object]] = []
        retries = 0
        if not todo:
            return out, quarantined, retries

        def record(trial: TrialSpec, result: TrialResult, done: int) -> None:
            # Persist immediately so an interrupted campaign resumes
            # from the last completed trial, not from scratch.
            out[trial.key()] = result
            self._store_add(result.to_dict())
            if progress is not None:
                progress(trial, result, done, total)

        budget = self.retry.attempts

        if self.workers == 1:
            previous = _TRACE_DIR
            _set_trace_dir(self.trace_dir or previous)
            try:
                for trial in todo:
                    if token is not None:
                        token.check(trials_done=done)
                    failures = 0
                    while True:
                        try:
                            result = self.trial_fn(trial)
                        except Exception as exc:  # noqa: BLE001
                            failures += 1
                            if failures >= budget:
                                done += 1
                                quarantined.append(
                                    self._quarantine(trial, exc, failures)
                                )
                                break
                            retries += 1
                            time.sleep(self._retry_delay(failures))
                            continue
                        done += 1
                        record(trial, result, done)
                        break
            finally:
                _set_trace_dir(previous)
            return out, quarantined, retries

        # Parallel execution, crash-tolerant.  Optimistic pass: fan the
        # whole batch over one pool.  If a worker process dies the pool
        # is broken and attribution is impossible (every outstanding
        # future raises BrokenProcessPool regardless of guilt) — so the
        # survivors move to a careful isolation pass, one fresh
        # single-worker pool per trial, where a crash is unambiguous.
        # Only solo crashes and in-worker exceptions charge a trial's
        # retry budget; being collateral of someone else's crash never
        # quarantines an innocent trial.
        failures: Dict[str, int] = {t.key(): 0 for t in todo}
        last_error: Dict[str, BaseException] = {}
        pending: List[TrialSpec] = list(todo)
        while pending:
            if token is not None:
                token.check(trials_done=done)
            batch = pending
            pending = []
            broke = False
            settled: set = set()
            with ProcessPoolExecutor(
                max_workers=self.workers,
                initializer=_set_trace_dir,
                initargs=(self.trace_dir,),
            ) as pool:
                futures = {
                    pool.submit(self.trial_fn, trial): trial for trial in batch
                }
                for future in as_completed(futures):
                    trial = futures[future]
                    try:
                        result = future.result()
                    except BrokenProcessPool:
                        broke = True
                        break  # every outstanding future is doomed too
                    except Exception as exc:  # noqa: BLE001 - in-worker error
                        settled.add(trial.key())
                        failures[trial.key()] += 1
                        last_error[trial.key()] = exc
                        if failures[trial.key()] >= budget:
                            done += 1
                            quarantined.append(
                                self._quarantine(
                                    trial, exc, failures[trial.key()]
                                )
                            )
                        else:
                            retries += 1
                            pending.append(trial)
                        continue
                    settled.add(trial.key())
                    done += 1
                    record(trial, result, done)
            if not broke:
                continue
            # Isolation pass over everything the broken pool left
            # unsettled.  Each run here is a re-execution (the trial was
            # already submitted once), hence counts as a retry.
            unsettled = [t for t in batch if t.key() not in settled]
            logger.warning(
                "worker pool broke; isolating %d unsettled trials",
                len(unsettled),
            )
            for trial in unsettled:
                if token is not None:
                    token.check(trials_done=done)
                retries += 1
                try:
                    with ProcessPoolExecutor(
                        max_workers=1,
                        initializer=_set_trace_dir,
                        initargs=(self.trace_dir,),
                    ) as solo:
                        result = solo.submit(self.trial_fn, trial).result()
                except Exception as exc:  # noqa: BLE001 - incl. BrokenProcessPool
                    failures[trial.key()] += 1
                    last_error[trial.key()] = exc
                    if failures[trial.key()] >= budget:
                        done += 1
                        quarantined.append(
                            self._quarantine(trial, exc, failures[trial.key()])
                        )
                    else:
                        time.sleep(self._retry_delay(failures[trial.key()]))
                        pending.append(trial)
                    continue
                done += 1
                record(trial, result, done)
        return out, quarantined, retries


def run_campaign(
    campaign: CampaignSpec,
    store: Optional[ResultStore] = None,
    workers: int = 1,
    resume: bool = True,
    progress: Optional[ProgressFn] = None,
    token: Optional[CancellationToken] = None,
) -> CampaignReport:
    """Convenience wrapper: ``CampaignRunner(store, workers).run(...)``."""
    return CampaignRunner(store=store, workers=workers).run(
        campaign, resume=resume, progress=progress, token=token
    )
