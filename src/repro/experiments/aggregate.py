"""Summary statistics and growth-shape fits over trial records.

Works on plain dicts (what :class:`~repro.experiments.store.ResultStore`
holds and :meth:`TrialResult.to_dict` emits), so it composes with
stores, runner reports, and hand-built synthetic data alike.  This
generalizes the ad-hoc ``log_fit_slope`` checks of
:mod:`repro.metrics.records`: every paper claim is a *shape* (flat /
logarithmic / polylogarithmic / linear), and :func:`classify_growth`
fits all four shapes by least squares and reports the best.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.metrics.records import ResultTable, log_fit_slope

Record = Mapping[str, object]

#: Candidate growth shapes, simplest first: basis function f in the
#: least-squares model ``y = a * f(x) + b``.
_SHAPES: Tuple[Tuple[str, Callable[[float], float]], ...] = (
    ("flat", lambda x: 0.0),
    ("logarithmic", lambda x: math.log2(x)),
    ("polylogarithmic", lambda x: math.log2(x) ** 2),
    ("linear", lambda x: x),
)


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def group_records(
    records: Sequence[Record], field: str
) -> Dict[object, List[Record]]:
    """Group records by a field value, preserving first-seen order."""
    groups: Dict[object, List[Record]] = {}
    for record in records:
        groups.setdefault(record.get(field), []).append(record)
    return groups


def sweep_axis(records: Sequence[Record]) -> str:
    """The first axis that actually varies across records.

    Checked in order ``n``, ``k``, ``l``, ``seed``; defaults to ``n``.
    """
    for axis in ("n", "k", "l", "seed"):
        if len({record.get(axis) for record in records}) > 1:
            return axis
    return "n"


def summarize(
    records: Sequence[Record],
    x: str,
    y: str = "rounds",
    reduce: Callable[[Sequence[float]], float] = mean,
) -> List[Tuple[object, float]]:
    """Reduce ``y`` per distinct ``x`` value; rows sorted by ``x``."""
    groups = group_records(records, x)
    out: List[Tuple[object, float]] = []
    for value in sorted(groups, key=lambda v: (v is None, v)):
        ys = [float(r[y]) for r in groups[value] if r.get(y) is not None]
        if ys:
            out.append((value, reduce(ys)))
    return out


def _tidy(value: float) -> object:
    """Render integral reductions as ints (tables stay readable)."""
    return int(value) if float(value).is_integer() else value


def summary_table(
    records: Sequence[Record],
    x: str,
    columns: Sequence[str] = ("rounds",),
    title: Optional[str] = None,
    reduce: Callable[[Sequence[float]], float] = mean,
) -> ResultTable:
    """An aligned table of per-``x`` reductions of several columns."""
    table = ResultTable(
        title if title is not None else f"{'/'.join(columns)} vs {x}",
        [x, *columns],
    )
    per_column = {c: dict(summarize(records, x, c, reduce)) for c in columns}
    xs = sorted(
        {value for series in per_column.values() for value in series},
        key=lambda v: (v is None, v),
    )
    for value in xs:
        table.add(
            value,
            *(
                _tidy(per_column[c][value]) if value in per_column[c] else "-"
                for c in columns
            ),
        )
    return table


@dataclass(frozen=True)
class GrowthFit:
    """Best least-squares fit of ``y = a * f(x) + b`` over the shapes."""

    shape: str
    slope: float
    intercept: float
    rmse: float
    r2: float

    def describe(self) -> str:
        """One-line human-readable description of the fit."""
        return (
            f"{self.shape} (a = {self.slope:.3f}, b = {self.intercept:.3f}, "
            f"R^2 = {self.r2:.3f})"
        )


def _least_squares(
    fs: Sequence[float], ys: Sequence[float]
) -> Tuple[float, float, float]:
    """Fit ``y = a * f + b``; returns ``(a, b, rmse)``."""
    n = len(fs)
    mean_f = sum(fs) / n
    mean_y = sum(ys) / n
    var = sum((f - mean_f) ** 2 for f in fs)
    if var == 0:
        a = 0.0
    else:
        a = sum((f - mean_f) * (y - mean_y) for f, y in zip(fs, ys)) / var
    b = mean_y - a * mean_f
    sse = sum((y - (a * f + b)) ** 2 for f, y in zip(fs, ys))
    return a, b, math.sqrt(sse / n)


def classify_growth(
    xs: Sequence[float], ys: Sequence[float], tolerance: float = 0.05
) -> Optional[GrowthFit]:
    """Fit every candidate shape and return the best one.

    Simpler shapes win ties: a shape is chosen over a more complex one
    whenever its error is within ``tolerance`` (relative, plus a small
    absolute epsilon) of the minimum.  Returns ``None`` when there are
    fewer than three positive-``x`` points (underdetermined).
    """
    pairs = [(float(x), float(y)) for x, y in zip(xs, ys) if x > 0]
    if len(pairs) < 3:
        return None
    pxs = [p[0] for p in pairs]
    pys = [p[1] for p in pairs]
    spread_y = max(pys) - min(pys)
    fits: List[GrowthFit] = []
    for name, basis in _SHAPES:
        a, b, rmse = _least_squares([basis(x) for x in pxs], pys)
        ss_tot = sum((y - sum(pys) / len(pys)) ** 2 for y in pys)
        r2 = 1.0 if ss_tot == 0 else 1.0 - (rmse**2 * len(pys)) / ss_tot
        fits.append(GrowthFit(shape=name, slope=a, intercept=b, rmse=rmse, r2=r2))
    best_rmse = min(fit.rmse for fit in fits)
    threshold = best_rmse * (1.0 + tolerance) + 1e-9 + 0.01 * spread_y * tolerance
    for fit in fits:  # ordered simplest-first
        if fit.rmse <= threshold:
            return fit
    return fits[-1]  # pragma: no cover - loop always returns


def growth_report(
    records: Sequence[Record], x: str, y: str = "rounds"
) -> Optional[GrowthFit]:
    """Classify the growth of mean ``y`` against ``x`` over records."""
    rows = summarize(records, x, y)
    numeric = [
        (float(value), result)
        for value, result in rows
        if isinstance(value, (int, float))
    ]
    if len(numeric) < 3:
        return None
    return classify_growth([p[0] for p in numeric], [p[1] for p in numeric])


__all__ = [
    "GrowthFit",
    "classify_growth",
    "group_records",
    "growth_report",
    "log_fit_slope",
    "mean",
    "summarize",
    "summary_table",
    "sweep_axis",
]
