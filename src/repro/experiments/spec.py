"""Declarative experiment specifications.

A *campaign* is data, not code: a named list of scenarios, each of which
describes a grid of (shape, n, k, l, seed, algorithm) configurations.
Campaigns are plain dataclasses round-trippable through dicts/JSON, so a
new experiment is a JSON file (or a registry entry), never an edit to a
hardcoded loop.

The cross product of one scenario's axes expands into
:class:`TrialSpec` objects — one fully concrete configuration each.  A
trial's identity is its *content hash* (:meth:`TrialSpec.key`): the
same configuration always maps to the same key, which is what gives the
result store caching and resume across runs, machines, and campaigns.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, fields
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

ALGORITHMS = ("auto", "spt", "forest", "sequential", "wave")
PLACEMENTS = ("random", "spread", "extremes")

#: Churn flavors a scenario may request (mirrors
#: :data:`repro.dynamics.edits.CHURN_KINDS`; duplicated as a literal so
#: spec validation never imports the simulator).
CHURNS = ("", "growth", "erosion", "tunnel", "block_move", "mixed")

#: Scheduler base names a trial may request (mirrors
#: :data:`repro.sched.schedulers.SCHEDULER_NAMES`; duplicated as a
#: literal so spec validation never imports the simulator).  A spec is
#: ``""`` (plain synchronous engine) or ``NAME[:param[:param]]``.
SCHEDULERS = ("sync", "random", "adversarial", "weighted")

#: ``l`` value meaning "every node is a destination" (the paper's SSSP
#: setting, and the forest algorithm's default of no final pruning).
ALL_NODES = 0


class SpecError(ValueError):
    """A scenario or campaign description is malformed."""


def content_key(config: Mapping[str, object]) -> str:
    """Stable content hash of a JSON-ready configuration mapping.

    The identity used throughout the repository for jobs-as-data:
    :meth:`TrialSpec.key`, :meth:`repro.api.SolveRequest.key`, and the
    service layer's :meth:`repro.service.JobSpec.key` all hash their
    configuration through this one function, so any layer can cache,
    queue, or resume any other layer's work by key.
    """
    blob = json.dumps(dict(config), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:20]


def _check_scheduler(spec: str, context: str = "") -> None:
    """Validate a scheduler spec string (``""`` or ``NAME[:params]``)."""
    if not spec:
        return
    base = spec.split(":", 1)[0]
    if base not in SCHEDULERS:
        where = f"scenario {context!r}: " if context else ""
        raise SpecError(
            f"{where}unknown scheduler {spec!r}; expected '' or one of "
            f"{SCHEDULERS} (optionally with ':'-separated parameters)"
        )


@dataclass(frozen=True)
class TrialSpec:
    """One fully concrete experiment configuration.

    ``shape`` is a CLI-style shape spec (``random:200:1``,
    ``hexagon:4``, ...) as understood by
    :func:`repro.workloads.build_structure`.  ``l == ALL_NODES`` selects
    every node as a destination.
    """

    scenario: str
    shape: str
    k: int
    l: int
    seed: int
    algorithm: str = "auto"
    placement: str = "random"
    measure_diameter: bool = False
    churn: str = ""
    churn_steps: int = 0
    churn_batch: int = 1
    scheduler: str = ""

    def __post_init__(self) -> None:
        if self.k < 1:
            raise SpecError(f"k must be positive, got {self.k}")
        _check_scheduler(self.scheduler)
        if self.l < ALL_NODES:
            raise SpecError(f"l must be >= 0 (0 = all nodes), got {self.l}")
        if self.algorithm not in ALGORITHMS:
            raise SpecError(
                f"unknown algorithm {self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        if self.placement not in PLACEMENTS:
            raise SpecError(
                f"unknown placement {self.placement!r}; expected one of {PLACEMENTS}"
            )
        if self.algorithm == "spt" and self.k != 1:
            raise SpecError("algorithm 'spt' requires k = 1")
        if self.algorithm == "sequential" and self.l != ALL_NODES:
            # sequential_merge_forest spans the whole structure; a
            # trial claiming l destinations would be mislabeled.
            raise SpecError("algorithm 'sequential' requires l = 0 (all nodes)")
        if self.churn not in CHURNS:
            raise SpecError(
                f"unknown churn kind {self.churn!r}; expected one of {CHURNS}"
            )
        if self.churn:
            if self.algorithm != "auto":
                raise SpecError("churn trials require algorithm 'auto'")
            if self.churn_steps < 1:
                raise SpecError(
                    f"churn trials need churn_steps >= 1, got {self.churn_steps}"
                )
            if self.churn_batch < 1:
                raise SpecError(
                    f"churn_batch must be positive, got {self.churn_batch}"
                )
        elif self.churn_steps != 0:
            raise SpecError("churn_steps given without a churn kind")

    def config(self) -> Dict[str, object]:
        """The identity-bearing configuration (scenario name excluded).

        Two trials with equal configs are the same experiment even if
        they appear under different scenario or campaign names — this is
        what lets the store share cached results across campaigns.
        Churn parameters enter the config only when churn is enabled,
        and the scheduler only when one is named, so every pre-existing
        trial keeps its historical content hash (and its cached store
        records).
        """
        out: Dict[str, object] = {
            "shape": self.shape,
            "k": self.k,
            "l": self.l,
            "seed": self.seed,
            "algorithm": self.algorithm,
            "placement": self.placement,
            "measure_diameter": self.measure_diameter,
        }
        if self.churn:
            out["churn"] = self.churn
            out["churn_steps"] = self.churn_steps
            out["churn_batch"] = self.churn_batch
        if self.scheduler:
            out["scheduler"] = self.scheduler
        return out

    def key(self) -> str:
        """Stable content hash of the configuration."""
        return content_key(self.config())

    def sampling_seed(self) -> int:
        """Deterministic per-trial seed for source/destination sampling.

        Derived from the content hash so that every distinct
        configuration samples independently, yet identically on every
        run, process, and worker count.
        """
        digest = hashlib.blake2b(
            self.key().encode("ascii"), digest_size=8
        ).digest()
        return int.from_bytes(digest, "big") ^ self.seed

    def to_dict(self) -> Dict[str, object]:
        """Config plus scenario name, JSON-ready."""
        out = dict(self.config())
        out["scenario"] = self.scenario
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TrialSpec":
        """Inverse of :meth:`to_dict`; rejects unknown fields."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown trial fields: {sorted(unknown)}")
        try:
            return cls(**data)  # type: ignore[arg-type]
        except TypeError as exc:
            raise SpecError(f"bad trial spec: {exc}") from exc


def _str_tuple(name: str, values: object) -> Tuple[str, ...]:
    if isinstance(values, str):
        values = [values]
    if not isinstance(values, (list, tuple)):
        raise SpecError(f"{name} must be a string or a list of strings")
    out = []
    for v in values:
        if not isinstance(v, str):
            raise SpecError(f"{name} entries must be strings, got {v!r}")
        out.append(v)
    if not out:
        raise SpecError(f"{name} must be non-empty")
    return tuple(out)


def _int_tuple(name: str, values: object) -> Tuple[int, ...]:
    if isinstance(values, (int, float)) and not isinstance(values, bool):
        values = [values]
    if not isinstance(values, (list, tuple)):
        raise SpecError(f"{name} must be an int or a list of ints")
    out = []
    for v in values:
        if isinstance(v, bool) or not isinstance(v, int):
            raise SpecError(f"{name} entries must be ints, got {v!r}")
        out.append(v)
    if not out:
        raise SpecError(f"{name} must be non-empty")
    return tuple(out)


@dataclass(frozen=True)
class ScenarioSpec:
    """A grid of configurations sharing one shape template.

    ``shape`` may contain a ``{n}`` placeholder; ``sizes`` supplies the
    values substituted for it (and doubles as the sweep axis).  Without
    a placeholder the scenario is a single-shape grid and ``sizes`` must
    be empty.
    """

    name: str
    shape: str
    sizes: Tuple[int, ...] = ()
    ks: Tuple[int, ...] = (1,)
    ls: Tuple[int, ...] = (1,)
    seeds: Tuple[int, ...] = (0,)
    algorithm: str = "auto"
    placement: str = "random"
    measure_diameter: bool = False
    churn: str = ""
    churn_steps: int = 0
    churn_batch: int = 1
    #: Scheduler axis: one trial per entry (``""`` = plain synchronous
    #: engine, otherwise a spec like ``random:1`` or ``adversarial:4``).
    schedulers: Tuple[str, ...] = ("",)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("scenario name must be non-empty")
        object.__setattr__(self, "schedulers", tuple(self.schedulers))
        if not self.schedulers:
            raise SpecError(f"scenario {self.name!r}: empty scheduler axis")
        for sched in self.schedulers:
            if not isinstance(sched, str):
                raise SpecError(
                    f"scenario {self.name!r}: scheduler entries must be "
                    f"strings, got {sched!r}"
                )
            _check_scheduler(sched, context=self.name)
        has_placeholder = "{n}" in self.shape
        if has_placeholder and not self.sizes:
            raise SpecError(
                f"scenario {self.name!r}: shape template {self.shape!r} "
                "has a {n} placeholder but no sizes"
            )
        if self.sizes and not has_placeholder:
            raise SpecError(
                f"scenario {self.name!r}: sizes given but shape "
                f"{self.shape!r} has no {{n}} placeholder"
            )
        for attr in ("sizes", "ks", "ls", "seeds"):
            object.__setattr__(self, attr, tuple(getattr(self, attr)))
        if not self.ks or not self.ls or not self.seeds:
            raise SpecError(f"scenario {self.name!r}: empty axis")
        if self.algorithm not in ALGORITHMS:
            raise SpecError(
                f"scenario {self.name!r}: unknown algorithm "
                f"{self.algorithm!r}; expected one of {ALGORITHMS}"
            )
        if self.placement not in PLACEMENTS:
            raise SpecError(
                f"scenario {self.name!r}: unknown placement "
                f"{self.placement!r}; expected one of {PLACEMENTS}"
            )
        if self.algorithm == "spt" and any(k != 1 for k in self.ks):
            raise SpecError(
                f"scenario {self.name!r}: algorithm 'spt' requires k = 1"
            )
        if self.algorithm == "sequential" and any(l != ALL_NODES for l in self.ls):
            raise SpecError(
                f"scenario {self.name!r}: algorithm 'sequential' requires "
                "l = 0 (all nodes)"
            )
        if self.churn not in CHURNS:
            raise SpecError(
                f"scenario {self.name!r}: unknown churn kind {self.churn!r}; "
                f"expected one of {CHURNS}"
            )
        if self.churn and self.algorithm != "auto":
            raise SpecError(
                f"scenario {self.name!r}: churn scenarios require algorithm 'auto'"
            )
        if self.churn and self.churn_steps < 1:
            raise SpecError(
                f"scenario {self.name!r}: churn scenarios need churn_steps >= 1"
            )
        if not self.churn and self.churn_steps != 0:
            raise SpecError(
                f"scenario {self.name!r}: churn_steps given without a churn kind"
            )

    def trials(self) -> List[TrialSpec]:
        """Expand the grid into concrete trials (deduplicated, ordered)."""
        shapes = (
            [self.shape.replace("{n}", str(n)) for n in self.sizes]
            if self.sizes
            else [self.shape]
        )
        out: List[TrialSpec] = []
        seen = set()
        for shape in shapes:
            for k in self.ks:
                for l in self.ls:
                    for seed in self.seeds:
                        for scheduler in self.schedulers:
                            trial = TrialSpec(
                                scenario=self.name,
                                shape=shape,
                                k=k,
                                l=l,
                                seed=seed,
                                algorithm=self.algorithm,
                                placement=self.placement,
                                measure_diameter=self.measure_diameter,
                                churn=self.churn,
                                churn_steps=self.churn_steps,
                                churn_batch=self.churn_batch,
                                scheduler=scheduler,
                            )
                            if trial.key() not in seen:
                                seen.add(trial.key())
                                out.append(trial)
        return out

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        out: Dict[str, object] = {
            "name": self.name,
            "shape": self.shape,
            "sizes": list(self.sizes),
            "ks": list(self.ks),
            "ls": list(self.ls),
            "seeds": list(self.seeds),
            "algorithm": self.algorithm,
            "placement": self.placement,
            "measure_diameter": self.measure_diameter,
        }
        if self.churn:
            out["churn"] = self.churn
            out["churn_steps"] = self.churn_steps
            out["churn_batch"] = self.churn_batch
        if self.schedulers != ("",):
            out["schedulers"] = list(self.schedulers)
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ScenarioSpec":
        """Parse and validate a scenario mapping (JSON-shaped)."""
        if not isinstance(data, Mapping):
            raise SpecError(f"scenario must be a mapping, got {type(data).__name__}")
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise SpecError(f"unknown scenario fields: {sorted(unknown)}")
        if "name" not in data or "shape" not in data:
            raise SpecError("scenario requires 'name' and 'shape'")
        kwargs: Dict[str, object] = {
            "name": data["name"],
            "shape": data["shape"],
        }
        for axis in ("sizes", "ks", "ls", "seeds"):
            if axis in data:
                values = data[axis]
                # An empty sizes list is valid (non-template shapes
                # serialize it; to_dict always emits the key).
                if axis == "sizes" and isinstance(values, (list, tuple)) and not values:
                    kwargs[axis] = ()
                    continue
                kwargs[axis] = _int_tuple(axis, values)
        if "schedulers" in data:
            kwargs["schedulers"] = _str_tuple("schedulers", data["schedulers"])
        for scalar in (
            "algorithm",
            "placement",
            "measure_diameter",
            "churn",
            "churn_steps",
            "churn_batch",
        ):
            if scalar in data:
                kwargs[scalar] = data[scalar]
        return cls(**kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CampaignSpec:
    """A named, ordered collection of scenarios."""

    name: str
    scenarios: Tuple[ScenarioSpec, ...] = field(default_factory=tuple)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecError("campaign name must be non-empty")
        object.__setattr__(self, "scenarios", tuple(self.scenarios))
        if not self.scenarios:
            raise SpecError(f"campaign {self.name!r} has no scenarios")
        names = [s.name for s in self.scenarios]
        if len(set(names)) != len(names):
            raise SpecError(f"campaign {self.name!r} has duplicate scenario names")

    def trials(self) -> List[TrialSpec]:
        """All trials of all scenarios, in scenario order."""
        out: List[TrialSpec] = []
        for scenario in self.scenarios:
            out.extend(scenario.trials())
        return out

    def trial_count(self) -> int:
        """Number of distinct trials (deduplicated by content key)."""
        return len(expand_trials(self.trials()))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready mapping (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "description": self.description,
            "scenarios": [s.to_dict() for s in self.scenarios],
        }

    def to_json(self, indent: int = 2) -> str:
        """Serialize to the JSON format ``repro campaign --spec`` reads."""
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CampaignSpec":
        """Parse and validate a campaign mapping (JSON-shaped)."""
        if not isinstance(data, Mapping):
            raise SpecError(f"campaign must be a mapping, got {type(data).__name__}")
        unknown = set(data) - {"name", "description", "scenarios"}
        if unknown:
            raise SpecError(f"unknown campaign fields: {sorted(unknown)}")
        if "name" not in data:
            raise SpecError("campaign requires a 'name'")
        raw = data.get("scenarios", [])
        if not isinstance(raw, Sequence) or isinstance(raw, (str, bytes)):
            raise SpecError("'scenarios' must be a list")
        scenarios = tuple(ScenarioSpec.from_dict(s) for s in raw)
        return cls(
            name=data["name"],  # type: ignore[arg-type]
            scenarios=scenarios,
            description=data.get("description", ""),  # type: ignore[arg-type]
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        """Parse a campaign from its JSON text."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError(f"invalid campaign JSON: {exc}") from exc
        return cls.from_dict(data)


def expand_trials(specs: Iterable[TrialSpec]) -> List[TrialSpec]:
    """Deduplicate trials across scenarios by content key, keeping order."""
    seen = set()
    out: List[TrialSpec] = []
    for trial in specs:
        if trial.key() not in seen:
            seen.add(trial.key())
            out.append(trial)
    return out
