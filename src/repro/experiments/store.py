"""Persistent, append-only result store for campaign trials.

Every completed trial is one JSON line keyed by the trial's content
hash, in the spirit of an accountable append-only log: a campaign run
never mutates history, it only appends.  Loading tolerates blank and
corrupt lines (e.g. a run killed mid-write), so a store is always
resumable; for duplicate keys the last record wins.

A store constructed with ``path=None`` is purely in-memory — used by
``repro sweep`` and by tests that do not need persistence.

**Concurrent writers.**  ``repro serve`` turns one store into a shared
database for several daemon worker threads — and for daemon restarts
racing campaign runs over the same file.  Appends are therefore a
single ``O_APPEND`` ``write(2)`` of one complete line (the kernel
serializes the offset, so two processes never interleave mid-line),
taken under a *shared* advisory lock on a ``<path>.lock`` sidecar;
:meth:`compact` takes the *exclusive* lock, re-reads the file so lines
appended by other processes survive the rewrite, and replaces the file
atomically.  On platforms without ``fcntl`` the appends stay atomic and
compaction degrades to best-effort (documented, Linux is the serving
platform).
"""

from __future__ import annotations

import contextlib
import json
import os
from pathlib import Path
from typing import Dict, Iterator, List, Mapping, Optional

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None


class ResultStore:
    """Dict-like view over a JSONL file of trial records.

    Records are plain dicts that must carry a ``"key"`` entry (the
    trial content hash, see :meth:`TrialSpec.key`).
    """

    def __init__(self, path: Optional[os.PathLike] = None):
        self.path = Path(path) if path is not None else None
        self._records: Dict[str, dict] = {}
        #: Superseded/unreadable lines seen at load time (duplicate keys
        #: from re-runs, torn writes): the difference between the file's
        #: line count and the live record count.  :meth:`compact` can
        #: reclaim them.
        self.superseded_lines = 0
        if self.path is not None and self.path.exists():
            self._load()

    def _load(self) -> None:
        assert self.path is not None
        self._records, lines = self._read_file()
        self.superseded_lines = lines - len(self._records)

    def _read_file(self) -> "tuple[Dict[str, dict], int]":
        """Parse the backing file: (records by key, parseable lines)."""
        records: Dict[str, dict] = {}
        lines = 0
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                lines += 1
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn write from an interrupted run
                if isinstance(record, dict) and "key" in record:
                    # Normalize exactly like add(): a non-string key must
                    # index under the same string before and after a
                    # restart, or resume silently re-runs finished trials.
                    record["key"] = str(record["key"])
                    records[record["key"]] = record
        return records, lines

    @contextlib.contextmanager
    def _lock(self, exclusive: bool) -> Iterator[None]:
        """Advisory inter-process lock on the ``<path>.lock`` sidecar.

        Shared for appends (many writers may interleave whole lines),
        exclusive for compaction (no writer may append between the
        re-read and the atomic replace).  A no-op without ``fcntl``.
        """
        assert self.path is not None
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        fd = os.open(lock_path, os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
            try:
                yield
            finally:
                fcntl.flock(fd, fcntl.LOCK_UN)
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: str) -> bool:
        return str(key) in self._records

    def has(self, key: str) -> bool:
        """Whether a result for this trial key is already recorded.

        Keys are normalized to ``str``, matching :meth:`add`/loading.
        """
        return str(key) in self._records

    def get(self, key: str) -> Optional[dict]:
        """The recorded result for ``key`` (a copy), or ``None``."""
        record = self._records.get(str(key))
        return dict(record) if record is not None else None

    def keys(self) -> List[str]:
        """All recorded trial keys."""
        return list(self._records)

    def records(self, scenario: Optional[str] = None) -> List[dict]:
        """All records (copies), optionally filtered by scenario name."""
        out = (dict(r) for r in self._records.values())
        if scenario is None:
            return list(out)
        return [r for r in out if r.get("scenario") == scenario]

    def scenarios(self) -> List[str]:
        """Distinct scenario names present, sorted."""
        return sorted(
            {str(r.get("scenario")) for r in self._records.values() if "scenario" in r}
        )

    def __iter__(self) -> Iterator[dict]:
        return iter(self.records())

    # ------------------------------------------------------------------
    # writes
    # ------------------------------------------------------------------
    def add(self, record: Mapping[str, object]) -> None:
        """Record one trial result, appending to the backing file.

        The trial key is normalized to ``str`` both in memory and on
        disk, so lookups behave identically before and after a reload.
        """
        if "key" not in record:
            raise ValueError("trial record must carry a 'key'")
        record = dict(record)
        record["key"] = str(record["key"])
        if self.path is not None and record["key"] in self._records:
            # The old record's line is now superseded on disk.
            self.superseded_lines += 1
        self._records[record["key"]] = record
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
            with self._lock(exclusive=False):
                # One O_APPEND write of one complete line: concurrent
                # writers (daemon workers, parallel campaigns) can never
                # interleave mid-record, and a crash can tear at most
                # the final line — which loading already tolerates.
                fd = os.open(
                    self.path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
                )
                try:
                    os.write(fd, line)
                finally:
                    os.close(fd)

    def add_many(self, records: Iterator[Mapping[str, object]]) -> int:
        """Record several results; returns how many were added."""
        count = 0
        for record in records:
            self.add(record)
            count += 1
        return count

    def compact(self) -> int:
        """Rewrite the JSONL file with one line per trial key.

        Long-lived stores grow a superseded line for every ``--fresh``
        re-run and every resumed duplicate; compaction drops them
        (last record per key wins — exactly the in-memory view).
        Under the exclusive sidecar lock the file is re-read first, so
        records appended by *other* processes since our load are merged
        into this store's view instead of being dropped by the rewrite;
        the rewrite then goes through a temporary file in the same
        directory and an atomic replace, so a crash mid-compaction
        never loses the store.  Returns the number of lines reclaimed
        (0 when the file is already minimal, in which case nothing is
        rewritten).
        """
        if self.path is None:
            return 0
        with self._lock(exclusive=True):
            if not self.path.exists():
                return 0
            disk, lines = self._read_file()
            # Other processes' records merge in; for keys we both hold,
            # the on-disk line is at least as new as our memory (add()
            # writes through), so disk wins.
            self._records.update(disk)
            reclaimed = lines - len(disk)
            self.superseded_lines = 0
            if reclaimed <= 0:
                return 0
            tmp = self.path.with_name(self.path.name + ".compact")
            with tmp.open("w", encoding="utf-8") as handle:
                for record in self._records.values():
                    handle.write(json.dumps(record, sort_keys=True) + "\n")
            os.replace(tmp, self.path)
        return reclaimed
