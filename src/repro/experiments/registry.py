"""Named built-in campaigns mirroring the paper's experiment index.

The registry keeps scenario definitions *as data*, so the CLI, the
sweeps, the benchmark harness, and user scripts all name the same
experiments.  ``*-small`` variants are the quick versions used by
``repro sweep`` and CI smoke runs; the full versions reproduce the
benchmark sweeps (T2/T3/T4 of DESIGN.md's index).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.experiments.spec import CampaignSpec, ScenarioSpec

_REGISTRY: Dict[str, Callable[[], CampaignSpec]] = {}


def register_campaign(name: str, factory: Callable[[], CampaignSpec]) -> None:
    """Register a campaign factory under ``name`` (overwrites)."""
    _REGISTRY[name] = factory


def campaign_names() -> List[str]:
    """Sorted names of all registered campaigns."""
    return sorted(_REGISTRY)


def get_campaign(name: str) -> CampaignSpec:
    """Instantiate the named campaign.

    Raises :class:`KeyError` with the list of known names on a miss.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown campaign {name!r}; known: {', '.join(campaign_names())}"
        ) from None
    return factory()


def _builtin(name: str) -> Callable[[Callable[[], CampaignSpec]], Callable[[], CampaignSpec]]:
    def deco(factory: Callable[[], CampaignSpec]) -> Callable[[], CampaignSpec]:
        register_campaign(name, factory)
        return factory

    return deco


@_builtin("spsp-small")
def _spsp_small() -> CampaignSpec:
    return CampaignSpec(
        name="spsp-small",
        description="SPSP rounds vs n at sweep sizes (Theorem 39, k = l = 1)",
        scenarios=(
            ScenarioSpec(
                name="spsp",
                shape="random:{n}:1",
                sizes=(50, 100, 200, 400),
                ks=(1,),
                ls=(1,),
                seeds=(1,),
                algorithm="spt",
                placement="extremes",
            ),
        ),
    )


@_builtin("spsp")
def _spsp() -> CampaignSpec:
    return CampaignSpec(
        name="spsp",
        description="T2: SPSP rounds flat in n (Theorem 39, k = l = 1)",
        scenarios=(
            ScenarioSpec(
                name="spsp",
                shape="random:{n}:1",
                sizes=(50, 100, 200, 400, 800),
                ks=(1,),
                ls=(1,),
                seeds=(1,),
                algorithm="spt",
                placement="extremes",
                measure_diameter=True,
            ),
        ),
    )


@_builtin("sssp-small")
def _sssp_small() -> CampaignSpec:
    return CampaignSpec(
        name="sssp-small",
        description="SSSP rounds vs n at sweep sizes (Theorem 39, l = n)",
        scenarios=(
            ScenarioSpec(
                name="sssp",
                shape="random:{n}:1",
                sizes=(50, 100, 200, 400),
                ks=(1,),
                ls=(0,),
                seeds=(1,),
                algorithm="spt",
                placement="extremes",
            ),
        ),
    )


@_builtin("sssp")
def _sssp() -> CampaignSpec:
    return CampaignSpec(
        name="sssp",
        description="T3: SSSP rounds logarithmic in n (Theorem 39, l = n)",
        scenarios=(
            ScenarioSpec(
                name="sssp",
                shape="random:{n}:4",
                sizes=(50, 100, 200, 400, 800),
                ks=(1,),
                ls=(0,),
                seeds=(1,),
                algorithm="spt",
                placement="extremes",
                measure_diameter=True,
            ),
        ),
    )


@_builtin("forest-small")
def _forest_small() -> CampaignSpec:
    return CampaignSpec(
        name="forest-small",
        description="forest rounds vs k at n = 200 (Theorem 56)",
        scenarios=(
            ScenarioSpec(
                name="forest",
                shape="random:200:1",
                sizes=(),
                ks=(2, 4, 8, 16),
                ls=(0,),
                seeds=(1,),
                algorithm="forest",
                placement="spread",
            ),
        ),
    )


@_builtin("forest")
def _forest() -> CampaignSpec:
    return CampaignSpec(
        name="forest",
        description=(
            "T4a: forest rounds polylog in k at n = 200, "
            "three random placements per k (Theorem 56)"
        ),
        scenarios=(
            ScenarioSpec(
                name="forest",
                shape="random:200:1",
                ks=(2, 4, 8, 16),
                ls=(0,),
                seeds=(1, 2, 3),
                algorithm="forest",
                placement="random",
            ),
        ),
    )


@_builtin("ablations")
def _ablations() -> CampaignSpec:
    return CampaignSpec(
        name="ablations",
        description=(
            "divide & conquer vs sequential merge on the same instances "
            "(Theorem 56 vs the O(k log n) baseline)"
        ),
        scenarios=(
            ScenarioSpec(
                name="divide-and-conquer",
                shape="random:150:1",
                ks=(2, 4, 8),
                ls=(0,),
                seeds=(1, 2),
                algorithm="forest",
                placement="random",
            ),
            ScenarioSpec(
                name="sequential-merge",
                shape="random:150:1",
                ks=(2, 4, 8),
                ls=(0,),
                seeds=(1, 2),
                algorithm="sequential",
                placement="random",
            ),
        ),
    )


@_builtin("churn-small")
def _churn_small() -> CampaignSpec:
    return CampaignSpec(
        name="churn-small",
        description=(
            "dynamic SPF under light churn: incremental repair rounds "
            "vs structure size (growth / erosion)"
        ),
        scenarios=(
            ScenarioSpec(
                name="churn-growth",
                shape="random:{n}:1",
                sizes=(50, 100),
                ks=(1,),
                ls=(3,),
                seeds=(1,),
                churn="growth",
                churn_steps=4,
                churn_batch=2,
            ),
            ScenarioSpec(
                name="churn-erosion",
                shape="random:{n}:1",
                sizes=(50, 100),
                ks=(1,),
                ls=(3,),
                seeds=(1,),
                churn="erosion",
                churn_steps=4,
                churn_batch=2,
            ),
        ),
    )


@_builtin("churn")
def _churn() -> CampaignSpec:
    return CampaignSpec(
        name="churn",
        description=(
            "T5: self-healing SPF under churn — all four edit flavors, "
            "repair cost vs n and k"
        ),
        scenarios=(
            ScenarioSpec(
                name="churn-growth",
                shape="random:{n}:1",
                sizes=(100, 200, 400),
                ks=(1,),
                ls=(5,),
                seeds=(1, 2),
                churn="growth",
                churn_steps=8,
                churn_batch=4,
            ),
            ScenarioSpec(
                name="churn-erosion",
                shape="random:{n}:1",
                sizes=(100, 200, 400),
                ks=(1,),
                ls=(5,),
                seeds=(1, 2),
                churn="erosion",
                churn_steps=8,
                churn_batch=4,
            ),
            ScenarioSpec(
                name="churn-tunnel",
                shape="random:{n}:1",
                sizes=(100, 200),
                ks=(1,),
                ls=(5,),
                seeds=(1, 2),
                churn="tunnel",
                churn_steps=6,
                churn_batch=3,
            ),
            ScenarioSpec(
                name="churn-block-move",
                shape="random:{n}:1",
                sizes=(100, 200),
                ks=(2,),
                ls=(0,),
                seeds=(1, 2),
                placement="spread",
                churn="block_move",
                churn_steps=6,
                churn_batch=4,
            ),
        ),
    )


@_builtin("sched-small")
def _sched_small() -> CampaignSpec:
    return CampaignSpec(
        name="sched-small",
        description=(
            "activation cost per scheduler on one instance: same rounds, "
            "different wake-up counts (sync vs random vs adversarial)"
        ),
        scenarios=(
            ScenarioSpec(
                name="sched",
                shape="random:200:7",
                ks=(1, 4),
                ls=(0,),
                seeds=(1,),
                placement="spread",
                schedulers=("sync", "random:1", "adversarial:4", "weighted:1"),
            ),
        ),
    )


@_builtin("sched")
def _sched() -> CampaignSpec:
    return CampaignSpec(
        name="sched",
        description=(
            "T6: activation cost vs n per scheduler — rounds stay "
            "scheduler-invariant while activations scale with the "
            "scheduler's waste"
        ),
        scenarios=(
            ScenarioSpec(
                name="sched-scaling",
                shape="random:{n}:7",
                sizes=(100, 200, 400),
                ks=(1, 4),
                ls=(0,),
                seeds=(1, 2),
                placement="spread",
                schedulers=("sync", "random:1", "adversarial:4", "weighted:1"),
            ),
        ),
    )


@_builtin("shapes")
def _shapes() -> CampaignSpec:
    return CampaignSpec(
        name="shapes",
        description="(2, 3)-SPF across shape families, two samples each",
        scenarios=(
            ScenarioSpec(
                name="hexagon",
                shape="hexagon:{n}",
                sizes=(2, 3, 4),
                ks=(2,),
                ls=(3,),
                seeds=(0, 1),
            ),
            ScenarioSpec(
                name="lollipop",
                shape="lollipop:{n}:12",
                sizes=(2, 3, 4),
                ks=(2,),
                ls=(3,),
                seeds=(0, 1),
            ),
            ScenarioSpec(
                name="comb",
                shape="comb:{n}:4",
                sizes=(4, 6, 8),
                ks=(2,),
                ls=(3,),
                seeds=(0, 1),
            ),
        ),
    )
