"""Running PASC over an Euler tour (Lemma 14).

Channel discipline: each undirected tree edge carries both directions of
the tour.  Directed edges pointing E/NE/NW use channels (0, 1) for their
primary/secondary wires, the opposite directions use (2, 3), so the two
traversals of one physical edge never collide.  Together with the
reserved termination channel this needs 5 of the engine's channels; the
paper's Remark 16 similarly charges O(1) links per edge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.grid.coords import Node
from repro.grid.directions import Direction
from repro.ett.tour import DirectedEdge, EulerTour
from repro.pasc.chain import ChainLink, PascChainRun
from repro.pasc.runner import PascResult, run_pasc
from repro.sim.engine import CircuitEngine

_POSITIVE = (Direction.E, Direction.NE, Direction.NW)


def _channels_for(direction: Direction) -> Tuple[int, int]:
    return (0, 1) if direction in _POSITIVE else (2, 3)


def tour_links(tour: EulerTour) -> List[ChainLink]:
    """Chain links joining consecutive tour instances."""
    links = []
    for u, v in tour.edges:
        d = u.direction_to(v)
        pch, sch = _channels_for(d)
        links.append(ChainLink(u, d, pch, sch))
    return links


@dataclass
class ETTResult:
    """Prefix sums and derived quantities of one ETT execution.

    ``prefix[(u, v)]`` is :math:`prefixsum_{(u,v)} = \\sum_{j \\le i} w(e_j)`
    where ``(u, v)`` is the ``i``-th tour edge.  Both endpoint amoebots of
    the edge can compute it bit by bit (Lemma 14), so exposing it per
    directed edge matches what the distributed amoebots know.
    """

    tour: EulerTour
    prefix: Dict[DirectedEdge, int]
    total: int

    def diff(self, u: Node, v: Node) -> int:
        """``prefixsum(u, v) - prefixsum(v, u)`` for tree neighbors."""
        return self.prefix[(u, v)] - self.prefix[(v, u)]

    def subtree_count(self, child: Node, parent: Node) -> int:
        """Number of marked nodes in ``child``'s subtree (Lemma 17.1/3).

        ``parent`` must be ``child``'s parent with respect to the tour
        root; the count is then ``diff(child, parent) >= 0``.
        """
        return self.diff(child, parent)


class ETTOp:
    """One ETT execution, exposable to the parallel PASC runner.

    Build the op, feed :attr:`chain` (if any) to
    :func:`~repro.pasc.runner.run_pasc` — possibly together with the
    chains of other simultaneously running ETTs on disjoint trees — then
    call :meth:`result` to obtain the prefix sums.
    """

    def __init__(self, tour: EulerTour, marked: Iterable[DirectedEdge], tag: str = "ett"):
        self.tour = tour
        self.marked = set(marked)
        unknown = self.marked.difference(tour.edges)
        if unknown:
            raise ValueError(f"marked edges not on the tour: {sorted(unknown)[:3]}")
        if tour.edges:
            weights = [1 if e in self.marked else 0 for e in tour.edges] + [0]
            self.chain: Optional[PascChainRun] = PascChainRun(
                tour.units, tour_links(tour), weights=weights, tag=tag
            )
        else:
            # Single-node tree: nothing to communicate; W = 0 by definition.
            self.chain = None

    def result(self) -> ETTResult:
        """Decode the prefix sums once the PASC run has finished."""
        if self.chain is None:
            return ETTResult(tour=self.tour, prefix={}, total=0)
        inclusive = self.chain.inclusive_values()
        prefix: Dict[DirectedEdge, int] = {}
        for i, edge in enumerate(self.tour.edges):
            # prefixsum(e_i) = exclusive(v_i) + w(v_i) = exclusive(v_{i+1});
            # the source amoebot computes the former, the target the latter.
            prefix[edge] = inclusive[self.tour.units[i]]
        total = self.chain.values()[self.tour.units[-1]]
        return ETTResult(tour=self.tour, prefix=prefix, total=total)


def run_ett(
    engine: CircuitEngine,
    tour: EulerTour,
    marked: Iterable[DirectedEdge],
    tag: str = "ett",
    section: str = "ett",
) -> Tuple[ETTResult, PascResult]:
    """Execute the ETT with weight 1 on each directed edge in ``marked``.

    Returns the prefix sums per directed edge and the PASC statistics.
    Costs ``O(log W)`` rounds where ``W = |marked|`` (Lemma 14).
    """
    op = ETTOp(tour, marked, tag=tag)
    if op.chain is None:
        return op.result(), PascResult(0, 0)
    stats = run_pasc(engine, [op.chain], section=section)
    return op.result(), stats


def run_etts_parallel(
    engine: CircuitEngine,
    ops: Sequence["ETTOp"],
    section: str = "ett",
) -> Tuple[List[ETTResult], PascResult]:
    """Run several ETTs on edge-disjoint trees in the same rounds."""
    chains = [op.chain for op in ops if op.chain is not None]
    if chains:
        stats = run_pasc(engine, chains, section=section)
    else:
        stats = PascResult(0, 0)
    return [op.result() for op in ops], stats


def mark_one_outgoing_edge(
    tour: EulerTour, members: Iterable[Node]
) -> Set[DirectedEdge]:
    """The weight function :math:`w_Q`: every node of ``Q`` marks exactly
    one of its outgoing tour edges (Section 3.1).

    We deterministically mark the out-edge of the node's *first*
    occurrence on the tour, which every amoebot identifies locally.
    """
    members_set = set(members)
    unknown = members_set.difference(tour.adjacency)
    if unknown:
        raise ValueError(f"members not on the tree: {sorted(unknown)[:3]}")
    marked: Set[DirectedEdge] = set()
    claimed: Set[Node] = set()
    for edge in tour.edges:
        u = edge[0]
        if u in members_set and u not in claimed:
            marked.add(edge)
            claimed.add(u)
    missing = members_set - claimed
    if missing:
        # Only possible for a single-node tour (no edges at all).
        if tour.edges:
            raise AssertionError(f"nodes without outgoing tour edge: {missing}")
    return marked
