"""The Euler tour technique (ETT) on amoebot trees (Section 3.1).

Given a tree ``T`` embedded in the amoebot structure, every undirected
edge is replaced by its two directed versions; the local
counterclockwise-successor rule turns them into a single Euler cycle,
split at the root ``r`` into an Euler tour.  Every amoebot operates one
PASC *instance per occurrence* on the tour (at most its degree, plus one
for the root's final instance), and the tour's instance chain runs the
PASC prefix-sum construction with a 0/1 weight per directed edge.

Outcome (Lemma 14): every amoebot learns, bit by bit,
``prefixsum(u, v)`` for each of its incident directed edges and hence the
differences ``prefixsum(u, v) - prefixsum(v, u)`` for every neighbor,
which encode subtree counts (Lemma 17).  The root additionally learns the
total weight ``W`` (Corollary 15).  The ETT costs ``O(log W)`` rounds.
"""

from repro.ett.tour import EulerTour, build_euler_tour, adjacency_from_edges
from repro.ett.technique import ETTOp, ETTResult, run_ett, run_etts_parallel, mark_one_outgoing_edge
from repro.ett.election import elect_first_marked

__all__ = [
    "EulerTour",
    "build_euler_tour",
    "adjacency_from_edges",
    "ETTOp",
    "ETTResult",
    "run_etts_parallel",
    "run_ett",
    "mark_one_outgoing_edge",
    "elect_first_marked",
]
