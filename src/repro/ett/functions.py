"""Classic Euler-tour tree functions (Tarjan & Vishkin [28]).

Section 3.1 notes that the ETT "allows the computation of various tree
functions, e.g., computing a rooted version of a tree, a pre- and
postorder numbering of the nodes, the number of descendants of each
node, the level of each node, and the centroid(s)".  The paper only
needs the ``w_Q`` instances; this module provides the remaining
functions on the same strict machinery:

* :func:`descendant_counts` — one ETT with weight ``w_V`` (every node
  marks one out-edge): the subtree count of Lemma 17 with ``Q = V``.
* :func:`preorder_numbers` / :func:`postorder_numbers` — one ETT each:
  a node's preorder number is the number of first occurrences before
  its own first occurrence, i.e. the exclusive prefix sum read at that
  instance; postorder uses last occurrences.
* :func:`node_levels` — tree PASC (Corollary 5), re-exported here for
  discoverability.

Each costs ``O(log n)`` rounds.
"""

from __future__ import annotations

from typing import Dict, Set

from repro.grid.coords import Node
from repro.ett.technique import ETTOp, mark_one_outgoing_edge
from repro.ett.tour import DirectedEdge, EulerTour
from repro.pasc.runner import run_pasc
from repro.pasc.tree import PascTreeRun
from repro.sim.engine import CircuitEngine


def _first_occurrence_edges(tour: EulerTour) -> Dict[Node, int]:
    """Index of each node's first out-edge instance on the tour."""
    first: Dict[Node, int] = {}
    for i, (u, _v) in enumerate(tour.edges):
        if u not in first:
            first[u] = i
    return first


def _last_occurrence_edges(tour: EulerTour) -> Dict[Node, int]:
    """Index of each node's last out-edge instance on the tour."""
    last: Dict[Node, int] = {}
    for i, (u, _v) in enumerate(tour.edges):
        last[u] = i
    return last


def descendant_counts(
    engine: CircuitEngine, tour: EulerTour, section: str = "ett_descendants"
) -> Dict[Node, int]:
    """Number of descendants (including itself) of every node.

    One ETT execution with ``Q = V``: the subtree count across the
    parent edge (Lemma 17 with full weights); the root reads ``n``.
    """
    nodes = tour.nodes()
    if len(nodes) == 1:
        return {tour.root: 1}
    marked = mark_one_outgoing_edge(tour, nodes)
    op = ETTOp(tour, marked, tag="desc")
    run_pasc(engine, [op.chain], section=section)
    result = op.result()

    counts: Dict[Node, int] = {tour.root: result.total}
    parent = _tour_parents(tour)
    for u, p in parent.items():
        counts[u] = result.diff(u, p)
    return counts


def preorder_numbers(
    engine: CircuitEngine, tour: EulerTour, section: str = "ett_preorder"
) -> Dict[Node, int]:
    """0-based preorder numbers with respect to the tour's rotation.

    Each node marks its *first* outgoing tour edge; the exclusive
    prefix sum at that instance counts the nodes first-visited earlier.
    """
    nodes = tour.nodes()
    if len(nodes) == 1:
        return {tour.root: 0}
    first = _first_occurrence_edges(tour)
    marked: Set[DirectedEdge] = {tour.edges[i] for i in first.values()}
    op = ETTOp(tour, marked, tag="pre")
    run_pasc(engine, [op.chain], section=section)
    values = op.chain.values()
    return {u: values[tour.units[i]] for u, i in first.items()}


def postorder_numbers(
    engine: CircuitEngine, tour: EulerTour, section: str = "ett_postorder"
) -> Dict[Node, int]:
    """0-based postorder numbers with respect to the tour's rotation.

    Each node marks its *last* outgoing tour edge; the tour leaves a
    node for good exactly when its subtree is complete, so the count of
    earlier last-departures is the postorder number.  The root, which
    has no departure after its last child, takes number ``n - 1``.
    """
    nodes = tour.nodes()
    if len(nodes) == 1:
        return {tour.root: 0}
    last = _last_occurrence_edges(tour)
    non_root = {u: i for u, i in last.items() if u != tour.root}
    marked = {tour.edges[i] for i in non_root.values()}
    op = ETTOp(tour, marked, tag="post")
    run_pasc(engine, [op.chain], section=section)
    inclusive = op.chain.inclusive_values()
    numbers = {u: inclusive[tour.units[i]] - 1 for u, i in non_root.items()}
    numbers[tour.root] = len(nodes) - 1
    return numbers


def node_levels(
    engine: CircuitEngine, tour: EulerTour, section: str = "ett_levels"
) -> Dict[Node, int]:
    """Depth of every node below the tour root (Corollary 5)."""
    parent = _tour_parents(tour)
    run = PascTreeRun(tour.root, parent, tag="lvl")
    run_pasc(engine, [run], section=section)
    return run.values()


def _tour_parents(tour: EulerTour) -> Dict[Node, Node]:
    """Parents with respect to the tour root (first-entry edges)."""
    parent: Dict[Node, Node] = {}
    seen = {tour.root}
    for u, v in tour.edges:
        if v not in seen:
            seen.add(v)
            parent[v] = u
    return parent
