"""The simplified ETT used by the election primitive (Section 3.3).

Removing the marked tour edges splits the Euler tour into subpaths; each
subpath is wired into one circuit (a single wire suffices — no
primary/secondary pair), the root beeps, and only the first subpath
hears it.  The amoebot whose marked out-edge terminates that subpath is
elected.  One beep round total (Lemma 21).

Multiple elections on node-disjoint trees share the round:
:func:`elect_first_marked_many` wires all requests into one layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set

from repro.grid.coords import Node
from repro.grid.directions import opposite
from repro.ett.technique import _channels_for
from repro.ett.tour import DirectedEdge, EulerTour
from repro.sim.engine import CircuitEngine


@dataclass
class ElectionRequest:
    """One election: a tour plus the marked out-edges of the candidates."""

    tour: EulerTour
    marked: Set[DirectedEdge]

    def __post_init__(self) -> None:
        if not self.marked:
            raise ValueError("cannot elect from an empty candidate set")
        unknown = set(self.marked).difference(self.tour.edges)
        if unknown:
            raise ValueError(f"marked edges not on the tour: {sorted(unknown)[:3]}")


def elect_first_marked_many(
    engine: CircuitEngine,
    requests: Sequence[ElectionRequest],
    tag: str = "elect",
    section: str = "election",
) -> List[Node]:
    """Run all elections in one shared beep round.

    The requests' trees must be node-disjoint (they are in every use in
    this repository: parallel recursions of the decomposition primitive).
    Returns one winner per request, in order.  Costs one round (zero if
    ``requests`` is empty).
    """
    if not requests:
        return []
    with engine.rounds.section(section):
        # The wiring is fully determined by the tours and their marked
        # edges; deterministic algorithms (the recomputed decomposition
        # tree, repeated merge levels) re-issue identical elections, so
        # the layout is memoized in the engine's cache.
        key = (
            "elect", tag,
            tuple(
                (tuple(r.tour.edges), tuple(sorted(r.marked))) for r in requests
            ),
        )
        layout = engine.layouts.get_or_build(
            key, lambda: _election_layout(engine, requests, tag)
        )
        index = layout.compiled().index

        beeps = index.indices(
            ((request.tour.root, f"{tag}:0") for request in requests), "beep on"
        )
        # Only the candidate units (marked outgoing edge) ever read the
        # result, so only their integer set-ids are resolved and read —
        # the simulator scans candidates in tour order, mirroring each
        # amoebot checking only its own occurrences.
        candidates: List[List[Node]] = []
        listen: List[int] = []
        for request in requests:
            tour, marked = request.tour, request.marked
            per_request: List[Node] = []
            for i, (node, uid) in enumerate(tour.units):
                if i < len(tour.edges) and tour.edges[i] in marked:
                    per_request.append(node)
                    listen.append(index.index_of((node, f"{tag}:{uid}"), "listen on"))
            candidates.append(per_request)
        bits = engine.run_round_indexed(layout, beeps, listen)

    winners: List[Node] = []
    cursor = 0
    for per_request in candidates:
        # The elected amoebot hears the beep at an occurrence whose
        # outgoing edge it marked (locally checkable): the first set bit
        # among this request's candidate occurrences.
        winner = None
        for offset, node in enumerate(per_request):
            if bits[cursor + offset]:
                winner = node
                break
        cursor += len(per_request)
        if winner is None:
            raise AssertionError("no unit identified itself as elected")
        winners.append(winner)
    return winners


def _election_layout(
    engine: CircuitEngine, requests: Sequence[ElectionRequest], tag: str
):
    """Build the shared subpath-circuit layout of all requests."""
    layout = engine.new_layout()
    for request in requests:
        tour, marked = request.tour, request.marked
        # Unit i joins its incoming wire and, unless e_i is marked,
        # its outgoing wire into one partition set: subpath circuits.
        for i, (node, uid) in enumerate(tour.units):
            label = f"{tag}:{uid}"
            pins = []
            if i > 0:
                u, v = tour.edges[i - 1]
                d = u.direction_to(v)
                pch, _ = _channels_for(d)
                pins.append((opposite(d), pch))
            if i < len(tour.edges) and tour.edges[i] not in marked:
                u, v = tour.edges[i]
                d = u.direction_to(v)
                pch, _ = _channels_for(d)
                pins.append((d, pch))
            layout.assign(node, label, pins)
    layout.freeze()
    return layout


def elect_first_marked(
    engine: CircuitEngine,
    tour: EulerTour,
    marked: Iterable[DirectedEdge],
    tag: str = "elect",
    section: str = "election",
) -> Node:
    """Elect the source of the first marked edge on the tour.

    The marked edges realize :math:`w_Q` (each candidate marks one
    outgoing edge), so the elected amoebot is a member of ``Q``.
    Costs exactly one round.
    """
    request = ElectionRequest(tour, set(marked))
    return elect_first_marked_many(engine, [request], tag=tag, section=section)[0]
