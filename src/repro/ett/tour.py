"""Euler tour construction from local rotation orders.

Amoebots do not know the tree globally; each knows its incident tree
edges in counterclockwise order (shared chirality makes the order
consistent).  The successor of directed edge ``(u, v)`` is ``(v, w)``
where ``w`` is the next counterclockwise tree neighbor of ``v`` after
``u`` — a purely local rule.  Following it from any directed edge yields
a single cycle using every directed edge exactly once; splitting the
cycle at the root gives the Euler tour the technique runs PASC over.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.grid.coords import Node
from repro.pasc.chain import Unit

DirectedEdge = Tuple[Node, Node]


def adjacency_from_edges(edges: Iterable[Tuple[Node, Node]]) -> Dict[Node, List[Node]]:
    """Adjacency lists in counterclockwise rotation order.

    ``edges`` are undirected tree edges between *adjacent grid nodes*.
    Each node's neighbor list is sorted by edge direction (E, NE, NW, W,
    SW, SE), realizing the common chirality the model assumes.
    """
    adjacency: Dict[Node, List[Node]] = {}
    seen = set()
    for u, v in edges:
        key = (u, v) if (u, v) <= (v, u) else (v, u)
        if key in seen:
            continue
        seen.add(key)
        adjacency.setdefault(u, []).append(v)
        adjacency.setdefault(v, []).append(u)
    for u, neighbors in adjacency.items():
        neighbors.sort(key=lambda v: int(u.direction_to(v)))
    return adjacency


@dataclass
class EulerTour:
    """An Euler tour of a tree of amoebots.

    Attributes
    ----------
    root:
        The amoebot the cycle was split at.
    edges:
        The directed edges ``e_0, ..., e_{L-1}`` in tour order
        (``L = 2 (m - 1)`` for a tree of ``m`` nodes).
    units:
        The PASC instances ``v_0, ..., v_L``; ``units[i]`` is operated by
        the source of ``edges[i]`` and ``units[L]`` by the root.  The
        occurrence id of a unit is its per-amoebot occurrence index, a
        number every amoebot can maintain locally.
    adjacency:
        The rotation-ordered adjacency the tour was built from.
    """

    root: Node
    edges: List[DirectedEdge]
    units: List[Unit]
    adjacency: Dict[Node, List[Node]]

    @property
    def length(self) -> int:
        return len(self.edges)

    def nodes(self) -> List[Node]:
        """All tree nodes in sorted order."""
        return sorted(self.adjacency)

    def first_unit_of(self, node: Node) -> Unit:
        """The unit of ``node``'s first occurrence on the tour."""
        return (node, "0")

    def out_edge_of_unit(self, index: int) -> DirectedEdge:
        """The directed edge traversed right after unit ``index``."""
        return self.edges[index]


def build_euler_tour(root: Node, adjacency: Dict[Node, List[Node]]) -> EulerTour:
    """Build the Euler tour of a tree rooted at ``root``.

    ``adjacency`` must describe a tree (checked) whose nodes are mutually
    adjacent grid nodes, with each list in rotation order.
    """
    if root not in adjacency:
        raise ValueError(f"root {root} is not a tree node")
    node_count = len(adjacency)
    edge_count = sum(len(v) for v in adjacency.values()) // 2
    if edge_count != node_count - 1:
        raise ValueError("adjacency does not describe a tree")

    if not adjacency[root]:
        if node_count != 1:
            raise ValueError("isolated root in a multi-node adjacency")
        return EulerTour(root, [], [(root, "0")], {root: []})

    index_of: Dict[DirectedEdge, int] = {}
    edges: List[DirectedEdge] = []
    cur: DirectedEdge = (root, adjacency[root][0])
    expected = 2 * edge_count
    for _ in range(expected):
        if cur in index_of:
            raise ValueError("rotation order does not induce a single cycle")
        index_of[cur] = len(edges)
        edges.append(cur)
        u, v = cur
        neighbors = adjacency[v]
        i = neighbors.index(u)
        w = neighbors[(i + 1) % len(neighbors)]
        cur = (v, w)
    if cur != edges[0]:
        raise ValueError("tour did not close into a cycle")

    occurrences: Counter = Counter()
    units: List[Unit] = []
    for u, _ in edges:
        units.append((u, str(occurrences[u])))
        occurrences[u] += 1
    units.append((root, str(occurrences[root])))
    return EulerTour(root=root, edges=edges, units=units, adjacency=adjacency)
