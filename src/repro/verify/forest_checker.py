"""Checker for the five (S, D)-shortest-path-forest properties.

Section 1.3 of the paper defines an (S, D)-shortest path forest by five
properties.  :func:`check_forest` validates a computed forest — given as
parent pointers — against all of them using BFS oracles, returning a
list of human-readable violations (empty = valid).  The distributed
algorithms are tested exclusively through this checker, so a bug in any
primitive surfaces as a concrete property violation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set

from repro.grid.coords import Node
from repro.grid.oracle import bfs_distances
from repro.grid.structure import AmoebotStructure


@dataclass
class ForestViolation:
    """One violated forest property."""

    prop: str
    message: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"[{self.prop}] {self.message}"


def check_forest(
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Iterable[Node],
    parent: Dict[Node, Node],
) -> List[ForestViolation]:
    """Validate an (S, D)-shortest-path forest given by parent pointers.

    ``parent`` maps every forest member except the sources to its parent
    (property: "each amoebot in ``∪ V_s \\ S`` knows its parent").
    """
    source_list = list(dict.fromkeys(sources))
    source_set = set(source_list)
    dest_set = set(destinations)
    violations: List[ForestViolation] = []

    def bad(prop: str, message: str) -> None:
        violations.append(ForestViolation(prop, message))

    # -- sanity of the parent map itself ------------------------------
    for u, p in parent.items():
        if u in source_set:
            bad("structure", f"source {u} has a parent pointer")
        if u not in structure or p not in structure:
            bad("structure", f"edge {u}->{p} leaves the structure")
            continue
        if not u.is_adjacent(p):
            bad("structure", f"parent edge {u}->{p} joins non-neighbors")

    # -- resolve each member's root (cycle detection) -----------------
    members = source_set | set(parent)
    root_of: Dict[Node, Optional[Node]] = {}

    def resolve(u: Node) -> Optional[Node]:
        path = []
        cur = u
        while True:
            if cur in root_of:
                result = root_of[cur]
                break
            if cur in source_set:
                result = cur
                break
            if cur in path:
                result = None  # cycle
                break
            path.append(cur)
            nxt = parent.get(cur)
            if nxt is None:
                result = None  # dangling: no source at the end
                break
            cur = nxt
        for v in path:
            root_of[v] = result
        return result

    for u in members:
        if resolve(u) is None:
            bad("prop1", f"{u} does not reach a source along parent pointers")

    # Property 3 holds automatically: a parent function assigns every
    # member to exactly one tree.  Check property 4: D covered.
    for d in dest_set:
        if d not in members:
            bad("prop4", f"destination {d} is not part of the forest")

    # -- property 5: shortest paths to a *closest* source --------------
    per_source = {s: bfs_distances(structure, [s]) for s in source_list}
    multi = bfs_distances(structure, source_list)
    depth: Dict[Node, int] = {s: 0 for s in source_set}

    def depth_of(u: Node) -> Optional[int]:
        chain = []
        cur = u
        while cur not in depth:
            chain.append(cur)
            cur = parent.get(cur)
            if cur is None or len(chain) > len(structure):
                return None
        base = depth[cur]
        for v in reversed(chain):
            base += 1
            depth[v] = base
        return depth[u]

    for u in members:
        root = root_of.get(u, u if u in source_set else None)
        if root is None:
            continue
        d = depth_of(u)
        if d is None:
            continue
        oracle_own = per_source[root].get(u)
        oracle_any = multi.get(u)
        if oracle_own is None or oracle_any is None:
            bad("prop5", f"{u} unreachable from its tree's source {root}")
            continue
        if d != oracle_own:
            bad(
                "prop5",
                f"path length to {u} in tree of {root} is {d}, "
                f"shortest is {oracle_own}",
            )
        if oracle_own != oracle_any:
            bad(
                "prop5",
                f"{u} assigned to source {root} at distance {oracle_own}, "
                f"but the closest source is at distance {oracle_any}",
            )

    # -- property 2: every leaf is a source or destination -------------
    has_child: Set[Node] = set()
    for u, p in parent.items():
        has_child.add(p)
    for u in members:
        if u not in has_child and u not in source_set and u not in dest_set:
            bad("prop2", f"leaf {u} is neither a source nor a destination")

    return violations


def assert_valid_forest(
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Iterable[Node],
    parent: Dict[Node, Node],
) -> None:
    """Raise ``AssertionError`` listing all violations, if any."""
    violations = check_forest(structure, sources, destinations, parent)
    if violations:
        summary = "\n".join(str(v) for v in violations[:12])
        raise AssertionError(
            f"{len(violations)} forest property violations:\n{summary}"
        )
