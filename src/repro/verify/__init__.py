"""Verification of shortest path forests against centralized oracles."""

from repro.verify.forest_checker import ForestViolation, check_forest, assert_valid_forest

__all__ = ["ForestViolation", "check_forest", "assert_valid_forest"]
