"""Naive sequential multi-source algorithm (top of Section 5).

Compute an ``{s}``-shortest path forest for one source at a time with
the Section 4 tree algorithm and fold it into the accumulated forest
with the merging algorithm: ``O(k log n)`` rounds.  This is the
baseline the divide & conquer approach improves to
``O(log n log² k)``; the ablation bench compares the two directly.
"""

from __future__ import annotations

from typing import Iterable

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure
from repro.sim.engine import CircuitEngine
from repro.spf.merge import merge_forests
from repro.spf.spt import shortest_path_tree
from repro.spf.types import Forest


def sequential_merge_forest(
    engine: CircuitEngine,
    structure: AmoebotStructure,
    sources: Iterable[Node],
    section: str = "sequential_merge",
) -> Forest:
    """S-shortest path forest by k sequential SPT + merge steps."""
    source_list = list(dict.fromkeys(sources))
    if not source_list:
        raise ValueError("need at least one source")

    all_nodes = set(structure.nodes)
    accumulated: Forest | None = None
    with engine.rounds.section(section):
        for source in source_list:
            spt = shortest_path_tree(
                engine,
                structure,
                source,
                all_nodes,
                section=f"{section}:spt",
            )
            single = Forest(
                sources={source}, parent=spt.parent, members=set(spt.members)
            )
            if accumulated is None:
                accumulated = single
            else:
                accumulated = merge_forests(
                    engine, accumulated, single, section=f"{section}:merge"
                )
    assert accumulated is not None
    return accumulated
