"""Circuit-free BFS wave baseline.

Without reconfigurable circuits, a beep only reaches direct neighbors,
so distance information spreads one hop per round — this is the regime
of the plain geometric amoebot model and of the beeping model, with its
``Ω(diam)`` lower bound for shortest path problems.  The wave is run on
the circuit engine with every partition set a *singleton* (one pin),
which by definition restricts each circuit to a single external link
(Section 1.2: "if each partition set is a singleton, every circuit just
connects two neighboring amoebots").

Every round, wavefront amoebots beep on all incident links; an
unreached amoebot that hears a beep joins the forest, taking the first
beeping direction (counterclockwise) as its parent.  The wave runs
until every destination is reached; reaching all of ``D`` is detected
with one global-circuit beep per round by the freshly covered
destinations' counter — charged one extra round at the end, keeping the
baseline's cost at ``ecc(S) + O(1)`` rounds.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.grid.coords import Node
from repro.grid.directions import Direction
from repro.grid.structure import AmoebotStructure
from repro.sim.engine import CircuitEngine
from repro.spf.types import Forest


def bfs_wave_forest(
    engine: CircuitEngine,
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Optional[Iterable[Node]] = None,
    section: str = "bfs_wave",
) -> Forest:
    """Multi-source BFS wave; ``Θ(max_d dist(S, d))`` rounds."""
    source_set = set(sources)
    if not source_set:
        raise ValueError("need at least one source")
    dest_set = (
        set(destinations) if destinations is not None else set(structure.nodes)
    )
    pending = set(dest_set) - source_set

    # Singleton pin configuration: one partition set per incident link.
    # The wiring never changes, so the layout is built once (and cached
    # on the engine for repeated waves over the same structure).
    def build_wave_layout():
        layout = engine.new_layout()
        for u in structure:
            for d in structure.occupied_directions(u):
                layout.assign(u, f"wave:{d.name}", [(d, 0)])
        layout.freeze()
        return layout

    # The key carries the node set: callers may run waves over
    # sub-structures of the engine's structure.
    layout = engine.layouts.get_or_build(
        ("bfs-wave", 0, structure.nodes), build_wave_layout
    )

    parent: Dict[Node, Node] = {}
    reached: Set[Node] = set(source_set)
    frontier: Set[Node] = set(source_set)
    unreached: Set[Node] = set(structure.nodes) - reached

    # Integer set-ids per (amoebot, incident direction), resolved once:
    # each wave round then builds flat index lists instead of re-keying
    # f-string labels into dicts.
    index = layout.compiled().index
    slots: Dict[Node, List[Tuple[Direction, int]]] = {
        u: [
            (d, index.index_of((u, f"wave:{d.name}"), "listen on"))
            for d in structure.occupied_directions(u)
        ]
        for u in structure
    }

    with engine.rounds.section(section):
        while pending:
            beeps = [i for u in frontier for _d, i in slots[u]]
            if not beeps:
                raise AssertionError("wave died before covering all destinations")
            # Only unreached amoebots read their link sets; the heard
            # region shrinks as the wave advances.
            ordered = list(unreached)
            listen = [i for u in ordered for _d, i in slots[u]]
            received = engine.run_round_indexed(layout, beeps, listen)
            new_frontier: Set[Node] = set()
            cursor = 0
            for u in ordered:
                u_slots = slots[u]
                for offset, (d, _i) in enumerate(u_slots):
                    if received[cursor + offset]:
                        parent[u] = u.neighbor(d)
                        new_frontier.add(u)
                        break
                cursor += len(u_slots)
            reached |= new_frontier
            unreached -= new_frontier
            pending -= new_frontier
            frontier = new_frontier
        # Termination announcement on a global circuit.
        engine.charge_local_round()

    members = reached
    return Forest(sources=source_set, parent=parent, members=members)
