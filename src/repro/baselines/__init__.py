"""Baselines the paper compares against (Section 1.4).

* :func:`bfs_wave_forest` — the circuit-free wave baseline: information
  travels amoebot by amoebot, one hop per round, as in the plain
  amoebot/beeping models.  Its ``Θ(ecc(S))`` round cost is the
  ``Ω(diam)`` lower bound the reconfigurable circuit extension breaks.
* :func:`sequential_merge_forest` — the naive multi-source algorithm
  sketched at the top of Section 5: compute one source's tree at a
  time and merge, ``O(k log n)`` rounds, the ablation target for the
  divide & conquer approach.
"""

from repro.baselines.bfs_wave import bfs_wave_forest
from repro.baselines.sequential_merge import sequential_merge_forest

__all__ = ["bfs_wave_forest", "sequential_merge_forest"]
