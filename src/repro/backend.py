"""Execution-backend selection: pure Python versus NumPy array kernels.

The compiled layers (:mod:`repro.sim.compiled`,
:mod:`repro.grid.compiled`) store flat integer tables either way; the
*backend* decides how those tables are traversed.  ``"python"`` iterates
them in pure-Python loops — the equivalence-tested reference that works
on any interpreter with no dependencies.  ``"numpy"`` lowers the same
tables onto ndarray kernels (``bincount`` beep propagation, sorted-array
mate resolution, vectorized component labeling, ``searchsorted`` grid
neighbor construction) and is bit-identical by construction: component
labels, round results, and grid ids match the Python backend exactly,
which the equivalence suite in ``tests/test_compiled_equivalence.py``
asserts.

NumPy is an *optional* dependency (the ``perf`` extra): every selection
point accepts ``"auto"``, which resolves to ``"numpy"`` exactly when
numpy imports and to ``"python"`` otherwise, so a numpy-free install
never changes behavior.  Selection is explicit at three levels:

* per engine — ``CircuitEngine(structure, backend="numpy")``;
* per process — :func:`set_default_backend` (the CLI's ``--backend``);
* per block — the :func:`use_backend` context manager (tests pin the
  seed round totals under ``backend="numpy"`` this way).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator, Optional

#: Names accepted by every ``backend=`` parameter.
BACKEND_NAMES = ("auto", "python", "numpy")

_UNRESOLVED = object()
_numpy_module = _UNRESOLVED

#: Process-wide default, consulted whenever a selection point receives
#: ``None``.  ``"auto"`` keeps resolution lazy: numpy availability is
#: probed at use, not at import.
_default_backend = "auto"


class BackendUnavailableError(RuntimeError):
    """Raised when ``backend="numpy"`` is forced but numpy is missing."""


def numpy_or_none():
    """The ``numpy`` module, or ``None`` when it cannot be imported.

    The import is attempted once per process and cached (including the
    failure), so hot paths may call this freely.
    """
    global _numpy_module
    if _numpy_module is _UNRESOLVED:
        try:
            import numpy
        except ImportError:
            numpy = None
        _numpy_module = numpy
    return _numpy_module


def require_numpy():
    """The ``numpy`` module; raises :class:`BackendUnavailableError`."""
    np = numpy_or_none()
    if np is None:
        raise BackendUnavailableError(
            "backend 'numpy' requested but numpy is not importable; "
            "install the perf extra (pip install 'repro[perf]') or use "
            "backend='python'"
        )
    return np


def resolve_backend(name: Optional[str] = None) -> str:
    """Resolve a backend request to ``"python"`` or ``"numpy"``.

    ``None`` consults the process default; ``"auto"`` picks numpy iff it
    imports.  Forcing ``"numpy"`` without numpy installed raises
    :class:`BackendUnavailableError` — an explicit request must never
    degrade silently.
    """
    if name is None:
        name = _default_backend
    if name == "auto":
        return "numpy" if numpy_or_none() is not None else "python"
    if name == "python":
        return "python"
    if name == "numpy":
        require_numpy()
        return "numpy"
    raise ValueError(f"unknown backend {name!r} (choose from {', '.join(BACKEND_NAMES)})")


def default_backend() -> str:
    """The process default, resolved to ``"python"`` or ``"numpy"``."""
    return resolve_backend(None)


def set_default_backend(name: str) -> None:
    """Set the process-wide default backend (``auto``/``python``/``numpy``).

    Validates eagerly — setting ``"numpy"`` on a numpy-free install
    fails here rather than at the first compile.
    """
    if name not in BACKEND_NAMES:
        raise ValueError(
            f"unknown backend {name!r} (choose from {', '.join(BACKEND_NAMES)})"
        )
    if name == "numpy":
        require_numpy()
    global _default_backend
    _default_backend = name


def backend_info() -> dict:
    """Observability snapshot of the backend configuration.

    Reported by ``repro serve``'s ``/stats`` endpoint and usable from
    tests: the requested process default, what it currently resolves
    to, and whether numpy is importable.
    """
    return {
        "default": _default_backend,
        "resolved": resolve_backend(None),
        "numpy": numpy_or_none() is not None,
    }


@contextmanager
def use_backend(name: str) -> Iterator[str]:
    """Temporarily set the process default backend (tests, benches)."""
    global _default_backend
    previous = _default_backend
    set_default_backend(name)
    try:
        yield resolve_backend(name)
    finally:
        _default_backend = previous
