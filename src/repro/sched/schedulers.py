"""Activation schedulers: who wakes up when.

A :class:`Scheduler` owns the *timing* of amoebot activations and
nothing else.  The :class:`~repro.sched.engine.ActivationEngine` asks it
for one number per activation event — the delay until the amoebot's next
wake-up — and orders events through a priority queue.  The protocol is
deliberately tiny so adversaries, randomized schedulers and rate models
are all the same kind of object:

* :meth:`Scheduler.start` — (re)initialize for a set of amoebot ids;
* :meth:`Scheduler.next_delay` — delay until the given amoebot's next
  activation, in abstract time units;
* ``observe_layout(compiled, id_of)`` — *optional*: an adversary may
  inspect the current compiled circuit wiring before a round to pick
  its victims (the worst-case heuristic targets partition sets with
  many external links — the cut vertices of the circuits, where a
  delayed amoebot stalls the most communication).

All schedulers respect a *fairness bound*: every amoebot's delay is at
least 1 (nobody activates infinitely often) and the adversary's delays
are capped at its bound ``delta`` (nobody starves forever) — the
standard asynchronous-adversary contract.  Randomness is owned by the
scheduler (seeded), so a schedule is reproducible bit for bit.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Iterable, List, Optional, Protocol, Sequence

from repro.sim.compiled import CompiledLayout

#: Base names accepted by :func:`make_scheduler` (the CLI / campaign
#: surface).  Mirrored as a literal in :mod:`repro.experiments.spec` so
#: spec validation never imports the simulator.
SCHEDULER_NAMES = ("sync", "random", "adversarial", "weighted")


class Scheduler(Protocol):
    """Decides per-amoebot activation delays for the event queue."""

    name: str

    def start(self, ids: Sequence[int]) -> None:
        """(Re)initialize for the given amoebot ids."""
        ...

    def next_delay(self, node_id: int) -> float:
        """Delay until ``node_id``'s next activation (>= some bound > 0)."""
        ...


class SynchronousScheduler:
    """Lock-step rounds: every amoebot activates once per time unit.

    Under this scheduler the event-driven engine reproduces the plain
    synchronous :class:`~repro.sim.engine.CircuitEngine` bit for bit:
    every epoch contains exactly one activation per amoebot and
    completes in exactly one time unit.
    """

    name = "sync"

    def start(self, ids: Sequence[int]) -> None:
        """Stateless: lock-step needs no per-run initialization."""

    def next_delay(self, node_id: int) -> float:
        """Everyone re-activates exactly one time unit later."""
        return 1.0


class RandomSequentialScheduler:
    """Poisson clocks: i.i.d. exponential delays, rate 1 per amoebot.

    The classic random-sequential (asynchronous) activation model.  The
    single seeded generator is consumed in event-queue pop order, which
    is deterministic, so the full activation sequence is reproducible
    per seed.
    """

    name = "random"

    def __init__(self, seed: int = 0):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        self.seed = seed
        self._rng = random.Random(seed)

    def start(self, ids: Sequence[int]) -> None:
        """Reset the generator so every run replays the same schedule."""
        self._rng = random.Random(self.seed)

    def next_delay(self, node_id: int) -> float:
        """Exponential delay, rate 1 (memoryless Poisson clock)."""
        return self._rng.expovariate(1.0)


class AdversarialDelayScheduler:
    """Delays chosen victims to the fairness bound ``delta``.

    Victims activate every ``delta`` time units, everyone else every 1 —
    the strongest delay pattern an adversary with fairness bound
    ``delta`` can impose.  Victims are either given explicitly or picked
    by the worst-case heuristic: before each round the adversary scores
    every amoebot by the external-link degree of its partition sets in
    the current compiled wiring (sets bridging many circuit segments are
    the circuits' cut vertices) and delays the top ``fraction``.
    """

    name = "adversarial"

    def __init__(
        self,
        delta: int = 4,
        fraction: float = 0.1,
        victims: Optional[Iterable[int]] = None,
    ):
        if delta < 1:
            raise ValueError(f"fairness bound delta must be >= 1, got {delta}")
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"victim fraction must be in [0, 1], got {fraction}")
        self.delta = delta
        self.fraction = fraction
        self._pinned = frozenset(victims) if victims is not None else None
        self.victims: frozenset = self._pinned or frozenset()
        self._ids: List[int] = []

    def start(self, ids: Sequence[int]) -> None:
        """Remember the population and pick the initial victim set."""
        self._ids = list(ids)
        if self._pinned is not None:
            self.victims = self._pinned
        elif not self._ids:
            self.victims = frozenset()
        else:
            # Until the adversary sees a wiring, delay a deterministic
            # prefix so the schedule is adversarial from round one.
            count = max(1, int(len(self._ids) * self.fraction))
            self.victims = frozenset(sorted(self._ids)[:count])

    def observe_layout(
        self, compiled: CompiledLayout, id_of: Callable[[object], Optional[int]]
    ) -> None:
        """Re-target: delay the owners of the highest-degree sets."""
        if self._pinned is not None or not self._ids:
            return
        score: Dict[int, int] = {}
        ids = compiled.index.ids
        adj = compiled.adj
        for i, set_id in enumerate(ids):
            nid = id_of(set_id[0])
            if nid is not None:
                score[nid] = score.get(nid, 0) + len(adj[i])
        count = max(1, int(len(self._ids) * self.fraction))
        # Ties break toward smaller ids: deterministic victim choice.
        ranked = sorted(self._ids, key=lambda nid: (-score.get(nid, 0), nid))
        self.victims = frozenset(ranked[:count])

    def next_delay(self, node_id: int) -> float:
        """Victims wait the full fairness bound, everyone else 1."""
        return float(self.delta) if node_id in self.victims else 1.0


class WeightedScheduler:
    """Heterogeneous Poisson clocks: per-amoebot activation rates.

    ``rates`` maps amoebot id to its rate; unlisted amoebots draw a rate
    uniformly from ``rate_span`` (seeded), modeling a population of
    faster and slower amoebots.  Delays are exponential with the
    amoebot's rate, so expected activations per time unit equal the
    rate.
    """

    name = "weighted"

    def __init__(
        self,
        seed: int = 0,
        rates: Optional[Dict[int, float]] = None,
        rate_span: tuple = (0.5, 2.0),
    ):
        if seed < 0:
            raise ValueError(f"seed must be non-negative, got {seed}")
        lo, hi = rate_span
        if not 0 < lo <= hi:
            raise ValueError(f"rate span must satisfy 0 < lo <= hi, got {rate_span}")
        self.seed = seed
        self.rate_span = (float(lo), float(hi))
        self._given = dict(rates) if rates else {}
        self.rates: Dict[int, float] = {}
        self._rng = random.Random(seed)

    def start(self, ids: Sequence[int]) -> None:
        """Draw (or validate) every amoebot's activation rate, seeded."""
        self._rng = random.Random(self.seed)
        lo, hi = self.rate_span
        self.rates = {}
        for nid in sorted(ids):
            rate = self._given.get(nid, self._rng.uniform(lo, hi))
            if rate <= 0:
                raise ValueError(f"activation rate must be positive, got {rate}")
            self.rates[nid] = rate

    def next_delay(self, node_id: int) -> float:
        """Exponential delay at the amoebot's own rate."""
        return self._rng.expovariate(self.rates.get(node_id, 1.0))


def make_scheduler(spec) -> Scheduler:
    """Build a scheduler from a CLI-style spec string.

    Accepted forms: ``sync``, ``random[:SEED]``,
    ``adversarial[:DELTA[:FRACTION]]``, ``weighted[:SEED]``.  A
    :class:`Scheduler` instance passes through unchanged.
    """
    if not isinstance(spec, str):
        return spec
    base, _, rest = spec.partition(":")
    params = rest.split(":") if rest else []
    try:
        if base == "sync":
            if params:
                raise ValueError("sync takes no parameters")
            return SynchronousScheduler()
        if base == "random":
            return RandomSequentialScheduler(seed=int(params[0]) if params else 0)
        if base == "adversarial":
            delta = int(params[0]) if params else 4
            fraction = float(params[1]) if len(params) > 1 else 0.1
            return AdversarialDelayScheduler(delta=delta, fraction=fraction)
        if base == "weighted":
            return WeightedScheduler(seed=int(params[0]) if params else 0)
    except (TypeError, IndexError, ValueError) as exc:
        raise ValueError(f"bad scheduler spec {spec!r}: {exc}") from exc
    raise ValueError(
        f"unknown scheduler {base!r}; expected one of {SCHEDULER_NAMES} "
        "(optionally with ':'-separated parameters)"
    )
