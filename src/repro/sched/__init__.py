"""Event-driven activation scheduling (ROADMAP item 4).

The synchronous round model of the paper is one point in a family of
activation models.  This package makes the scheduler an explicit,
swappable axis: :class:`ActivationEngine` drives the compiled circuit
arrays from a priority queue of per-amoebot activation events, and a
:class:`Scheduler` decides who wakes up when — lock-step
(:class:`SynchronousScheduler`), Poisson clocks
(:class:`RandomSequentialScheduler`), a delay adversary with a fairness
bound (:class:`AdversarialDelayScheduler`), or heterogeneous rates
(:class:`WeightedScheduler`).  Algorithm outcomes are preserved via
round synchronization; costs (activations, effective rounds,
retransmissions under faults) become the measured quantities.
"""

from repro.sched.engine import ActivationEngine, ActivationStats
from repro.sched.schedulers import (
    SCHEDULER_NAMES,
    AdversarialDelayScheduler,
    RandomSequentialScheduler,
    Scheduler,
    SynchronousScheduler,
    WeightedScheduler,
    make_scheduler,
)

__all__ = [
    "ActivationEngine",
    "ActivationStats",
    "Scheduler",
    "SynchronousScheduler",
    "RandomSequentialScheduler",
    "AdversarialDelayScheduler",
    "WeightedScheduler",
    "make_scheduler",
    "SCHEDULER_NAMES",
]
