"""Event-driven activation engine over the compiled integer arrays.

The :class:`ActivationEngine` replaces the implicit "everyone activates
in lock step" assumption of :class:`~repro.sim.engine.CircuitEngine`
with an explicit event queue: a :class:`~repro.sched.schedulers.Scheduler`
assigns every amoebot a next-activation time, and a heap of
``(time, node_id)`` events — integer grid-index ids, no Node hashing —
orders the wake-ups.

**Round synchronization.**  The algorithms of the paper are specified in
synchronous rounds; the standard way to run them under an asynchronous
adversary is a synchronization barrier: one logical round becomes an
*epoch* that completes only once every participant has activated at
least once since the epoch began.  Delayed amoebots therefore delay
epoch completion instead of missing beeps, so the computed structures
(forests, distances) are identical under every scheduler — what changes,
and what this engine measures, is the *cost*: total activations (wasted
wake-ups included) and elapsed scheduler time ("effective rounds").
The :class:`~repro.sched.schedulers.SynchronousScheduler` makes every
epoch exactly one activation per amoebot in one time unit, reproducing
the plain synchronous engine bit for bit.

**Faults.**  A :class:`~repro.dynamics.faults.FaultInjector` composes
with any scheduler.  Crashed amoebots are non-participants: the barrier
does not wait for them (a crashed amoebot never activates; waiting would
deadlock the epoch).  Randomly *dropped* beeps are transient, and the
injector's detection counters make them observable, so the engine runs a
detect-and-retransmit loop: whenever a round lost a beep to the drop
probability, the round is re-executed in a fresh epoch (each retry is a
real round and a real epoch, counted in
:attr:`ActivationStats.retransmissions`) until it goes through clean.
This is what keeps ``solve_spf`` checker-valid under drops — the cost
shows up in rounds/activations/time instead of in broken forests.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Union

from repro.grid.structure import AmoebotStructure
from repro.metrics.rounds import RoundCounter
from repro.sim.circuits import CircuitLayout
from repro.sim.engine import AnyLayoutCache, CircuitEngine
from repro.sim.pins import PartitionSetId
from repro.sched.schedulers import Scheduler, make_scheduler

_FNV_PRIME = 1099511628211
_MASK64 = (1 << 64) - 1


@dataclass
class ActivationStats:
    """Cost counters of an event-driven execution."""

    activations: int = 0  #: total wake-ups processed (wasted included)
    wasted: int = 0  #: wake-ups beyond the first per epoch
    epochs: int = 0  #: logical synchronous rounds simulated
    time: float = 0.0  #: scheduler time elapsed (effective rounds)
    retransmissions: int = 0  #: rounds re-executed after a dropped beep
    #: Order-sensitive digest of the activation sequence; two runs with
    #: equal checksums (and counts) executed the same schedule.
    checksum: int = 0
    #: Wake-ups per amoebot id (rate assertions for weighted/adversarial
    #: schedulers).
    per_node: Dict[int, int] = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Scalar counters as a JSON-ready mapping (metrics view).

        ``per_node`` is folded to its size (``participants``) — the full
        per-id map is test-probe detail, not a telemetry series.
        """
        return {
            "activations": self.activations,
            "wasted": self.wasted,
            "epochs": self.epochs,
            "time": round(self.time, 6),
            "retransmissions": self.retransmissions,
            "checksum": self.checksum,
            "participants": len(self.per_node),
        }

    def reset(self) -> None:
        """Zero every counter (tests reset before probing a run)."""
        self.activations = 0
        self.wasted = 0
        self.epochs = 0
        self.time = 0.0
        self.retransmissions = 0
        self.checksum = 0
        self.per_node = {}


class ActivationEngine(CircuitEngine):
    """A :class:`CircuitEngine` driven by per-amoebot activation events.

    Drop-in: every ``run_round`` / ``run_round_indexed`` /
    ``charge_local_round`` call advances one epoch of the event queue
    before (or instead of) propagating beeps, so existing algorithms run
    unmodified under any scheduler.  Round counts match the synchronous
    engine by construction; activation counts and scheduler time are
    collected in :attr:`stats` and charged to the shared
    :class:`~repro.metrics.rounds.RoundCounter`.
    """

    def __init__(
        self,
        structure: AmoebotStructure,
        scheduler: Union[Scheduler, str] = "sync",
        channels: int = 8,
        counter: Optional[RoundCounter] = None,
        layout_cache_size: int = 256,
        layouts: Optional[AnyLayoutCache] = None,
        max_retransmissions: int = 1000,
        backend: Optional[str] = None,
    ):
        super().__init__(
            structure,
            channels=channels,
            counter=counter,
            layout_cache_size=layout_cache_size,
            layouts=layouts,
            backend=backend,
        )
        self.scheduler = make_scheduler(scheduler)
        self.max_retransmissions = max_retransmissions
        self.stats = ActivationStats()
        # Activations are charged per epoch, not per tick.
        self.rounds.activations_per_round = 0
        self._grid = None
        self._ids: List[int] = []
        self._heap: List = []
        self._arrived = bytearray()
        self._clock = 0.0

    def rebind(
        self,
        structure: AmoebotStructure,
        layouts: Optional[AnyLayoutCache] = None,
    ) -> None:
        """Point the engine at an edited structure (see the base class)."""
        super().rebind(structure, layouts)
        self.rounds.activations_per_round = 0
        # The grid index changed identity; the next epoch restarts the
        # event queue (and the scheduler) for the new id space.
        self._grid = None

    # ------------------------------------------------------------------
    # event queue
    # ------------------------------------------------------------------
    def _reset_queue(self) -> None:
        grid = self.structure.grid_index()
        self._grid = grid
        self._ids = list(grid.live_ids())
        self.scheduler.start(self._ids)
        self._clock = 0.0
        self._arrived = bytearray(grid.n_slots)
        heap = [(self.scheduler.next_delay(nid), nid) for nid in self._ids]
        heapq.heapify(heap)
        self._heap = heap

    def _advance_epoch(self, layout: Optional[CircuitLayout]) -> None:
        """Pop events until every participant activated once (one round)."""
        if self._grid is None or self._grid is not self.structure.grid_index():
            self._reset_queue()
        if layout is not None:
            observe = getattr(self.scheduler, "observe_layout", None)
            if observe is not None:
                observe(layout.compiled(), self._grid.id_of)

        crashed_ids = frozenset()
        injector = self.fault_injector
        if injector is not None and injector.crashed:
            grid = self._grid
            crashed_ids = frozenset(
                i
                for i in (grid.id_of(u) for u in injector.crashed)
                if i is not None
            )
        need = len(self._ids) - len(crashed_ids)
        stats = self.stats
        if need <= 0:
            # Degenerate: nobody participates; time still passes.
            stats.epochs += 1
            stats.time += 1.0
            self._clock += 1.0
            return

        heap = self._heap
        sched = self.scheduler
        arrived = self._arrived
        per_node = stats.per_node
        checksum = stats.checksum
        touched: List[int] = []
        seen = 0
        t = self._clock
        epoch_activations = 0
        while seen < need:
            t, nid = heapq.heappop(heap)
            heapq.heappush(heap, (t + sched.next_delay(nid), nid))
            if nid in crashed_ids:
                continue
            epoch_activations += 1
            checksum = (checksum * _FNV_PRIME + nid + 1) & _MASK64
            per_node[nid] = per_node.get(nid, 0) + 1
            if arrived[nid]:
                stats.wasted += 1
            else:
                arrived[nid] = 1
                touched.append(nid)
                seen += 1
        for nid in touched:
            arrived[nid] = 0
        stats.checksum = checksum
        stats.activations += epoch_activations
        stats.epochs += 1
        stats.time += t - self._clock
        self._clock = t
        self.rounds.charge_activations(epoch_activations)

    # ------------------------------------------------------------------
    # round execution under the scheduler
    # ------------------------------------------------------------------
    def run_round_indexed(
        self,
        layout: CircuitLayout,
        beeps: Iterable[int],
        listen: Optional[Sequence[int]] = None,
    ) -> List[bool]:
        """One beep round as one epoch (integer fast path).

        Without an armed drop injector this is: advance one epoch, then
        the base class's array round.  With drops it becomes the
        detect-and-retransmit loop described in the module docstring.
        """
        injector = self.fault_injector
        if injector is None or not injector.drop_prob:
            self._advance_epoch(layout)
            return super().run_round_indexed(layout, beeps, listen)
        # Detect-and-retransmit: re-run the round whenever a *dropped*
        # beep changed an observed outcome.  The injector's clean-run
        # diff (``missed_hears``) is the detection signal; a drop
        # covered by another beep on the same circuit needs no retry,
        # and crash suppression (permanent, also counted in
        # ``missed_hears``) never triggers one on its own.
        beep_list = list(beeps)
        for _attempt in range(self.max_retransmissions + 1):
            dropped_before = injector.stats.dropped
            missed_before = injector.stats.missed_hears
            self._advance_epoch(layout)
            result = super().run_round_indexed(layout, beep_list, listen)
            if (
                injector.stats.dropped == dropped_before
                or injector.stats.missed_hears == missed_before
            ):
                return result
            self.stats.retransmissions += 1
        raise RuntimeError(
            f"round still dropping beeps after {self.max_retransmissions} "
            "retransmissions (drop probability too high to make progress)"
        )

    def run_round(
        self,
        layout: CircuitLayout,
        beeps: Iterable[PartitionSetId],
        listen: Optional[Iterable[PartitionSetId]] = None,
    ) -> Dict[PartitionSetId, bool]:
        """One beep round as one epoch (dict surface)."""
        injector = self.fault_injector
        if injector is None or not injector.drop_prob:
            self._advance_epoch(layout)
            return super().run_round(layout, beeps, listen)
        # Route through the indexed path so the injector's clean-run
        # diff drives the same detect-and-retransmit loop (the dict
        # path's ``filter_ids`` has no outcome detection).
        compiled = layout.compiled()
        index = compiled.index
        beep_idx = index.indices(list(beeps), "beep on")
        if listen is None:
            listen_ids: List[PartitionSetId] = list(index.ids)
            bits = self.run_round_indexed(layout, beep_idx, None)
        else:
            listen_ids = list(listen)
            bits = self.run_round_indexed(
                layout, beep_idx, index.indices(listen_ids, "listen on")
            )
        return dict(zip(listen_ids, bits))

    def charge_local_round(self, rounds: int = 1) -> None:
        """Account local (beep-free) rounds; each costs one epoch.

        Local rounds have no beeps to drop, but every amoebot still has
        to wake up once to do its local computation.
        """
        for _ in range(rounds):
            self._advance_epoch(None)
        super().charge_local_round(rounds)
