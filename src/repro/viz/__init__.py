"""Visualization of structures, portals, and forests.

ASCII rendering targets terminals and doctests; the SVG renderer
regenerates the paper's figure styles (examples/figures.py).
"""

from repro.viz.ascii_art import render_ascii
from repro.viz.svg import SvgCanvas, render_structure_svg

__all__ = ["render_ascii", "SvgCanvas", "render_structure_svg"]
