"""Minimal SVG rendering of amoebot structures (no dependencies).

Reproduces the visual language of the paper's figures: amoebots as
circles on the triangular lattice, structure edges in light gray,
portals as colored runs, forest parents as arrows.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure

SCALE = 30.0
MARGIN = 25.0


class SvgCanvas:
    """Accumulates SVG elements in grid coordinates."""

    def __init__(self) -> None:
        self._elements: List[str] = []
        self._min = [math.inf, math.inf]
        self._max = [-math.inf, -math.inf]

    def _track(self, x: float, y: float) -> None:
        self._min[0] = min(self._min[0], x)
        self._min[1] = min(self._min[1], y)
        self._max[0] = max(self._max[0], x)
        self._max[1] = max(self._max[1], y)

    def _point(self, node: Node) -> Tuple[float, float]:
        cx, cy = node.cartesian()
        self._track(cx, cy)
        return cx, cy

    def edge(self, u: Node, v: Node, color: str = "#cccccc", width: float = 2.0) -> None:
        """Draw a structure edge."""
        x1, y1 = self._point(u)
        x2, y2 = self._point(v)
        self._elements.append(
            f'<line x1="{x1:.3f}" y1="{-y1:.3f}" x2="{x2:.3f}" y2="{-y2:.3f}" '
            f'stroke="{color}" stroke-width="{width / SCALE:.4f}" />'
        )

    def arrow(self, u: Node, v: Node, color: str = "#d62728") -> None:
        """Directed edge from ``u`` toward ``v`` (parent pointers)."""
        x1, y1 = self._point(u)
        x2, y2 = self._point(v)
        mx, my = x1 + 0.72 * (x2 - x1), y1 + 0.72 * (y2 - y1)
        self._elements.append(
            f'<line x1="{x1:.3f}" y1="{-y1:.3f}" x2="{mx:.3f}" y2="{-my:.3f}" '
            f'stroke="{color}" stroke-width="{3.2 / SCALE:.4f}" '
            'marker-end="url(#arrowhead)" />'
        )

    def node(
        self,
        node: Node,
        fill: str = "#ffffff",
        stroke: str = "#333333",
        radius: float = 0.22,
        label: Optional[str] = None,
    ) -> None:
        """Draw an amoebot with optional fill color and label."""
        x, y = self._point(node)
        self._elements.append(
            f'<circle cx="{x:.3f}" cy="{-y:.3f}" r="{radius:.3f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{2.0 / SCALE:.4f}" />'
        )
        if label:
            self._elements.append(
                f'<text x="{x:.3f}" y="{-y + 0.07:.3f}" font-size="0.25" '
                f'text-anchor="middle">{label}</text>'
            )

    def render(self) -> str:
        """Emit the final SVG document."""
        if not self._elements:
            return "<svg xmlns='http://www.w3.org/2000/svg'/>"
        pad = 0.6
        min_x, min_y = self._min[0] - pad, -(self._max[1] + pad)
        width = (self._max[0] - self._min[0]) + 2 * pad
        height = (self._max[1] - self._min[1]) + 2 * pad
        defs = (
            '<defs><marker id="arrowhead" markerWidth="6" markerHeight="6" '
            'refX="5" refY="3" orient="auto"><path d="M0,0 L6,3 L0,6 z" '
            'fill="#d62728"/></marker></defs>'
        )
        body = "\n".join(self._elements)
        return (
            '<svg xmlns="http://www.w3.org/2000/svg" '
            f'viewBox="{min_x:.3f} {min_y:.3f} {width:.3f} {height:.3f}" '
            f'width="{width * SCALE:.0f}" height="{height * SCALE:.0f}">\n'
            f"{defs}\n{body}\n</svg>"
        )


def render_structure_svg(
    structure: AmoebotStructure,
    node_colors: Optional[Dict[Node, str]] = None,
    parent: Optional[Dict[Node, Node]] = None,
    highlight_edges: Optional[Iterable[Tuple[Node, Node]]] = None,
    edge_color: str = "#cccccc",
) -> str:
    """One-call rendering used by the figure scripts."""
    node_colors = node_colors or {}
    canvas = SvgCanvas()
    for u, v in structure.edges():
        canvas.edge(u, v, color=edge_color)
    if highlight_edges:
        for u, v in highlight_edges:
            canvas.edge(u, v, color="#e41a1c", width=4.0)
    if parent:
        for u, p in parent.items():
            canvas.arrow(u, p)
    for u in sorted(structure.nodes):
        canvas.node(u, fill=node_colors.get(u, "#ffffff"))
    return canvas.render()
