"""ASCII rendering of amoebot structures on the triangular grid.

Rows are laid out bottom-up with a half-character shift per row, the
standard "brick wall" projection of the triangular lattice.  Node
glyphs are customizable, which the examples use to highlight sources,
destinations, and forest membership.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.grid.coords import Node
from repro.grid.structure import AmoebotStructure


def render_ascii(
    structure: AmoebotStructure,
    glyphs: Optional[Dict[Node, str]] = None,
    default: str = "o",
    empty: str = " ",
) -> str:
    """Render the structure as multi-line ASCII art.

    ``glyphs`` overrides the character of individual nodes (single
    characters keep the lattice aligned).
    """
    glyphs = glyphs or {}
    min_x, max_x, min_y, max_y = structure.bounding_box()
    lines = []
    for y in range(max_y, min_y - 1, -1):
        # Cartesian x of node (x, y) is x + y/2: shift rows accordingly.
        offset = y - min_y
        row = [empty] * offset
        for x in range(min_x, max_x + 1):
            node = Node(x, y)
            if node in structure:
                row.append(glyphs.get(node, default)[0])
            else:
                row.append(empty)
            row.append(empty)
        lines.append("".join(row).rstrip())
    return "\n".join(lines)


def render_forest_ascii(
    structure: AmoebotStructure,
    sources: Iterable[Node],
    destinations: Iterable[Node],
    members: Iterable[Node],
) -> str:
    """Structure with sources ``S``, destinations ``D``, members ``*``."""
    glyphs: Dict[Node, str] = {}
    for u in members:
        glyphs[u] = "*"
    for d in destinations:
        glyphs[d] = "D"
    for s in sources:
        glyphs[s] = "S"
    return render_ascii(structure, glyphs, default=".")


def render_churn_ascii(
    structure: AmoebotStructure,
    sources: Iterable[Node] = (),
    destinations: Iterable[Node] = (),
    members: Iterable[Node] = (),
    added: Iterable[Node] = (),
    dirty: Iterable[Node] = (),
) -> str:
    """One churn frame: the forest view plus the last batch's edits.

    On top of the forest glyphs (``S``/``D``/``*``), freshly ``added``
    amoebots render as ``+`` and the repair's ``dirty`` region as ``~``
    (forest/endpoint glyphs win where they overlap).  Removed amoebots
    are simply gone — the lattice gap is the mark.
    """
    glyphs: Dict[Node, str] = {}
    for u in dirty:
        glyphs[u] = "~"
    for u in added:
        glyphs[u] = "+"
    for u in members:
        glyphs[u] = "*"
    for d in destinations:
        glyphs[d] = "D"
    for s in sources:
        glyphs[s] = "S"
    return render_ascii(structure, glyphs, default=".")
