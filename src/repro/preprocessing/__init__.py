"""Preprocessing: the assumptions the paper establishes via prior work.

Section 2.1 assumes a leader and a common compass/chirality, both
obtainable in ``O(log n)`` rounds w.h.p. (Feldmann et al. [17],
Theorems 1-2).  This package implements the leader election as a
faithful beep protocol on the global circuit; compass and chirality
agreement — whose full protocol operates on boundary circuits well
beyond what this paper uses — is configured by construction in this
simulator (all amoebots share the global direction labels), exactly as
the paper assumes post-preprocessing.
"""

from repro.preprocessing.leader_election import elect_leader, LeaderElectionResult

__all__ = ["elect_leader", "LeaderElectionResult"]
