"""Randomized leader election on the global circuit (Theorem 2).

The tournament at the heart of Feldmann et al.'s protocol: every
amoebot starts as a candidate; in each phase every candidate tosses a
fair coin and beeps on the global circuit iff it tossed heads.  If a
beep is heard, candidates that tossed tails retire (somebody with heads
is still in).  If no beep is heard the phase changes nothing.  After
``Θ(log n)`` phases a single candidate remains w.h.p.

The second beep of each phase implements the *progress check* that lets
the amoebots terminate: the remaining candidates beep unconditionally,
and a retired amoebot can never tell how many beeped — so, as in the
original paper, the protocol runs a fixed ``c · ceil(log2 n) + c``
phases and is correct w.h.p. (the full protocol of [17] sharpens this
with boundary circuits; the tournament is the part the shortest-path
paper's preprocessing actually relies on).  An optional oracle check
reports whether uniqueness actually held, which the statistical tests
use to measure the failure probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Set

from repro.grid.coords import Node
from repro.sim.engine import CircuitEngine


@dataclass
class LeaderElectionResult:
    """Outcome of one leader election run."""

    leader: Optional[Node]
    candidates_left: int
    phases: int
    rounds: int
    unique: bool


def elect_leader(
    engine: CircuitEngine,
    seed: Optional[int] = None,
    safety_factor: int = 3,
    section: str = "leader_election",
) -> LeaderElectionResult:
    """Run the coin-tossing tournament; ``O(log n)`` rounds.

    ``safety_factor`` scales the number of phases: ``failure
    probability <= n · 2^{-phases}``, so factor 3 gives w.h.p. with
    exponent ~2.  The returned result reports whether a unique leader
    remained (simulator knowledge; the amoebots themselves rely on the
    w.h.p. guarantee, as in the paper).
    """
    rng = random.Random(seed)
    structure = engine.structure
    candidates: Set[Node] = set(structure.nodes)
    n = len(structure)
    phases = safety_factor * (max(n, 2).bit_length() + 1)
    start_rounds = engine.rounds.total

    # One global circuit, reused for every phase (cache-hit if another
    # primitive already built it); a single probe set carries the bit.
    # Integer set-ids are resolved once, so each phase is one array pass.
    layout = engine.global_layout(label="leader")
    index = layout.compiled().index
    set_of = {u: index.index_of((u, "leader"), "beep on") for u in structure}
    probe = index.index_of((next(iter(structure)), "leader"), "listen on")
    with engine.rounds.section(section):
        for _phase in range(phases):
            heads = {u for u in candidates if rng.random() < 0.5}
            received = engine.run_round_indexed(
                layout, [set_of[u] for u in heads], (probe,)
            )
            someone_beeped = received[0]
            if someone_beeped:
                candidates = heads
            if len(candidates) <= 1:
                # The amoebots cannot see this; they keep beeping for
                # the fixed schedule.  The simulator shortcut below only
                # skips no-op phases and charges their rounds anyway.
                remaining = phases - _phase - 1
                engine.rounds.tick(remaining)
                break

    unique = len(candidates) == 1
    leader = next(iter(candidates)) if unique else None
    return LeaderElectionResult(
        leader=leader,
        candidates_left=len(candidates),
        phases=phases,
        rounds=engine.rounds.total - start_rounds,
        unique=unique,
    )
